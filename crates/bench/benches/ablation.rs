//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * *regular ω-words vs the full dichotomic solver vs exhaustive enumeration* — what does
//!   insisting on the optimal acyclic order cost, compared to the two fixed regular words that
//!   the paper recommends for distributed settings (Section XII)?
//! * *scheme construction + max-flow certification* — the price of turning a feasible word
//!   into an explicit low-degree scheme and re-verifying its throughput by max-flow.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::exhaustive::optimal_acyclic_exhaustive;
use bmp_core::omega::best_omega_throughput;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_platform::Instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn random_instance(receivers: usize, p: f64, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

fn fast_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group
}

/// Optimal order vs regular ω-words vs exhaustive enumeration (tiny sizes only for the latter).
fn bench_order_quality_vs_cost(c: &mut Criterion) {
    let mut group = fast_group(c, "ablation_order_search");
    for &receivers in &[8usize, 12] {
        let inst = random_instance(receivers, 0.6, 3 + receivers as u64);
        group.bench_with_input(
            BenchmarkId::new("exhaustive", receivers),
            &inst,
            |b, inst| b.iter(|| optimal_acyclic_exhaustive(inst, 1e-9).0),
        );
        group.bench_with_input(
            BenchmarkId::new("dichotomic", receivers),
            &inst,
            |b, inst| b.iter(|| AcyclicGuardedSolver::default().optimal_throughput(inst).0),
        );
        group.bench_with_input(
            BenchmarkId::new("omega_words", receivers),
            &inst,
            |b, inst| b.iter(|| best_omega_throughput(inst, 1e-9).0),
        );
    }
    // Larger sizes where exhaustive enumeration is no longer an option.
    for &receivers in &[200usize, 1_000] {
        let inst = random_instance(receivers, 0.6, 17 + receivers as u64);
        group.bench_with_input(
            BenchmarkId::new("dichotomic", receivers),
            &inst,
            |b, inst| b.iter(|| AcyclicGuardedSolver::default().optimal_throughput(inst).0),
        );
        group.bench_with_input(
            BenchmarkId::new("omega_words", receivers),
            &inst,
            |b, inst| b.iter(|| best_omega_throughput(inst, 1e-9).0),
        );
    }
    group.finish();
}

/// Cost of producing the explicit low-degree scheme and certifying it by max-flow, on top of
/// the feasibility search itself.
fn bench_scheme_construction_and_certification(c: &mut Criterion) {
    let mut group = fast_group(c, "ablation_scheme_certification");
    let solver = AcyclicGuardedSolver::default();
    for &receivers in &[50usize, 200] {
        let inst = random_instance(receivers, 0.7, 23 + receivers as u64);
        let (throughput, word) = solver.optimal_throughput(&inst);
        group.bench_with_input(
            BenchmarkId::new("search_only", receivers),
            &inst,
            |b, inst| b.iter(|| solver.optimal_throughput(inst).0),
        );
        group.bench_with_input(
            BenchmarkId::new("build_scheme", receivers),
            &(inst.clone(), word.clone()),
            |b, (inst, word)| {
                b.iter(|| {
                    solver
                        .scheme_for_word(inst, throughput * 0.999, word)
                        .unwrap()
                        .edges()
                        .len()
                })
            },
        );
        let scheme = solver
            .scheme_for_word(&inst, throughput * 0.999, &word)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("certify_max_flow", receivers),
            &scheme,
            |b, scheme| b.iter(|| scheme.throughput()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_order_quality_vs_cost,
    bench_scheme_construction_and_certification
);
criterion_main!(benches);
