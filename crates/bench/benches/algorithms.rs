//! Scaling of the core constructive algorithms (Algorithm 1, Algorithm 2, scheme building).
//! The paper claims linear-time feasibility testing; these benches exhibit the scaling.
//! The registered solvers are benchmarked uniformly through the `Solver` trait.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::acyclic_open::acyclic_open_optimal_scheme;
use bmp_core::greedy::greedy_test;
use bmp_core::solver::{registry, EvalCtx};
use bmp_platform::distribution::{BandwidthDistribution, UniformBandwidth};
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_platform::Instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(receivers: usize, p: f64, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

fn open_instance(receivers: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let open = UniformBandwidth::unif100().sample_many(receivers, &mut rng);
    Instance::open_only(50.0, open).unwrap()
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_open");
    for &n in &[100usize, 1_000, 10_000] {
        let inst = open_instance(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| acyclic_open_optimal_scheme(inst).unwrap().1)
        });
    }
    group.finish();
}

fn bench_greedy_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_greedy_test");
    for &n in &[100usize, 1_000, 10_000] {
        let inst = random_instance(n, 0.7, 11);
        let target = bmp_core::bounds::cyclic_upper_bound(&inst) * 0.9;
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| greedy_test(inst, target).is_feasible())
        });
    }
    group.finish();
}

fn bench_full_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("acyclic_guarded_solver");
    group.sample_size(20);
    let solver = AcyclicGuardedSolver::default();
    for &n in &[100usize, 1_000] {
        let inst = random_instance(n, 0.7, 23);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| solver.solve(inst).throughput)
        });
    }
    group.finish();
}

/// Every registered solver through the uniform trait entry point, on the instance class
/// it supports (the exhaustive oracle is skipped: it caps out at 20 receivers).
fn bench_registry_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_solvers");
    group.sample_size(20);
    let guarded = random_instance(200, 0.7, 23);
    let open = open_instance(200, 7);
    for solver in registry() {
        let inst = match solver.name() {
            "exhaustive" => continue,
            "acyclic-open" | "cyclic-open" => &open,
            _ => &guarded,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(solver.name()),
            inst,
            |b, inst| {
                let mut ctx = EvalCtx::new();
                b.iter(|| solver.solve(inst, &mut ctx).expect("solvable").throughput)
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_greedy_test,
    bench_full_solver,
    bench_registry_solvers
);
criterion_main!(benches);
