//! Cyclic construction of Theorem 5.2: scaling of the partial-solution + induction algorithm.

use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
use bmp_platform::Instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn deficient_instance(n: usize, seed: u64) -> Instance {
    // A large source and a flat tail, so that the cyclic construction has to run its
    // induction phase over most of the nodes.
    let mut rng = StdRng::seed_from_u64(seed);
    let open: Vec<f64> = (0..n).map(|_| rng.gen_range(0.8..1.2)).collect();
    Instance::open_only(5.0, open).unwrap()
}

fn bench_cyclic_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cyclic_construction");
    for &n in &[100usize, 1_000, 5_000] {
        let inst = deficient_instance(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| cyclic_open_optimal_scheme(inst).unwrap().1)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cyclic_construction);
criterion_main!(benches);
