//! Dichotomic search (Theorem 4.1): cost of the optimal-throughput search as a function of
//! the instance size and the requested tolerance.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dichotomic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dichotomic_search");
    let config = GeneratorConfig::new(500, 0.6).unwrap();
    let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
    let inst = generator.generate(&mut StdRng::seed_from_u64(99));
    for &tolerance in &[1e-4_f64, 1e-8, 1e-12] {
        let solver = AcyclicGuardedSolver::with_tolerance(tolerance);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{tolerance:e}")),
            &inst,
            |b, inst| b.iter(|| solver.optimal_throughput(inst).0),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dichotomic);
criterion_main!(benches);
