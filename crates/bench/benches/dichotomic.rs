//! Dichotomic search benches: cost of the optimal-throughput search as a function of the
//! tolerance (shared `DichotomicSearch` driver, Theorem 4.1) and the cost of re-scoring
//! near-identical schemes — per-iteration `to_flow_arena` rebuilds versus the retained
//! incremental-capacity arena of `EvalCtx` (the ROADMAP follow-on from PR 1).

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::solver::{AcyclicGuardedAlgorithm, EvalCtx, Solver};
use bmp_flow::FlowSolver;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_platform::Instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(receivers: usize, p: f64, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

fn bench_dichotomic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dichotomic_search");
    let inst = random_instance(500, 0.6, 99);
    for &tolerance in &[1e-4_f64, 1e-8, 1e-12] {
        let solver = AcyclicGuardedSolver::with_tolerance(tolerance);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{tolerance:e}")),
            &inst,
            |b, inst| b.iter(|| solver.optimal_throughput(inst).0),
        );
    }
    group.finish();
}

/// Re-scoring near-identical schemes, the access pattern of a search loop probing a
/// scheme whose edge set is fixed while the rates move. Three variants, identical flow
/// solves, different arena handling:
///
/// * `rebuild` — what the pre-registry code paid per probe: `to_flow_arena` (rate-matrix
///   scan + full CSR construction with its allocations) then the batched evaluator;
/// * `incremental` — `EvalCtx::throughput`: same matrix scan, but the retained arena's
///   capacities are rewritten in place instead of rebuilding the CSR layout;
/// * `incremental-edges` — `EvalCtx::min_max_flow` over a caller-maintained edge list
///   (the search loop mutates the probed rate directly), skipping the matrix scan too.
fn bench_reevaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dichotomic_reevaluation");
    group.sample_size(20);
    for &n in &[50usize, 200, 500] {
        let inst = random_instance(n, 0.7, 42);
        let solution = AcyclicGuardedAlgorithm
            .solve(&inst, &mut EvalCtx::new())
            .expect("solvable");
        let receivers: Vec<usize> = inst.receivers().collect();
        let base_edges = solution.scheme.edges();

        group.bench_with_input(
            BenchmarkId::new("rebuild", n),
            &solution.scheme,
            |b, scheme| {
                let mut scheme = scheme.clone();
                let mut solver = FlowSolver::new();
                let mut k = 0usize;
                b.iter(|| {
                    let (from, to, rate) = base_edges[k % base_edges.len()];
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    scheme.set_rate(from, to, rate * scale);
                    let arena = scheme.to_flow_arena();
                    solver.min_max_flow(&arena, 0, &receivers)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental", n),
            &solution.scheme,
            |b, scheme| {
                let mut scheme = scheme.clone();
                let mut ctx = EvalCtx::new();
                let mut k = 0usize;
                b.iter(|| {
                    let (from, to, rate) = base_edges[k % base_edges.len()];
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    scheme.set_rate(from, to, rate * scale);
                    ctx.throughput(&scheme)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental-edges", n),
            &solution.scheme,
            |b, scheme| {
                let num_nodes = scheme.instance().num_nodes();
                let mut edges = base_edges.clone();
                let mut ctx = EvalCtx::new();
                let mut k = 0usize;
                b.iter(|| {
                    let index = k % edges.len();
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    edges[index].2 = base_edges[index].2 * scale;
                    ctx.min_max_flow(num_nodes, &edges, 0, &receivers)
                })
            },
        );

        // Single-sink probes (the churn-sweep access pattern): with only one max-flow
        // per evaluation, the arena handling dominates the iteration cost.
        let probe_sink = receivers[receivers.len() / 2];
        group.bench_with_input(
            BenchmarkId::new("rebuild-single-sink", n),
            &solution.scheme,
            |b, scheme| {
                let mut scheme = scheme.clone();
                let mut solver = FlowSolver::new();
                let mut k = 0usize;
                b.iter(|| {
                    let (from, to, rate) = base_edges[k % base_edges.len()];
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    scheme.set_rate(from, to, rate * scale);
                    let arena = scheme.to_flow_arena();
                    solver.max_flow(&arena, 0, probe_sink)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental-single-sink", n),
            &solution.scheme,
            |b, scheme| {
                let num_nodes = scheme.instance().num_nodes();
                let mut edges = base_edges.clone();
                let mut ctx = EvalCtx::new();
                let sinks = [probe_sink];
                let mut k = 0usize;
                b.iter(|| {
                    let index = k % edges.len();
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    edges[index].2 = base_edges[index].2 * scale;
                    ctx.min_max_flow(num_nodes, &edges, 0, &sinks)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dichotomic, bench_reevaluation);
criterion_main!(benches);
