//! Dichotomic search benches: cost of the optimal-throughput search as a function of the
//! tolerance (shared `DichotomicSearch` driver, Theorem 4.1) and the cost of re-scoring
//! near-identical schemes — per-iteration `to_flow_arena` rebuilds versus the retained
//! incremental-capacity arena of `EvalCtx` (PR 2) versus the dirty-edge-journal fast
//! path that skips the O(n²) rate-matrix rescan entirely (this PR), measured up to
//! n = 5000 overlays. The results are drained from the harness and written as
//! `BENCH_dichotomic.json` at the repo root (machine-readable perf trajectory).

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::solver::{batched_guarded_throughputs, AcyclicGuardedAlgorithm, EvalCtx, Solver};
use bmp_core::BroadcastScheme;
use bmp_flow::FlowSolver;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_platform::Instance;
use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn random_instance(receivers: usize, p: f64, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

fn bench_dichotomic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dichotomic_search");
    let inst = random_instance(500, 0.6, 99);
    for &tolerance in &[1e-4_f64, 1e-8, 1e-12] {
        let solver = AcyclicGuardedSolver::with_tolerance(tolerance);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{tolerance:e}")),
            &inst,
            |b, inst| b.iter(|| solver.optimal_throughput(inst).0),
        );
    }
    group.finish();
}

/// Re-scoring near-identical schemes, the access pattern of a search loop probing a
/// scheme whose edge set is fixed while the rates move. Three variants, identical flow
/// solves, different arena handling:
///
/// * `rebuild` — what the pre-registry code paid per probe: `to_flow_arena` (rate-matrix
///   scan + full CSR construction with its allocations) then the batched evaluator;
/// * `incremental` — `EvalCtx::throughput`: same matrix scan, but the retained arena's
///   capacities are rewritten in place instead of rebuilding the CSR layout;
/// * `incremental-edges` — `EvalCtx::min_max_flow` over a caller-maintained edge list
///   (the search loop mutates the probed rate directly), skipping the matrix scan too.
fn bench_reevaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dichotomic_reevaluation");
    group.sample_size(20);
    for &n in &[50usize, 200, 500] {
        let inst = random_instance(n, 0.7, 42);
        let solution = AcyclicGuardedAlgorithm
            .solve(&inst, &mut EvalCtx::new())
            .expect("solvable");
        let receivers: Vec<usize> = inst.receivers().collect();
        let base_edges = solution.scheme.edges();

        group.bench_with_input(
            BenchmarkId::new("rebuild", n),
            &solution.scheme,
            |b, scheme| {
                let mut scheme = scheme.clone();
                let mut solver = FlowSolver::new();
                let mut k = 0usize;
                b.iter(|| {
                    let (from, to, rate) = base_edges[k % base_edges.len()];
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    scheme.set_rate(from, to, rate * scale);
                    let arena = scheme.to_flow_arena();
                    solver.min_max_flow(&arena, 0, &receivers)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental", n),
            &solution.scheme,
            |b, scheme| {
                let mut scheme = scheme.clone();
                let mut ctx = EvalCtx::new();
                let mut k = 0usize;
                b.iter(|| {
                    let (from, to, rate) = base_edges[k % base_edges.len()];
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    scheme.set_rate(from, to, rate * scale);
                    ctx.throughput(&scheme)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental-edges", n),
            &solution.scheme,
            |b, scheme| {
                let num_nodes = scheme.instance().num_nodes();
                let mut edges = base_edges.clone();
                let mut ctx = EvalCtx::new();
                let mut k = 0usize;
                b.iter(|| {
                    let index = k % edges.len();
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    edges[index].2 = base_edges[index].2 * scale;
                    ctx.min_max_flow(num_nodes, &edges, 0, &receivers)
                })
            },
        );

        // Single-sink probes (the churn-sweep access pattern): with only one max-flow
        // per evaluation, the arena handling dominates the iteration cost.
        let probe_sink = receivers[receivers.len() / 2];
        group.bench_with_input(
            BenchmarkId::new("rebuild-single-sink", n),
            &solution.scheme,
            |b, scheme| {
                let mut scheme = scheme.clone();
                let mut solver = FlowSolver::new();
                let mut k = 0usize;
                b.iter(|| {
                    let (from, to, rate) = base_edges[k % base_edges.len()];
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    scheme.set_rate(from, to, rate * scale);
                    let arena = scheme.to_flow_arena();
                    solver.max_flow(&arena, 0, probe_sink)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental-single-sink", n),
            &solution.scheme,
            |b, scheme| {
                let num_nodes = scheme.instance().num_nodes();
                let mut edges = base_edges.clone();
                let mut ctx = EvalCtx::new();
                let sinks = [probe_sink];
                let mut k = 0usize;
                b.iter(|| {
                    let index = k % edges.len();
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 1.0 };
                    k += 1;
                    edges[index].2 = base_edges[index].2 * scale;
                    ctx.min_max_flow(num_nodes, &edges, 0, &sinks)
                })
            },
        );
    }
    group.finish();
}

/// The scale benchmark of the dirty-edge journal: single-edge re-probes (the dichotomic
/// access pattern) on n ∈ {500, 2000, 5000} overlays, journaled evaluation versus the
/// PR-2 scan-based path. Both variants run identical flow solves on identical arenas
/// (the journal is exact); the difference is purely the per-probe O(n²) rate-matrix
/// rescan the journal skips, so the gap widens quadratically with n.
fn bench_journaled(c: &mut Criterion) {
    let mut group = c.benchmark_group("journaled_reevaluation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[500usize, 2000, 5000] {
        let inst = random_instance(n, 0.7, 42);
        let solution = AcyclicGuardedAlgorithm
            .solve(&inst, &mut EvalCtx::new())
            .expect("solvable");
        let receivers: Vec<usize> = inst.receivers().collect();
        let base_edges = solution.scheme.edges();
        let probe_sink = receivers[receivers.len() / 2];

        // A probe loop evaluating one max-flow per mutation: arena handling dominates.
        let mut single_sink = |label: &str, journal: bool| {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &solution.scheme,
                |b, scheme: &BroadcastScheme| {
                    let mut scheme = scheme.clone();
                    let mut ctx = EvalCtx::new();
                    ctx.set_journal_enabled(journal);
                    let mut k = 0usize;
                    b.iter(|| {
                        let (from, to, rate) = base_edges[k % base_edges.len()];
                        let scale = if k.is_multiple_of(2) { 0.999 } else { 0.9995 };
                        k += 1;
                        scheme.set_rate(from, to, rate * scale);
                        ctx.max_flow_to(&scheme, probe_sink)
                    })
                },
            );
        };
        single_sink("scan-single-sink", false);
        single_sink("journaled-single-sink", true);

        // Full multi-sink evaluation per probe (flow solves dominate at scale, so the
        // journal's win is relative — measured at the two acceptance sizes only).
        if n <= 2000 {
            let mut full_eval = |label: &str, journal: bool| {
                group.bench_with_input(
                    BenchmarkId::new(label, n),
                    &solution.scheme,
                    |b, scheme: &BroadcastScheme| {
                        let mut scheme = scheme.clone();
                        let mut ctx = EvalCtx::new();
                        ctx.set_journal_enabled(journal);
                        let mut k = 0usize;
                        b.iter(|| {
                            let (from, to, rate) = base_edges[k % base_edges.len()];
                            let scale = if k.is_multiple_of(2) { 0.999 } else { 0.9995 };
                            k += 1;
                            scheme.set_rate(from, to, rate * scale);
                            ctx.throughput(&scheme)
                        })
                    },
                );
            };
            full_eval("scan-full", false);
            full_eval("journaled-full", true);
        }
    }
    group.finish();
}

/// Speculative dichotomic probing against the flow pool: the full Theorem 4.1 solve at
/// depth 0 (serial — one probe per bisection step), 1 and 2 (the candidate tree of the
/// next 1–2 levels is evaluated concurrently and the wrong branch discarded). The
/// three runs are bit-identical in their answer; the depth only trades wasted probes
/// for critical-path latency, so the gap is the direct measure of "when speculation
/// wins" (multi-lane: spec beats serial; single-core: speculation is pure overhead).
fn bench_speculative(c: &mut Criterion) {
    let mut group = c.benchmark_group("dichotomic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let inst = random_instance(400, 0.6, 7);
    for (label, depth) in [("serial", 0usize), ("spec1", 1), ("spec2", 2)] {
        group.bench_with_input(BenchmarkId::new("speculative", label), &inst, |b, inst| {
            b.iter(|| {
                let mut ctx = EvalCtx::new();
                ctx.set_speculation(depth);
                AcyclicGuardedAlgorithm
                    .solve(inst, &mut ctx)
                    .expect("solvable")
                    .throughput
            })
        });
    }
    group.finish();
}

/// Warm residual reuse across re-probes: the dichotomic access pattern (fixed edge
/// set, one rate nudged per probe, full multi-sink evaluation) with and without
/// [`EvalCtx::set_incremental`]. Values are bit-identical; warm mode retains each
/// sink's residual per `(arena epoch, source, sink)` and answers most per-sink solves
/// with a capacity-delta apply plus a certificate check instead of a cold Dinic —
/// only the bottleneck sink (whose exact value steers the running minimum) and the
/// first, unlimited solve recompute cold. The receiver count stays below the warm
/// cache's 64-state cap so the states survive probe to probe; the gap is the direct
/// measure of what the retained residuals save (the perf gate pins warm ≥ 1.5× cold).
fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("dichotomic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let inst = random_instance(48, 0.7, 21);
    let solution = AcyclicGuardedAlgorithm
        .solve(&inst, &mut EvalCtx::new())
        .expect("solvable");
    let base_edges = solution.scheme.edges();
    for (label, incremental) in [("cold", false), ("warm", true)] {
        group.bench_with_input(
            BenchmarkId::new("incremental", label),
            &solution.scheme,
            |b, scheme| {
                let mut scheme = scheme.clone();
                let mut ctx = EvalCtx::new();
                ctx.set_parallelism(1);
                ctx.set_incremental(incremental);
                let mut k = 0usize;
                b.iter(|| {
                    let (from, to, rate) = base_edges[k % base_edges.len()];
                    let scale = if k.is_multiple_of(2) { 0.999 } else { 0.9995 };
                    k += 1;
                    scheme.set_rate(from, to, rate * scale);
                    ctx.throughput(&scheme)
                })
            },
        );
    }
    group.finish();
}

/// Cross-instance batched probing: a 64-cell sweep solved by `BatchedSearch` (one
/// pending probe per unfinished cell, gathered into shared pool passes) versus the
/// per-cell serial loop the sweeps used before. Cell results are bit-identical; the
/// batching only changes how probes share the pool's lanes.
fn bench_batched_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let instances: Vec<Instance> = (0..64)
        .map(|i| random_instance(24, 0.6, 1000 + i))
        .collect();
    let tolerance = 1e-9;
    group.bench_with_input(
        BenchmarkId::new("batched-probes", "batched"),
        &instances,
        |b, instances| {
            b.iter(|| {
                batched_guarded_throughputs(instances, tolerance, 0)
                    .iter()
                    .map(|(t, _, _)| t)
                    .sum::<f64>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched-probes", "per-cell"),
        &instances,
        |b, instances| {
            let solver = AcyclicGuardedSolver::with_tolerance(tolerance);
            b.iter(|| {
                instances
                    .iter()
                    .map(|inst| solver.optimal_throughput(inst).0)
                    .sum::<f64>()
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_dichotomic,
    bench_reevaluation,
    bench_journaled,
    bench_speculative,
    bench_incremental,
    bench_batched_sweep
);

fn main() {
    benches();
    if let Some(path) = bmp_bench::write_bench_json("dichotomic", &criterion::take_reports()) {
        println!("wrote {}", path.display());
    }
    criterion::Criterion::default().final_summary();
}
