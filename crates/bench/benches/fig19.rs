//! Figure 19 regeneration bench: per-instance ratio computation and a reduced cell.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_experiments::fig19::{ratios_for_instance, run, Fig19Config};
use bmp_platform::distribution::NamedDistribution;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_per_instance(c: &mut Criterion) {
    let solver = AcyclicGuardedSolver::with_tolerance(1e-8);
    let mut group = c.benchmark_group("fig19_instance_ratios");
    for &size in &[10usize, 100, 1000] {
        let config = GeneratorConfig::new(size, 0.7).unwrap();
        let generator = InstanceGenerator::new(config, NamedDistribution::Power1.build());
        let inst = generator.generate(&mut StdRng::seed_from_u64(5));
        group.bench_with_input(BenchmarkId::from_parameter(size), &inst, |b, inst| {
            b.iter(|| ratios_for_instance(inst, &solver).optimal_acyclic)
        });
    }
    group.finish();
}

fn bench_reduced_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_cell");
    group.sample_size(10);
    let config = Fig19Config {
        distributions: vec![NamedDistribution::Unif100],
        open_probabilities: vec![0.7],
        sizes: vec![50],
        instances_per_cell: 50,
        seed: 1,
        threads: 1,
    };
    group.bench_function("unif100_p07_n50_x50", |b| {
        b.iter(|| run(&config).cells.len())
    });
    group.finish();
}

criterion_group!(benches, bench_per_instance, bench_reduced_cell);
criterion_main!(benches);
