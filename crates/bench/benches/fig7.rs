//! Figure 7 regeneration bench: one (n, m) cell of the tight homogeneous grid, and a small
//! full grid.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::homogeneous::worst_ratio_over_delta;
use bmp_experiments::fig7::{run, Fig7Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_single_cell(c: &mut Criterion) {
    let solver = AcyclicGuardedSolver::default();
    let mut group = c.benchmark_group("fig7_cell");
    for &(n, m) in &[(20usize, 10usize), (50, 20), (100, 42)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| {
                b.iter(|| {
                    worst_ratio_over_delta(n, m, 16, &solver)
                        .unwrap()
                        .worst_ratio
                })
            },
        );
    }
    group.finish();
}

fn bench_quick_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_grid");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| run(Fig7Config::quick()).cells.len()));
    group.finish();
}

criterion_group!(benches, bench_single_cell, bench_quick_grid);
criterion_main!(benches);
