//! Max-flow substrate benchmarks: Dinic vs Edmonds-Karp vs push-relabel on layered networks.

use bmp_flow::{dinic_max_flow, edmonds_karp_max_flow, push_relabel_max_flow, FlowNetwork};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Layered random network with `layers` layers of `width` nodes.
fn layered_network(layers: usize, width: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_nodes = 2 + layers * width;
    let mut net = FlowNetwork::new(num_nodes);
    let node = |layer: usize, index: usize| 2 + layer * width + index;
    for i in 0..width {
        net.add_edge(0, node(0, i), rng.gen_range(1.0..10.0));
        net.add_edge(node(layers - 1, i), 1, rng.gen_range(1.0..10.0));
    }
    for layer in 0..layers - 1 {
        for i in 0..width {
            for j in 0..width {
                if rng.gen::<f64>() < 0.5 {
                    net.add_edge(node(layer, i), node(layer + 1, j), rng.gen_range(0.5..5.0));
                }
            }
        }
    }
    net
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_flow");
    for &width in &[4usize, 8, 16] {
        let net = layered_network(6, width, 42);
        group.bench_with_input(BenchmarkId::new("dinic", width), &net, |b, net| {
            b.iter(|| dinic_max_flow(net, 0, 1).value)
        });
        group.bench_with_input(BenchmarkId::new("edmonds_karp", width), &net, |b, net| {
            b.iter(|| edmonds_karp_max_flow(net, 0, 1).value)
        });
        group.bench_with_input(BenchmarkId::new("push_relabel", width), &net, |b, net| {
            b.iter(|| push_relabel_max_flow(net, 0, 1).value)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
