//! Simplex solver benchmark: the cyclic-throughput LP oracle on growing instances.

use bmp_core::lp_check::optimal_cyclic_lp;
use bmp_platform::Instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_lp_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_cyclic_oracle");
    group.sample_size(10);
    for &receivers in &[3usize, 5, 7] {
        let open: Vec<f64> = (0..receivers / 2 + 1).map(|i| 2.0 + i as f64).collect();
        let guarded: Vec<f64> = (0..receivers / 2).map(|i| 1.0 + i as f64 * 0.5).collect();
        let inst = Instance::new(4.0, open, guarded).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(receivers), &inst, |b, inst| {
            b.iter(|| optimal_cyclic_lp(inst).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp_oracle);
criterion_main!(benches);
