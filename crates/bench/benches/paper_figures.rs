//! Running-example (Figures 1/2/5) regeneration bench, including the max-flow verification.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_experiments::paper_figures;
use bmp_platform::paper::figure1;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_paper_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(20);
    group.bench_function("solve_figure1", |b| {
        let solver = AcyclicGuardedSolver::default();
        let inst = figure1();
        b.iter(|| solver.solve(&inst).throughput)
    });
    group.bench_function("full_report_with_simulation", |b| {
        b.iter(|| paper_figures::run().simulated_rate)
    });
    group.finish();
}

criterion_group!(benches, bench_paper_figures);
criterion_main!(benches);
