//! Fleet-layer benchmarks (`bmp-serve`): the cost of hosting many sessions in one
//! process.
//!
//! Two pinned ids (gated by `validate_bench`):
//!
//! * `serve/fleet-step/256` — a 256-session fleet on 4 shards, tiny per-session
//!   platforms, stepped to completion. Sharding is where the fleet's sublinear
//!   wall-clock vs serial stepping comes from; this id watches the whole path
//!   (coordinator, admission, shard round-robin, ordered merge).
//! * `serve/admission/1k` — 1000 admission decisions under a combined session-cap +
//!   capacity + queue policy, no sessions run: the pure control-plane cost.

use bmp_serve::{
    run_fleet, AdmissionPolicy, ChurnConfig, FleetConfig, SessionFaults, SupervisionConfig,
};
use criterion::{criterion_group, BenchmarkId, Criterion};

fn fleet_config(sessions: usize, shards: usize) -> FleetConfig {
    FleetConfig {
        sessions,
        shards,
        receivers: 3,
        chunks: 12,
        seed: 0xF1EE7,
        floor: 0.9,
        flow_threads: 1,
        repair_algorithm: None,
        admission: AdmissionPolicy::default(),
        churn: ChurnConfig {
            start: 2.0,
            spacing: 2.0,
            waves: 1,
        },
        fault_plan: None,
        supervision: SupervisionConfig::default(),
        session_faults: SessionFaults::default(),
    }
}

fn bench_fleet_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    let sessions = 256usize;
    let config = fleet_config(sessions, 4);
    group.bench_with_input(
        BenchmarkId::new("fleet-step", sessions),
        &config,
        |b, config| {
            b.iter(|| {
                let report = run_fleet(config);
                assert_eq!(report.sessions.len(), sessions);
                report.metrics.total_swaps
            })
        },
    );
    group.finish();
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    // Deterministic synthetic loads spanning the policy's interesting range.
    let loads: Vec<f64> = (0..1000).map(|i| 50.0 + ((i * 37) % 450) as f64).collect();
    let policy = AdmissionPolicy {
        max_sessions: Some(64),
        capacity: Some(16_000.0),
        queue: true,
    };
    group.bench_with_input(
        BenchmarkId::new("admission", "1k"),
        &(policy, loads),
        |b, (policy, loads)| {
            b.iter(|| {
                let decisions = policy.decide(loads);
                assert_eq!(decisions.len(), 1000);
                decisions.len()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_fleet_step, bench_admission);

fn main() {
    benches();
    if let Some(path) = bmp_bench::write_bench_json("serve", &criterion::take_reports()) {
        println!("wrote {}", path.display());
    }
    criterion::Criterion::default().final_summary();
}
