//! Chunk-level streaming simulator benchmarks (the Massoulié-style data plane).

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_sim::{Overlay, SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_simulation");
    group.sample_size(10);
    let solver = AcyclicGuardedSolver::default();
    for &receivers in &[10usize, 50] {
        let config = GeneratorConfig::new(receivers, 0.7).unwrap();
        let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
        let inst = generator.generate(&mut StdRng::seed_from_u64(17));
        let solution = solver.solve(&inst);
        let overlay = Overlay::from_scheme(&solution.scheme);
        let sim_config = SimConfig {
            num_chunks: 200,
            ..SimConfig::default()
        }
        .scaled_to(solution.throughput, 2.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(receivers),
            &(overlay, sim_config),
            |b, (overlay, sim_config)| {
                b.iter(|| {
                    Simulator::new(overlay.clone(), *sim_config)
                        .run()
                        .worst_progress()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
