//! Chunk-level streaming simulator benchmarks (the Massoulié-style data plane).
//!
//! Four groups:
//!
//! * `streaming_simulation` — whole runs over solved overlays (end-to-end cost);
//! * `sim_round` — the per-round hot path of the session engine: stepping a
//!   mid-broadcast session (word-packed possession bitsets, O(chunks/64) useful-chunk
//!   scans) and the rarest-first pick on wide chunk sets;
//! * `fault_storm` — the hardened repair pipeline under injected solver failures: one
//!   full faulted repair cycle (probe, residual, retries, hot-swap plan);
//! * `repair` — the warm-started repair solve against its cold twin: the same
//!   post-departure re-solve with and without the residual-throughput lower bracket
//!   ([`EvalCtx::set_warm_start_lower`]) the controller arms before every attempt.
//!
//! Drained into `BENCH_sim.json` at the repo root; the `sim_round`, `fault_storm` and
//! `repair` ids are pinned by the CI perf gate (`validate_bench`).

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::churn::repair_with;
use bmp_core::{registry, EvalCtx};
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_platform::Instance;
use bmp_sim::{
    AdaptationPolicy, ChunkBitset, FaultPlan, Overlay, RepairController, Session, SimConfig,
    Simulator,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn generated_instance(receivers: usize, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, 0.7).unwrap();
    let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

fn solved_overlay(receivers: usize, seed: u64) -> (Overlay, f64) {
    let solution = AcyclicGuardedSolver::default().solve(&generated_instance(receivers, seed));
    (Overlay::from_scheme(&solution.scheme), solution.throughput)
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_simulation");
    group.sample_size(10);
    for &receivers in &[10usize, 50] {
        let (overlay, throughput) = solved_overlay(receivers, 17);
        let sim_config = SimConfig {
            num_chunks: 200,
            ..SimConfig::default()
        }
        .scaled_to(throughput, 2.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(receivers),
            &(overlay, sim_config),
            |b, (overlay, sim_config)| {
                b.iter(|| {
                    Simulator::new(overlay.clone(), *sim_config)
                        .run()
                        .worst_progress()
                })
            },
        );
    }
    group.finish();
}

/// The session engine's hot path: one round over every edge, each push scanning the
/// word-packed possession sets. The session is advanced to mid-broadcast first (all
/// possession sets partially filled — the expensive regime for useful-chunk scans), then
/// every iteration steps a fresh clone a fixed number of rounds.
fn bench_session_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_round");
    group.sample_size(10);

    let (overlay, throughput) = solved_overlay(50, 17);
    let sim_config = SimConfig {
        num_chunks: 1000,
        ..SimConfig::default()
    }
    .scaled_to(throughput, 2.0);
    let mut warm = Session::new(overlay, sim_config);
    // Advance to mid-broadcast: stop once the mean receiver holds ~half the message.
    while !warm.is_complete() {
        warm.step();
        let held: usize = warm.counts().iter().skip(1).sum();
        if held * 2 >= 1000 * (warm.counts().len() - 1) {
            break;
        }
    }
    const ROUNDS: usize = 25;
    group.bench_with_input(
        BenchmarkId::new("session", "50x1000"),
        &warm,
        |b, session| {
            b.iter(|| {
                let mut session = session.clone();
                let mut delivered = 0usize;
                for _ in 0..ROUNDS {
                    delivered += session.step().delivered;
                }
                delivered
            })
        },
    );

    // The rarest-first pick is the most expensive policy scan: it must visit every
    // useful chunk, not just the first hit. 4096 chunks = 64 words per scan.
    let chunks = 4096usize;
    let sender = {
        let mut set = ChunkBitset::new(chunks);
        (0..chunks).filter(|c| c % 3 != 0).for_each(|c| {
            set.insert(c);
        });
        set
    };
    let receiver = {
        let mut set = ChunkBitset::new(chunks);
        (0..chunks).filter(|c| c % 5 == 0).for_each(|c| {
            set.insert(c);
        });
        set
    };
    let replication: Vec<usize> = (0..chunks).map(|c| 1 + (c * 31) % 97).collect();
    group.bench_with_input(
        BenchmarkId::new("pick/rarest-first", chunks),
        &(sender, receiver, replication),
        |b, (sender, receiver, replication)| b.iter(|| sender.rarest_useful(receiver, replication)),
    );

    // A/B baseline: the pre-session boolean data plane (one byte per chunk, no word
    // skipping) — what every pick cost before the bitset refactor.
    let sender_bools: Vec<bool> = (0..chunks).map(|c| c % 3 != 0).collect();
    let receiver_bools: Vec<bool> = (0..chunks).map(|c| c % 5 == 0).collect();
    let replication_bools: Vec<usize> = (0..chunks).map(|c| 1 + (c * 31) % 97).collect();
    group.bench_with_input(
        BenchmarkId::new("pick/rarest-first-bools", chunks),
        &(sender_bools, receiver_bools, replication_bools),
        |b, (sender, receiver, replication)| {
            b.iter(|| {
                (0..sender.len())
                    .filter(|&c| sender[c] && !receiver[c])
                    .min_by_key(|&c| (replication[c], c))
            })
        },
    );
    group.finish();
}

/// One full faulted repair cycle of the hardened controller on a 50-receiver platform:
/// the victim probe (journal-riding bisection), the pooled-capable residual evaluation,
/// two injected solve failures absorbed by the retry budget, and the successful third
/// attempt producing the hot-swap plan. This is the whole control-plane cost of
/// surviving a transient solver outage, gated so hardening never regresses it silently.
fn bench_fault_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_storm");
    group.sample_size(10);
    let receivers = 50usize;
    let instance = generated_instance(receivers, 17);
    let solution = AcyclicGuardedSolver::default().solve(&instance);
    let victim = solution.scheme.busiest_receiver().unwrap();
    group.bench_with_input(
        BenchmarkId::new("repair-cycle", receivers),
        &(instance, solution),
        |b, (instance, solution)| {
            b.iter(|| {
                let mut controller = RepairController::new(
                    instance.clone(),
                    solution.scheme.clone(),
                    solution.throughput,
                    0.9,
                );
                FaultPlan::disabled()
                    .with_solve_failures(vec![0, 1])
                    .install(controller.ctx_mut());
                let decision = controller.adapt(&[victim], 0.0);
                assert!(decision.is_some(), "the third attempt must repair");
                controller.decisions()[0].attempts
            })
        },
    );
    group.finish();
}

/// The repair-latency halves of one hot-swap: the post-departure re-solve warm-started
/// from the verified residual throughput of the still-deployed overlay (the bracket the
/// controller arms via [`EvalCtx::set_warm_start_lower`] before every attempt) against
/// the identical solve from a cold lower bracket of zero. The victim is a leaf of the
/// deployed overlay — it relays to no one, so every survivor stays fed and the residual
/// bracket is non-trivial (a relay victim starves its subtree, residual 0, and the warm
/// solve degenerates into the cold one). Both variants run the same 50-receiver
/// departure on a fresh context, so the delta isolates what the warm bracket saves in
/// bisection probes — the cost the `sim_churn` telemetry CSV now reports per repair
/// (`repair_ms_mean` / `repair_ms_max`).
fn bench_repair_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair");
    group.sample_size(10);
    let receivers = 50usize;
    let instance = generated_instance(receivers, 17);
    let solution = AcyclicGuardedSolver::default().solve(&instance);
    let deployed = Overlay::from_scheme(&solution.scheme);
    let num_nodes = instance.num_nodes();
    let victim = (1..num_nodes)
        .find(|&node| deployed.edges().iter().all(|edge| edge.from != node))
        .expect("an acyclic overlay always has a leaf receiver");
    let survivors: Vec<usize> = (1..num_nodes).filter(|&node| node != victim).collect();
    // The residual throughput of the deployed overlay on the survivors, computed
    // exactly as the controller's residual probe does: this is the verified feasible
    // lower bracket a real repair warm-starts from.
    let residual = EvalCtx::new().min_max_flow_with(num_nodes, 0, &survivors, |edges| {
        edges.extend(
            deployed
                .edges()
                .iter()
                .filter(|edge| edge.from != victim && edge.to != victim)
                .map(|edge| (edge.from, edge.to, edge.rate)),
        );
    });
    assert!(
        residual.is_finite() && residual > 0.0,
        "the deployed overlay must retain residual throughput after one departure"
    );
    let solvers = registry();
    let solver = solvers
        .iter()
        .find(|solver| solver.name() == "acyclic-guarded")
        .expect("the registry always carries the acyclic-guarded solver");
    for (variant, hint) in [("warm", Some(residual)), ("cold", None)] {
        group.bench_with_input(
            BenchmarkId::new("warm-vs-cold", variant),
            &hint,
            |b, hint| {
                b.iter(|| {
                    let mut ctx = EvalCtx::new();
                    // The hint is one-shot, so a real controller re-arms it before
                    // every attempt; a fresh context per iteration does the same.
                    ctx.set_warm_start_lower(*hint);
                    let plan = repair_with(&instance, &[victim], solver.as_ref(), &mut ctx)
                        .expect("the fault-free repair solve cannot fail")
                        .expect("a survivor remains after one departure");
                    plan.throughput
                })
            },
        );
    }
    group.finish();
}

/// One full controller adaptation cycle with and without warm residual reuse
/// ([`RepairController::set_incremental`]): the victim probe's degradation-tolerance
/// bisection and the survivor residual evaluation re-probe the retained arena with
/// near-identical capacity vectors dozens of times per cycle, so warm mode answers
/// most per-sink max-flows from a retained residual state instead of a cold Dinic
/// (the certification solve stays cold by construction either way). Decisions,
/// verdicts and telemetry probe counts are bit-identical (asserted by the sim
/// suite); the delta is pure wall time. Unlike the speculative benches this win
/// needs no spare cores — the warm path is sequential — so the perf gate asserts
/// warm beats its cold sibling on every host.
fn bench_repair_incremental_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair");
    group.sample_size(10);
    let receivers = 50usize;
    let instance = generated_instance(receivers, 17);
    let solution = AcyclicGuardedSolver::default().solve(&instance);
    let victim = solution.scheme.busiest_receiver().unwrap();
    for (variant, incremental) in [("warm", true), ("cold", false)] {
        group.bench_with_input(
            BenchmarkId::new("incremental-vs-cold", variant),
            &(&instance, &solution),
            |b, (instance, solution)| {
                b.iter(|| {
                    let mut controller = RepairController::new(
                        (*instance).clone(),
                        solution.scheme.clone(),
                        solution.throughput,
                        0.9,
                    );
                    controller.set_incremental(incremental);
                    let decision = controller.adapt(&[victim], 0.0);
                    assert!(decision.is_some(), "the fault-free repair must succeed");
                    controller.ctx().flows_warm_started()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_session_round,
    bench_fault_storm,
    bench_repair_warm_vs_cold,
    bench_repair_incremental_vs_cold
);

fn main() {
    benches();
    if let Some(path) = bmp_bench::write_bench_json("sim", &criterion::take_reports()) {
        println!("wrote {}", path.display());
    }
    criterion::Criterion::default().final_summary();
}
