//! Chunk-policy ablation: delivery time of the same overlay under the four push policies
//! (random-useful — the one analysed by Massoulié et al. —, sequential, latest-useful and
//! rarest-first), plus the overhead of churn handling and progress tracing in the engine.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_sim::{ChunkPolicy, ChurnSchedule, Overlay, SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn overlay_and_config() -> (Overlay, SimConfig, f64) {
    let config = GeneratorConfig::new(30, 0.7).unwrap();
    let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
    let inst = generator.generate(&mut StdRng::seed_from_u64(4242));
    let solution = AcyclicGuardedSolver::default().solve(&inst);
    let sim_config = SimConfig {
        num_chunks: 200,
        // Bound the horizon so a churn-starved run stays cheap to benchmark.
        max_rounds: 5_000,
        ..SimConfig::default()
    }
    .scaled_to(solution.throughput, 2.0);
    (
        Overlay::from_scheme(&solution.scheme),
        sim_config,
        solution.throughput,
    )
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_policy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (overlay, base_config, _) = overlay_and_config();
    for policy in ChunkPolicy::all() {
        let config = base_config.with_policy(policy);
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &config,
            |b, config| b.iter(|| Simulator::new(overlay.clone(), *config).run().rounds_run),
        );
    }
    group.finish();
}

fn bench_engine_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_features");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (overlay, config, throughput) = overlay_and_config();
    group.bench_function("plain_run", |b| {
        b.iter(|| Simulator::new(overlay.clone(), config).run().rounds_run)
    });
    group.bench_function("traced_run", |b| {
        b.iter(|| {
            Simulator::new(overlay.clone(), config)
                .run_traced(10)
                .1
                .len()
        })
    });
    let horizon = 200.0 * config.chunk_size / throughput;
    let churn = ChurnSchedule::departures_at(0.5 * horizon, &[overlay.num_nodes() - 1]);
    group.bench_function("run_with_churn", |b| {
        b.iter(|| {
            Simulator::new(overlay.clone(), config)
                .with_churn(churn.clone())
                .run()
                .rounds_run
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_engine_features);
criterion_main!(benches);
