//! Multi-sink throughput evaluation: naive per-sink Dinic vs the batched CSR evaluator.
//!
//! This is the benchmark behind the flow-kernel redesign: `BroadcastScheme::throughput`
//! is `min_k maxflow(source → C_k)` over all receivers, and the seed implementation ran
//! one from-scratch Dinic (residual rebuild included) per receiver. The batched evaluator
//! builds one CSR arena, orders the sinks by in-capacity and caps every solve at the
//! running minimum. Three variants are timed on random broadcast-like digraphs with
//! n ∈ {50, 200, 500} nodes:
//!
//! * `naive`          — per-sink `dinic_max_flow` free-function calls (seed behaviour),
//! * `batched`        — arena build + `FlowSolver::min_max_flow` (cold workspace),
//! * `batched_reuse`  — `min_max_flow` on a prebuilt arena with a warm solver (the
//!   steady-state hot path of the experiment sweeps),
//! * `parallel`       — `min_max_flow_parallel` across 4 threads (n = 500 only).

use bmp_flow::{dinic_max_flow, min_max_flow_parallel, FlowNetwork, FlowSolver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Random broadcast-like digraph: node 0 is the source, every node has out-degree ~8 with
/// capacities in `[0.1, 5)`, plus a guaranteed source → k path structure so flows are
/// non-trivial.
fn random_overlay(n: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = FlowNetwork::new(n);
    for k in 1..n {
        // A sparse backbone keeps every node reachable.
        let parent = rng.gen_range(0..k);
        net.add_edge(parent, k, rng.gen_range(0.5..5.0));
    }
    let extra_edges = n * 7;
    for _ in 0..extra_edges {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        if from != to {
            net.add_edge(from, to, rng.gen_range(0.1..5.0));
        }
    }
    net
}

fn naive_throughput(net: &FlowNetwork, sinks: &[usize]) -> f64 {
    sinks
        .iter()
        .map(|&sink| dinic_max_flow(net, 0, sink).value)
        .fold(f64::INFINITY, f64::min)
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[50usize, 200, 500] {
        let net = random_overlay(n, 0xBEA0 + n as u64);
        let sinks: Vec<usize> = (1..n).collect();
        let arena = net.arena();
        let expected = naive_throughput(&net, &sinks);
        assert_eq!(
            FlowSolver::new().min_max_flow(&arena, 0, &sinks),
            expected,
            "batched evaluator must agree with the naive baseline before being timed"
        );

        group.bench_with_input(BenchmarkId::new("naive", n), &net, |b, net| {
            b.iter(|| naive_throughput(net, &sinks))
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &net, |b, net| {
            b.iter(|| {
                let arena = net.arena();
                FlowSolver::new().min_max_flow(&arena, 0, &sinks)
            })
        });
        let mut warm = FlowSolver::new();
        warm.min_max_flow(&arena, 0, &sinks);
        group.bench_with_input(BenchmarkId::new("batched_reuse", n), &arena, |b, arena| {
            b.iter(|| warm.min_max_flow(arena, 0, &sinks))
        });
        if n >= 500 {
            group.bench_with_input(BenchmarkId::new("parallel", n), &arena, |b, arena| {
                b.iter(|| min_max_flow_parallel(arena, 0, &sinks, 4))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
