//! Multi-sink throughput evaluation: naive per-sink Dinic vs the batched CSR evaluator
//! vs the scoped-thread parallel fan-out, measured from n = 50 up to the fleet-scale
//! n ∈ {2000, 5000} overlays called out by the ROADMAP.
//!
//! `BroadcastScheme::throughput` is `min_k maxflow(source → C_k)` over all receivers.
//! The variants:
//!
//! * `naive`          — per-sink `dinic_max_flow` free-function calls (seed behaviour;
//!   n ≤ 500 only, it is quadratically off the pace at scale),
//! * `batched`        — arena build + `FlowSolver::min_max_flow` (cold workspace),
//! * `batched_reuse`  — `min_max_flow` on a prebuilt arena with a warm solver (the
//!   steady-state hot path of the experiment sweeps — the sequential baseline),
//! * `parallel-auto`  — `min_max_flow_parallel` with the `suggested_flow_threads`
//!   heuristic (sequential below 1000 nodes / 128 sinks, capped available parallelism
//!   above),
//! * `parallel/T`     — fixed thread counts for the fan-out curve.
//!
//! The `worker_pool` group compares the three fan-out strategies head to head at a
//! fixed thread count (pool-vs-scoped and pool-vs-sequential):
//!
//! * `sequential`     — warm `FlowSolver::min_max_flow` (the no-fan-out floor),
//! * `scoped/4`       — `min_max_flow_scoped`, the per-call scoped-thread spawn,
//! * `pooled/4`       — `FlowPool::min_max_flow_with` on the persistent global pool
//!   (long-lived workers, warm per-worker solvers, no per-call spawn).
//!
//! On a single-core container all three land within noise of each other — the group
//! exists so the BENCH JSON records the trajectory and multi-core hardware shows the
//! pool's win the moment it runs there.
//!
//! Results are drained from the harness and written as `BENCH_throughput.json` at the
//! repo root (machine-readable perf trajectory).

use bmp_flow::{
    dinic_max_flow, min_max_flow_parallel, min_max_flow_scoped, suggested_flow_threads,
    FlowNetwork, FlowPool, FlowSolver,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Random broadcast-like digraph: node 0 is the source, every node has out-degree ~8 with
/// capacities in `[0.1, 5)`, plus a guaranteed source → k path structure so flows are
/// non-trivial.
fn random_overlay(n: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = FlowNetwork::new(n);
    for k in 1..n {
        // A sparse backbone keeps every node reachable.
        let parent = rng.gen_range(0..k);
        net.add_edge(parent, k, rng.gen_range(0.5..5.0));
    }
    let extra_edges = n * 7;
    for _ in 0..extra_edges {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        if from != to {
            net.add_edge(from, to, rng.gen_range(0.1..5.0));
        }
    }
    net
}

fn naive_throughput(net: &FlowNetwork, sinks: &[usize]) -> f64 {
    sinks
        .iter()
        .map(|&sink| dinic_max_flow(net, 0, sink).value)
        .fold(f64::INFINITY, f64::min)
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &n in &[50usize, 200, 500, 2000, 5000] {
        let net = random_overlay(n, 0xBEA0 + n as u64);
        let sinks: Vec<usize> = (1..n).collect();
        let arena = net.arena();
        let mut warm = FlowSolver::new();
        let expected = warm.min_max_flow(&arena, 0, &sinks);
        if n <= 500 {
            // The naive baseline is only affordable (and only interesting) at the
            // PR-1 sizes; it anchors the batched evaluator's exactness.
            assert_eq!(
                naive_throughput(&net, &sinks),
                expected,
                "batched evaluator must agree with the naive baseline before being timed"
            );
            group.bench_with_input(BenchmarkId::new("naive", n), &net, |b, net| {
                b.iter(|| naive_throughput(net, &sinks))
            });
            group.bench_with_input(BenchmarkId::new("batched", n), &net, |b, net| {
                b.iter(|| {
                    let arena = net.arena();
                    FlowSolver::new().min_max_flow(&arena, 0, &sinks)
                })
            });
        }
        // The parallel fan-out shares the exactness argument at every size.
        assert_eq!(
            min_max_flow_parallel(&arena, 0, &sinks, 4),
            expected,
            "parallel evaluator must agree with the sequential baseline before being timed"
        );
        group.bench_with_input(BenchmarkId::new("batched_reuse", n), &arena, |b, arena| {
            b.iter(|| warm.min_max_flow(arena, 0, &sinks))
        });
        if n >= 500 {
            let auto_threads = suggested_flow_threads(n, sinks.len());
            group.bench_with_input(BenchmarkId::new("parallel-auto", n), &arena, |b, arena| {
                b.iter(|| min_max_flow_parallel(arena, 0, &sinks, auto_threads))
            });
            for threads in [4usize, 8] {
                group.bench_with_input(
                    BenchmarkId::new(format!("parallel/{threads}"), n),
                    &arena,
                    |b, arena| b.iter(|| min_max_flow_parallel(arena, 0, &sinks, threads)),
                );
            }
        }
    }
    group.finish();
}

/// Pool-vs-scoped and pool-vs-sequential at a fixed fan-out of 4 lanes.
fn bench_worker_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("worker_pool");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let pool = FlowPool::global();
    for &n in &[500usize, 2000] {
        let net = random_overlay(n, 0xBEA0 + n as u64);
        let sinks: Vec<usize> = (1..n).collect();
        let arena = Arc::new(net.arena());
        let mut warm = FlowSolver::new();
        let expected = warm.min_max_flow(&arena, 0, &sinks);
        // All three strategies are exact — assert it before timing them.
        assert_eq!(min_max_flow_scoped(&arena, 0, &sinks, 4), expected);
        assert_eq!(pool.min_max_flow(&arena, 0, &sinks, 4), expected);
        group.bench_with_input(BenchmarkId::new("sequential", n), &arena, |b, arena| {
            b.iter(|| warm.min_max_flow(arena, 0, &sinks))
        });
        group.bench_with_input(BenchmarkId::new("scoped/4", n), &arena, |b, arena| {
            b.iter(|| min_max_flow_scoped(arena, 0, &sinks, 4))
        });
        let mut submitter = FlowSolver::new();
        group.bench_with_input(BenchmarkId::new("pooled/4", n), &arena, |b, arena| {
            b.iter(|| pool.min_max_flow_with(&mut submitter, arena, 0, &sinks, 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput, bench_worker_pool);

fn main() {
    benches();
    if let Some(path) = bmp_bench::write_bench_json("throughput", &criterion::take_reports()) {
        println!("wrote {}", path.display());
    }
    criterion::Criterion::default().final_summary();
}
