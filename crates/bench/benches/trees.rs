//! Broadcast-tree decomposition benchmarks: cost of turning an overlay into an explicit set of
//! weighted broadcast trees (the operational schedule of Section II-C) as the platform grows,
//! and the greedy arborescence-packing fallback used for cyclic overlays.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
use bmp_platform::distribution::{BandwidthDistribution, UniformBandwidth};
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_platform::Instance;
use bmp_trees::{decompose_acyclic, greedy_packing, makespan_estimate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn random_instance(receivers: usize, p: f64, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

fn bench_interval_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_decomposition");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let solver = AcyclicGuardedSolver::default();
    for &receivers in &[50usize, 200, 800] {
        let inst = random_instance(receivers, 0.7, 41 + receivers as u64);
        let solution = solver.solve(&inst);
        group.bench_with_input(
            BenchmarkId::new("decompose", receivers),
            &solution,
            |b, solution| {
                b.iter(|| {
                    decompose_acyclic(&solution.scheme, solution.throughput)
                        .unwrap()
                        .num_trees()
                })
            },
        );
        let decomposition = decompose_acyclic(&solution.scheme, solution.throughput).unwrap();
        group.bench_with_input(
            BenchmarkId::new("makespan_estimate", receivers),
            &decomposition,
            |b, decomposition| b.iter(|| makespan_estimate(decomposition, 1_000.0, 1.0).unwrap()),
        );
    }
    group.finish();
}

fn bench_greedy_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_packing");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &receivers in &[50usize, 200] {
        // The cyclic construction gives overlays with back edges, the worst case for packing.
        let mut rng = StdRng::seed_from_u64(receivers as u64);
        let open = UniformBandwidth::unif100().sample_many(receivers, &mut rng);
        let inst = Instance::open_only(30.0, open).unwrap();
        let (scheme, _) = cyclic_open_optimal_scheme(&inst).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(receivers),
            &scheme,
            |b, scheme| b.iter(|| greedy_packing(scheme).unwrap().decomposition.num_trees()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interval_decomposition, bench_greedy_packing);
criterion_main!(benches);
