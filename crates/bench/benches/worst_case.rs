//! Worst-case sweeps (Figures 6 and 18, Theorems 6.1 and 6.3) as a benchmark target.

use bmp_experiments::worst_case::{figure18_sweep, figure6_sweep, theorem63_sweep};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case");
    group.sample_size(10);
    group.bench_function("figure18_sweep_101", |b| {
        b.iter(|| figure18_sweep(101).len())
    });
    group.bench_function("theorem63_sweep_k4", |b| {
        b.iter(|| theorem63_sweep(4).len())
    });
    group.bench_function("figure6_sweep", |b| {
        b.iter(|| figure6_sweep(&[2, 8, 32, 128]).len())
    });
    group.finish();
}

criterion_group!(benches, bench_worst_case);
criterion_main!(benches);
