//! Validates the machine-readable benchmark reports at the repo root:
//! `BENCH_dichotomic.json`, `BENCH_throughput.json`, `BENCH_sim.json` and
//! `BENCH_serve.json` must parse and contain the benchmark ids the perf acceptance
//! criteria pin. CI runs this right after
//! the bench smoke runs, so a bench refactor that silently drops a tracked id fails the
//! build.
//!
//! With `--baseline DIR` it additionally acts as the CI perf-regression gate: the
//! freshly emitted documents are compared against the committed copies saved in `DIR`,
//! and any pinned id slower than [`bmp_bench::REGRESSION_TOLERANCE`]× its baseline
//! median fails the run with a message naming the id, both medians and the ratio. The
//! comparison only applies to *measured* documents — a `--test` smoke run carries no
//! timings, so the gate abstains (and says so) rather than comparing zeros. The
//! committed baselines themselves are validated against the pinned ids too: a baseline
//! file missing a required id used to make the gate silently skip that id forever.
//!
//! With `--require-improvement ID:RATIO` (repeatable) it asserts a *relative win*
//! rather than the absence of a regression: `ID`'s median must be at least `RATIO`×
//! faster than its reference sibling (`ID` with the last path segment replaced by
//! `serial`, or by `cold` when no serial sibling exists — e.g.
//! `dichotomic/speculative/spec1:1.3` requires spec1 to beat
//! `dichotomic/speculative/serial` by 1.3×, and `dichotomic/incremental/warm:1.5`
//! requires the warm re-probe loop to beat `dichotomic/incremental/cold` by 1.5×).
//! The assertion abstains, and says so, on smoke documents; serial-referenced ids
//! additionally abstain on single-core hosts — speculation spends extra lanes to
//! shorten the critical path, so with one core there is nothing to win — while
//! cold-referenced (warm-vs-cold) ids stay asserted everywhere, their win being
//! sequential by construction.

use bmp_bench::{
    perf_gate, read_bench_document, repo_root, require_improvement, resolve_reference_id,
    validate_bench_json, DICHOTOMIC_REQUIRED_IDS, REGRESSION_TOLERANCE, SERVE_REQUIRED_IDS,
    SIM_REQUIRED_IDS, THROUGHPUT_REQUIRED_IDS,
};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline: Option<PathBuf> = None;
    let mut improvements: Vec<(String, f64)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--baseline requires a directory argument");
                    std::process::exit(2);
                });
                baseline = Some(PathBuf::from(dir));
            }
            "--require-improvement" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--require-improvement requires an ID:RATIO argument");
                    std::process::exit(2);
                });
                let Some((id, ratio)) = spec.rsplit_once(':') else {
                    eprintln!("--require-improvement {spec:?} must be ID:RATIO");
                    std::process::exit(2);
                };
                let ratio: f64 = match ratio.parse() {
                    Ok(ratio) if ratio > 0.0 => ratio,
                    _ => {
                        eprintln!("--require-improvement {spec:?}: invalid ratio {ratio:?}");
                        std::process::exit(2);
                    }
                };
                improvements.push((id.to_string(), ratio));
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: validate_bench [--baseline DIR] \
                     [--require-improvement ID:RATIO]..."
                );
                std::process::exit(2);
            }
        }
    }

    let root = repo_root();
    let checks = [
        ("dichotomic", &DICHOTOMIC_REQUIRED_IDS[..]),
        ("throughput", &THROUGHPUT_REQUIRED_IDS[..]),
        ("sim", &SIM_REQUIRED_IDS[..]),
        ("serve", &SERVE_REQUIRED_IDS[..]),
    ];
    let mut failed = false;
    for (benchmark, expected) in checks {
        let path = root.join(format!("BENCH_{benchmark}.json"));
        match validate_bench_json(&path, benchmark, expected) {
            Ok(()) => println!("ok: {} ({} pinned ids)", path.display(), expected.len()),
            Err(error) => {
                eprintln!("invalid: {error}");
                failed = true;
            }
        }
        let Some(dir) = &baseline else {
            continue;
        };
        let committed = dir.join(format!("BENCH_{benchmark}.json"));
        // A baseline missing a pinned id would make the gate skip that id on every
        // run — the "new benchmark, no history" escape hatch must not become
        // permanent. Fail loudly so the regenerated baseline gets committed.
        if let Err(error) = validate_bench_json(&committed, benchmark, expected) {
            eprintln!("stale baseline: {error}");
            eprintln!(
                "the committed BENCH_{benchmark}.json does not pin every required id; \
                 re-run the {benchmark} benches and commit the regenerated document"
            );
            failed = true;
        }
        match perf_gate(&path, &committed, benchmark, expected, REGRESSION_TOLERANCE) {
            Ok(report) if !report.compared => println!(
                "gate: {benchmark}: skipped (smoke-mode document has no timings to compare)"
            ),
            Ok(report) if report.regressions.is_empty() => println!(
                "gate: {benchmark}: all pinned ids within {REGRESSION_TOLERANCE}x of the baseline"
            ),
            Ok(report) => {
                for regression in &report.regressions {
                    eprintln!("perf regression: {benchmark}: {regression}");
                }
                eprintln!(
                    "perf regression gate failed: {} pinned id(s) of {benchmark} are more than \
                     {REGRESSION_TOLERANCE}x slower than the committed BENCH_{benchmark}.json; \
                     if the slowdown is intended, re-run the benches and commit the new baseline",
                    report.regressions.len()
                );
                failed = true;
            }
            Err(error) => {
                eprintln!("gate error: {error}");
                failed = true;
            }
        }
    }

    let lanes = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    for (id, ratio) in &improvements {
        match check_improvement(id, *ratio, lanes) {
            Ok(Improvement::Achieved {
                benchmark,
                reference,
                achieved,
            }) => println!(
                "improvement: {id}: {achieved:.2}x faster than {reference} \
                 in BENCH_{benchmark}.json (required {ratio}x)"
            ),
            Ok(Improvement::Smoke) => {
                println!("improvement: {id}: skipped (smoke-mode document has no timings)")
            }
            Ok(Improvement::SingleCore) => println!(
                "improvement: {id}: skipped (single-core host: speculation has no \
                 free lanes to win with)"
            ),
            Err(error) => {
                eprintln!("improvement assertion failed: {error}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Outcome of one `--require-improvement` assertion.
enum Improvement {
    /// The assertion held, by `achieved`× against `reference`.
    Achieved {
        benchmark: String,
        reference: String,
        achieved: f64,
    },
    /// Abstained: the document is a smoke run with no timings.
    Smoke,
    /// Abstained: the id measures speculation (its reference is a `serial` sibling)
    /// and the host has a single core, so there are no free lanes to win with.
    /// Warm-vs-cold ids (a `cold` reference) stay asserted — that win is sequential.
    SingleCore,
}

/// Finds the document containing `id` among the four reports and asserts the
/// improvement there.
fn check_improvement(id: &str, ratio: f64, lanes: usize) -> Result<Improvement, String> {
    let root = repo_root();
    for benchmark in ["dichotomic", "throughput", "sim", "serve"] {
        let path = root.join(format!("BENCH_{benchmark}.json"));
        let Ok(doc) = read_bench_document(&path, benchmark) else {
            continue; // unreadable documents are reported by the id validation above
        };
        if doc.median_ns(id).is_none() {
            continue;
        }
        if doc.is_measured() {
            let reference = resolve_reference_id(&doc, id)?;
            if lanes < 2 && reference.rsplit('/').next() == Some("serial") {
                return Ok(Improvement::SingleCore);
            }
            return require_improvement(&doc, id, ratio).map(|achieved| Improvement::Achieved {
                benchmark: benchmark.to_string(),
                reference,
                achieved: achieved.expect("measured documents always compare"),
            });
        }
        return Ok(Improvement::Smoke);
    }
    Err(format!(
        "required id {id:?} not found in any BENCH_*.json document"
    ))
}
