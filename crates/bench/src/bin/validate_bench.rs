//! Validates the machine-readable benchmark reports at the repo root: both
//! `BENCH_dichotomic.json` and `BENCH_throughput.json` must parse and contain the
//! benchmark ids the perf acceptance criteria pin. CI runs this right after the bench
//! smoke runs, so a bench refactor that silently drops a tracked id fails the build.

use bmp_bench::{repo_root, validate_bench_json, DICHOTOMIC_REQUIRED_IDS, THROUGHPUT_REQUIRED_IDS};

fn main() {
    let root = repo_root();
    let checks = [
        ("dichotomic", &DICHOTOMIC_REQUIRED_IDS[..]),
        ("throughput", &THROUGHPUT_REQUIRED_IDS[..]),
    ];
    let mut failed = false;
    for (benchmark, expected) in checks {
        let path = root.join(format!("BENCH_{benchmark}.json"));
        match validate_bench_json(&path, benchmark, expected) {
            Ok(()) => println!("ok: {} ({} pinned ids)", path.display(), expected.len()),
            Err(error) => {
                eprintln!("invalid: {error}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
