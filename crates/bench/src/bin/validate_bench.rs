//! Validates the machine-readable benchmark reports at the repo root:
//! `BENCH_dichotomic.json`, `BENCH_throughput.json`, `BENCH_sim.json` and
//! `BENCH_serve.json` must parse and contain the benchmark ids the perf acceptance
//! criteria pin. CI runs this right after
//! the bench smoke runs, so a bench refactor that silently drops a tracked id fails the
//! build.
//!
//! With `--baseline DIR` it additionally acts as the CI perf-regression gate: the
//! freshly emitted documents are compared against the committed copies saved in `DIR`,
//! and any pinned id slower than [`bmp_bench::REGRESSION_TOLERANCE`]× its baseline
//! median fails the run with a message naming the id, both medians and the ratio. The
//! comparison only applies to *measured* documents — a `--test` smoke run carries no
//! timings, so the gate abstains (and says so) rather than comparing zeros.

use bmp_bench::{
    perf_gate, repo_root, validate_bench_json, DICHOTOMIC_REQUIRED_IDS, REGRESSION_TOLERANCE,
    SERVE_REQUIRED_IDS, SIM_REQUIRED_IDS, THROUGHPUT_REQUIRED_IDS,
};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--baseline requires a directory argument");
                    std::process::exit(2);
                });
                baseline = Some(PathBuf::from(dir));
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: validate_bench [--baseline DIR]");
                std::process::exit(2);
            }
        }
    }

    let root = repo_root();
    let checks = [
        ("dichotomic", &DICHOTOMIC_REQUIRED_IDS[..]),
        ("throughput", &THROUGHPUT_REQUIRED_IDS[..]),
        ("sim", &SIM_REQUIRED_IDS[..]),
        ("serve", &SERVE_REQUIRED_IDS[..]),
    ];
    let mut failed = false;
    for (benchmark, expected) in checks {
        let path = root.join(format!("BENCH_{benchmark}.json"));
        match validate_bench_json(&path, benchmark, expected) {
            Ok(()) => println!("ok: {} ({} pinned ids)", path.display(), expected.len()),
            Err(error) => {
                eprintln!("invalid: {error}");
                failed = true;
            }
        }
        let Some(dir) = &baseline else {
            continue;
        };
        let committed = dir.join(format!("BENCH_{benchmark}.json"));
        match perf_gate(&path, &committed, benchmark, expected, REGRESSION_TOLERANCE) {
            Ok(report) if !report.compared => println!(
                "gate: {benchmark}: skipped (smoke-mode document has no timings to compare)"
            ),
            Ok(report) if report.regressions.is_empty() => println!(
                "gate: {benchmark}: all pinned ids within {REGRESSION_TOLERANCE}x of the baseline"
            ),
            Ok(report) => {
                for regression in &report.regressions {
                    eprintln!("perf regression: {benchmark}: {regression}");
                }
                eprintln!(
                    "perf regression gate failed: {} pinned id(s) of {benchmark} are more than \
                     {REGRESSION_TOLERANCE}x slower than the committed BENCH_{benchmark}.json; \
                     if the slowdown is intended, re-run the benches and commit the new baseline",
                    report.regressions.len()
                );
                failed = true;
            }
            Err(error) => {
                eprintln!("gate error: {error}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
