//! Benchmark crate (see `benches/`), plus the machine-readable benchmark report
//! pipeline: the headline benches (`dichotomic`, `throughput`) drain the results
//! collected by the vendored criterion harness ([`criterion::take_reports`]) and write
//! them as `BENCH_<name>.json` at the repository root, so the perf trajectory of the
//! hot paths is tracked across PRs instead of living in scrollback. CI smoke-runs the
//! benches (`--test`) and then validates the emitted files with
//! [`validate_bench_json`] via the `validate_bench` binary.

use criterion::BenchReport;
use std::path::{Path, PathBuf};

/// Repository root (the benches run from `crates/bench`, the reports belong at the
/// workspace root next to `ROADMAP.md`).
#[must_use]
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Renders `reports` as the `BENCH_*.json` document: benchmark name, `measured` or
/// `smoke` mode, and one `{id, median_ns, best_ns}` entry per benchmark id.
#[must_use]
pub fn bench_report_json(benchmark: &str, reports: &[BenchReport]) -> String {
    let mode = if reports.iter().any(|r| r.smoke) {
        "smoke"
    } else {
        "measured"
    };
    let results = serde::Value::Array(
        reports
            .iter()
            .map(|r| {
                serde::Value::Object(vec![
                    ("id".to_string(), serde::Value::Str(r.id.clone())),
                    ("median_ns".to_string(), serde::Value::F64(r.median_ns)),
                    ("best_ns".to_string(), serde::Value::F64(r.best_ns)),
                ])
            })
            .collect(),
    );
    let document = serde::Value::Object(vec![
        (
            "benchmark".to_string(),
            serde::Value::Str(benchmark.to_string()),
        ),
        ("mode".to_string(), serde::Value::Str(mode.to_string())),
        ("results".to_string(), results),
    ]);
    serde_json::to_string_pretty(&document).expect("report document serializes")
}

/// Writes the drained criterion reports as `BENCH_<benchmark>.json` at the repo root.
/// Returns the path written. Skips (returning `None`) when `reports` is empty — a
/// filtered bench run measured nothing and must not clobber the committed report.
pub fn write_bench_json(benchmark: &str, reports: &[BenchReport]) -> Option<PathBuf> {
    if reports.is_empty() {
        return None;
    }
    let path = repo_root().join(format!("BENCH_{benchmark}.json"));
    std::fs::write(&path, bench_report_json(benchmark, reports))
        .unwrap_or_else(|error| panic!("cannot write {}: {error}", path.display()));
    Some(path)
}

/// Validates an emitted `BENCH_*.json`: it parses, names `benchmark`, carries a known
/// `mode`, and every id in `expected_ids` appears verbatim among the results (exact
/// match — a substring match would let `.../500` be satisfied by `.../5000`, silently
/// unpinning the n = 500 acceptance benchmarks).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_bench_json(
    path: &Path,
    benchmark: &str,
    expected_ids: &[&str],
) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    let value: serde::Value = serde_json::from_str(&text)
        .map_err(|error| format!("{} is not JSON: {error}", path.display()))?;
    let fields = value
        .as_object()
        .ok_or_else(|| format!("{}: top level is not an object", path.display()))?;
    let field = |name: &str| {
        fields
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value)
            .ok_or_else(|| format!("{}: missing field `{name}`", path.display()))
    };
    let named = field("benchmark")?
        .as_str()
        .ok_or_else(|| format!("{}: `benchmark` is not a string", path.display()))?;
    if named != benchmark {
        return Err(format!(
            "{}: benchmark is {named:?}, expected {benchmark:?}",
            path.display()
        ));
    }
    let mode = field("mode")?
        .as_str()
        .ok_or_else(|| format!("{}: `mode` is not a string", path.display()))?;
    if !matches!(mode, "measured" | "smoke") {
        return Err(format!("{}: unknown mode {mode:?}", path.display()));
    }
    let results = field("results")?
        .as_array()
        .ok_or_else(|| format!("{}: `results` is not an array", path.display()))?;
    if results.is_empty() {
        return Err(format!("{}: empty results", path.display()));
    }
    let mut ids = Vec::with_capacity(results.len());
    for result in results {
        let entry = result
            .as_object()
            .ok_or_else(|| format!("{}: result entry is not an object", path.display()))?;
        let lookup = |name: &str| {
            entry
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value)
                .ok_or_else(|| format!("{}: result entry missing `{name}`", path.display()))
        };
        let id = lookup("id")?
            .as_str()
            .ok_or_else(|| format!("{}: result id is not a string", path.display()))?;
        for metric in ["median_ns", "best_ns"] {
            let value = lookup(metric)?
                .as_f64()
                .ok_or_else(|| format!("{}: {id}: `{metric}` is not a number", path.display()))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "{}: {id}: `{metric}` is {value}, expected a non-negative finite number",
                    path.display()
                ));
            }
        }
        ids.push(id.to_string());
    }
    for expected in expected_ids {
        if !ids.iter().any(|id| id == expected) {
            return Err(format!(
                "{}: no result id equals {expected:?} (got {ids:?})",
                path.display()
            ));
        }
    }
    Ok(())
}

/// The benchmark ids the `dichotomic` report must contain (the acceptance surface of
/// the incremental-evaluation work: journal vs scan at n = 500 / 2000 / 5000).
pub const DICHOTOMIC_REQUIRED_IDS: [&str; 6] = [
    "journaled_reevaluation/scan-single-sink/500",
    "journaled_reevaluation/journaled-single-sink/500",
    "journaled_reevaluation/scan-single-sink/2000",
    "journaled_reevaluation/journaled-single-sink/2000",
    "journaled_reevaluation/scan-single-sink/5000",
    "journaled_reevaluation/journaled-single-sink/5000",
];

/// The benchmark ids the `throughput` report must contain (sequential batched pass vs
/// the parallel fan-out at fleet scale).
pub const THROUGHPUT_REQUIRED_IDS: [&str; 4] = [
    "throughput/batched_reuse/2000",
    "throughput/parallel-auto/2000",
    "throughput/batched_reuse/5000",
    "throughput/parallel-auto/5000",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<BenchReport> {
        vec![
            BenchReport {
                id: "group/alpha/500".to_string(),
                median_ns: 120.5,
                best_ns: 100.0,
                smoke: false,
            },
            BenchReport {
                id: "group/beta/2000".to_string(),
                median_ns: 340.0,
                best_ns: 300.0,
                smoke: false,
            },
        ]
    }

    #[test]
    fn report_json_roundtrips_through_the_validator() {
        let dir = std::env::temp_dir().join(format!("bmp_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sample.json");
        std::fs::write(&path, bench_report_json("sample", &sample_reports())).unwrap();
        validate_bench_json(&path, "sample", &["group/alpha/500", "group/beta/2000"]).unwrap();
        // Wrong name and missing ids are reported.
        assert!(validate_bench_json(&path, "other", &[]).is_err());
        let err = validate_bench_json(&path, "sample", &["gamma"]).unwrap_err();
        assert!(err.contains("gamma"), "{err}");
        // Exact matching: a substring or prefix of a present id does not count (the
        // `/500`-vs-`/5000` trap).
        assert!(validate_bench_json(&path, "sample", &["group/alpha/50"]).is_err());
        assert!(validate_bench_json(&path, "sample", &["alpha/500"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_runs_are_marked_and_still_validate() {
        let reports = vec![BenchReport {
            id: "group/alpha/500".to_string(),
            median_ns: 0.0,
            best_ns: 0.0,
            smoke: true,
        }];
        let json = bench_report_json("sample", &reports);
        assert!(json.contains("\"smoke\""));
        let dir = std::env::temp_dir().join(format!("bmp_bench_smoke_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sample.json");
        std::fs::write(&path, json).unwrap();
        validate_bench_json(&path, "sample", &["group/alpha/500"]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let dir = std::env::temp_dir().join(format!("bmp_bench_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_bad.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(validate_bench_json(&path, "bad", &[]).is_err());
        std::fs::write(
            &path,
            "{\"benchmark\": \"bad\", \"mode\": \"measured\", \"results\": []}",
        )
        .unwrap();
        assert!(validate_bench_json(&path, "bad", &[]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_report_sets_are_not_written() {
        assert!(write_bench_json("never-written", &[]).is_none());
        assert!(!repo_root().join("BENCH_never-written.json").exists());
    }
}
