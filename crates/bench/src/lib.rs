//! Benchmark crate (see `benches/`), plus the machine-readable benchmark report
//! pipeline: the headline benches (`dichotomic`, `throughput`, `sim`) drain the results
//! collected by the vendored criterion harness ([`criterion::take_reports`]) and write
//! them as `BENCH_<name>.json` at the repository root, so the perf trajectory of the
//! hot paths is tracked across PRs instead of living in scrollback. CI smoke-runs the
//! benches (`--test`) and then validates the emitted files with
//! [`validate_bench_json`] via the `validate_bench` binary; a separate CI job re-runs
//! the headline benches *measured* and gates them against the committed baselines with
//! [`perf_gate`] (`validate_bench --baseline DIR`, [`REGRESSION_TOLERANCE`]× slowdown
//! tolerance on the pinned ids — a format check alone would happily commit a 100×
//! slower hot path).

use criterion::BenchReport;
use std::path::{Path, PathBuf};

/// Repository root (the benches run from `crates/bench`, the reports belong at the
/// workspace root next to `ROADMAP.md`).
#[must_use]
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Renders `reports` as the `BENCH_*.json` document: benchmark name, `measured` or
/// `smoke` mode, and one `{id, median_ns, best_ns}` entry per benchmark id.
#[must_use]
pub fn bench_report_json(benchmark: &str, reports: &[BenchReport]) -> String {
    let mode = if reports.iter().any(|r| r.smoke) {
        "smoke"
    } else {
        "measured"
    };
    let results = serde::Value::Array(
        reports
            .iter()
            .map(|r| {
                serde::Value::Object(vec![
                    ("id".to_string(), serde::Value::Str(r.id.clone())),
                    ("median_ns".to_string(), serde::Value::F64(r.median_ns)),
                    ("best_ns".to_string(), serde::Value::F64(r.best_ns)),
                ])
            })
            .collect(),
    );
    let document = serde::Value::Object(vec![
        (
            "benchmark".to_string(),
            serde::Value::Str(benchmark.to_string()),
        ),
        ("mode".to_string(), serde::Value::Str(mode.to_string())),
        ("results".to_string(), results),
    ]);
    serde_json::to_string_pretty(&document).expect("report document serializes")
}

/// Writes the drained criterion reports as `BENCH_<benchmark>.json` at the repo root.
/// Returns the path written. Skips (returning `None`) when `reports` is empty — a
/// filtered bench run measured nothing and must not clobber the committed report.
pub fn write_bench_json(benchmark: &str, reports: &[BenchReport]) -> Option<PathBuf> {
    if reports.is_empty() {
        return None;
    }
    let path = repo_root().join(format!("BENCH_{benchmark}.json"));
    std::fs::write(&path, bench_report_json(benchmark, reports))
        .unwrap_or_else(|error| panic!("cannot write {}: {error}", path.display()));
    Some(path)
}

/// A parsed `BENCH_*.json` document: its `mode` and one `(id, median_ns)` per result.
#[derive(Debug, Clone)]
pub struct BenchDocument {
    /// `"measured"` or `"smoke"`.
    pub mode: String,
    /// `(id, median_ns)` in document order.
    pub medians: Vec<(String, f64)>,
}

impl BenchDocument {
    /// Whether the document carries real timings (a `--test` smoke run does not).
    #[must_use]
    pub fn is_measured(&self) -> bool {
        self.mode == "measured"
    }

    /// The median of `id`, if present.
    #[must_use]
    pub fn median_ns(&self, id: &str) -> Option<f64> {
        self.medians
            .iter()
            .find(|(candidate, _)| candidate == id)
            .map(|&(_, median)| median)
    }
}

/// Generous slowdown tolerance of the CI perf-regression gate: a pinned benchmark id
/// fails the gate only when its freshly measured median exceeds this multiple of the
/// committed baseline median. 3× absorbs runner-to-runner noise, thermal variance and
/// the vendored harness's coarse sampling while still catching a hot path falling off a
/// cliff (the journal wins being guarded are 20×–1000×).
pub const REGRESSION_TOLERANCE: f64 = 3.0;

/// Outcome of gating one fresh benchmark document against its committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// `false` when either document was a smoke run — there are no timings to compare,
    /// so the gate abstains (CI still validates ids through [`validate_bench_json`]).
    pub compared: bool,
    /// One human-readable message per pinned id slower than the tolerance allows.
    /// Empty means the gate passed.
    pub regressions: Vec<String>,
}

/// Compares the freshly emitted report at `fresh` against the committed `baseline`:
/// every id in `pinned` that is slower than `tolerance ×` its baseline median is
/// reported as a regression. Ids missing from the baseline (newly added benchmarks)
/// are skipped — they have no history to regress against; ids missing from the fresh
/// document are a structural error (the separate id validation pins them).
///
/// # Errors
///
/// Returns a description of the first structural problem (unreadable or malformed
/// document, pinned id absent from the fresh report).
pub fn perf_gate(
    fresh: &Path,
    baseline: &Path,
    benchmark: &str,
    pinned: &[&str],
    tolerance: f64,
) -> Result<GateReport, String> {
    let fresh_doc = read_bench_document(fresh, benchmark)?;
    let baseline_doc = read_bench_document(baseline, benchmark)?;
    if !fresh_doc.is_measured() || !baseline_doc.is_measured() {
        return Ok(GateReport {
            compared: false,
            regressions: Vec::new(),
        });
    }
    let mut regressions = Vec::new();
    for &id in pinned {
        let measured = fresh_doc
            .median_ns(id)
            .ok_or_else(|| format!("{}: pinned id {id:?} missing", fresh.display()))?;
        let Some(reference) = baseline_doc.median_ns(id) else {
            continue; // new benchmark: no baseline yet
        };
        if reference > 0.0 && measured > tolerance * reference {
            regressions.push(format!(
                "{id}: {:.3} ms vs baseline {:.3} ms ({:.2}x, tolerance {tolerance}x)",
                measured / 1e6,
                reference / 1e6,
                measured / reference
            ));
        }
    }
    Ok(GateReport {
        compared: true,
        regressions,
    })
}

/// `id` with its last path segment replaced by `segment` (the sibling convention of
/// the comparison benches — `dichotomic/speculative/spec1` and `serial` are siblings).
fn sibling_id(id: &str, segment: &str) -> String {
    match id.rsplit_once('/') {
        Some((prefix, _)) => format!("{prefix}/{segment}"),
        None => segment.to_string(),
    }
}

/// The reference id a `--require-improvement` assertion compares against: the same
/// benchmark path with its last segment replaced by `serial` (the convention of the
/// speculative benches — `dichotomic/speculative/spec1` is measured against
/// `dichotomic/speculative/serial`).
#[must_use]
pub fn serial_reference_id(id: &str) -> String {
    sibling_id(id, "serial")
}

/// Resolves the reference sibling a `--require-improvement` assertion for `id`
/// compares against: the `serial` sibling when the document carries one (the
/// speculative convention), otherwise the `cold` sibling (the warm-vs-cold
/// convention of the incremental-reuse benches — `dichotomic/incremental/warm` is
/// measured against `dichotomic/incremental/cold`).
///
/// # Errors
///
/// Returns a description when the document carries neither sibling.
pub fn resolve_reference_id(doc: &BenchDocument, id: &str) -> Result<String, String> {
    for segment in ["serial", "cold"] {
        let candidate = sibling_id(id, segment);
        if candidate != id && doc.median_ns(&candidate).is_some() {
            return Ok(candidate);
        }
    }
    Err(format!(
        "no reference sibling ({:?} or {:?}) for {id:?} is present in the document",
        sibling_id(id, "serial"),
        sibling_id(id, "cold"),
    ))
}

/// Asserts that `id` in `doc` is at least `ratio`× faster (smaller median) than its
/// reference sibling ([`resolve_reference_id`]: the `serial` sibling if present,
/// else the `cold` one). Returns `Ok(None)` when `doc` is a smoke run — there are
/// no timings to compare, so the assertion abstains (the caller also abstains on
/// single-core hosts *for serial-referenced ids*, where speculation cannot win by
/// construction — warm-vs-cold ids stay asserted, their win being sequential);
/// `Ok(Some(actual))` with the achieved speedup when the assertion holds.
///
/// # Errors
///
/// Returns a description when either id is missing, the measured median is not
/// positive, or the achieved speedup falls short of `ratio`.
pub fn require_improvement(
    doc: &BenchDocument,
    id: &str,
    ratio: f64,
) -> Result<Option<f64>, String> {
    if !doc.is_measured() {
        return Ok(None);
    }
    let reference_id = resolve_reference_id(doc, id)?;
    let measured = doc
        .median_ns(id)
        .ok_or_else(|| format!("required id {id:?} is missing from the document"))?;
    let reference = doc.median_ns(&reference_id).ok_or_else(|| {
        format!("reference id {reference_id:?} (for {id:?}) is missing from the document")
    })?;
    if measured <= 0.0 || reference <= 0.0 {
        return Err(format!(
            "{id}: non-positive medians ({measured} ns vs {reference} ns) cannot be compared"
        ));
    }
    let actual = reference / measured;
    if actual < ratio {
        return Err(format!(
            "{id}: only {actual:.2}x faster than {reference_id} \
             ({:.3} ms vs {:.3} ms), required {ratio}x",
            measured / 1e6,
            reference / 1e6
        ));
    }
    Ok(Some(actual))
}

/// Validates an emitted `BENCH_*.json`: it parses, names `benchmark`, carries a known
/// `mode`, and every id in `expected_ids` appears verbatim among the results (exact
/// match — a substring match would let `.../500` be satisfied by `.../5000`, silently
/// unpinning the n = 500 acceptance benchmarks).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_bench_json(
    path: &Path,
    benchmark: &str,
    expected_ids: &[&str],
) -> Result<(), String> {
    let document = read_bench_document(path, benchmark)?;
    for expected in expected_ids {
        if document.median_ns(expected).is_none() {
            let ids: Vec<&str> = document.medians.iter().map(|(id, _)| id.as_str()).collect();
            return Err(format!(
                "{}: no result id equals {expected:?} (got {ids:?})",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Parses and structurally checks one `BENCH_*.json` document (shared by
/// [`validate_bench_json`] and [`perf_gate`]).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn read_bench_document(path: &Path, benchmark: &str) -> Result<BenchDocument, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    let value: serde::Value = serde_json::from_str(&text)
        .map_err(|error| format!("{} is not JSON: {error}", path.display()))?;
    let fields = value
        .as_object()
        .ok_or_else(|| format!("{}: top level is not an object", path.display()))?;
    let field = |name: &str| {
        fields
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value)
            .ok_or_else(|| format!("{}: missing field `{name}`", path.display()))
    };
    let named = field("benchmark")?
        .as_str()
        .ok_or_else(|| format!("{}: `benchmark` is not a string", path.display()))?;
    if named != benchmark {
        return Err(format!(
            "{}: benchmark is {named:?}, expected {benchmark:?}",
            path.display()
        ));
    }
    let mode = field("mode")?
        .as_str()
        .ok_or_else(|| format!("{}: `mode` is not a string", path.display()))?;
    if !matches!(mode, "measured" | "smoke") {
        return Err(format!("{}: unknown mode {mode:?}", path.display()));
    }
    let results = field("results")?
        .as_array()
        .ok_or_else(|| format!("{}: `results` is not an array", path.display()))?;
    if results.is_empty() {
        return Err(format!("{}: empty results", path.display()));
    }
    let mut medians = Vec::with_capacity(results.len());
    for result in results {
        let entry = result
            .as_object()
            .ok_or_else(|| format!("{}: result entry is not an object", path.display()))?;
        let lookup = |name: &str| {
            entry
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value)
                .ok_or_else(|| format!("{}: result entry missing `{name}`", path.display()))
        };
        let id = lookup("id")?
            .as_str()
            .ok_or_else(|| format!("{}: result id is not a string", path.display()))?;
        let mut median = 0.0;
        for metric in ["median_ns", "best_ns"] {
            let value = lookup(metric)?
                .as_f64()
                .ok_or_else(|| format!("{}: {id}: `{metric}` is not a number", path.display()))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "{}: {id}: `{metric}` is {value}, expected a non-negative finite number",
                    path.display()
                ));
            }
            if metric == "median_ns" {
                median = value;
            }
        }
        medians.push((id.to_string(), median));
    }
    Ok(BenchDocument {
        mode: mode.to_string(),
        medians,
    })
}

/// The benchmark ids the `dichotomic` report must contain (the acceptance surface of
/// the incremental-evaluation work — journal vs scan at n = 500 / 2000 / 5000 — plus
/// the speculation surface: the serial/spec1/spec2 solve triple and the
/// batched-vs-per-cell sweep pair, and the warm-residual-reuse cold/warm re-probe
/// pair, so a regenerated report can never silently drop the comparisons the perf
/// gate asserts on).
pub const DICHOTOMIC_REQUIRED_IDS: [&str; 13] = [
    "journaled_reevaluation/scan-single-sink/500",
    "journaled_reevaluation/journaled-single-sink/500",
    "journaled_reevaluation/scan-single-sink/2000",
    "journaled_reevaluation/journaled-single-sink/2000",
    "journaled_reevaluation/scan-single-sink/5000",
    "journaled_reevaluation/journaled-single-sink/5000",
    "dichotomic/speculative/serial",
    "dichotomic/speculative/spec1",
    "dichotomic/speculative/spec2",
    "dichotomic/incremental/cold",
    "dichotomic/incremental/warm",
    "sweep/batched-probes/batched",
    "sweep/batched-probes/per-cell",
];

/// The benchmark ids the `throughput` report must contain (sequential batched pass vs
/// the parallel fan-out at fleet scale, plus the persistent-pool-vs-scoped-spawn and
/// pool-vs-sequential comparisons of the `worker_pool` group).
pub const THROUGHPUT_REQUIRED_IDS: [&str; 7] = [
    "throughput/batched_reuse/2000",
    "throughput/parallel-auto/2000",
    "throughput/batched_reuse/5000",
    "throughput/parallel-auto/5000",
    "worker_pool/sequential/2000",
    "worker_pool/scoped/4/2000",
    "worker_pool/pooled/4/2000",
];

/// The benchmark ids the `sim` report must contain (the session engine's per-round hot
/// path over the word-packed possession bitsets, the widest policy scan, the hardened
/// repair pipeline's faulted repair cycle, the warm-vs-cold repair solve pair that
/// keeps the residual warm-start from regressing silently, and the
/// incremental-vs-cold repair pair guarding warm residual reuse the same way).
pub const SIM_REQUIRED_IDS: [&str; 7] = [
    "sim_round/session/50x1000",
    "sim_round/pick/rarest-first/4096",
    "fault_storm/repair-cycle/50",
    "repair/warm-vs-cold/warm",
    "repair/warm-vs-cold/cold",
    "repair/incremental-vs-cold/warm",
    "repair/incremental-vs-cold/cold",
];

/// The benchmark ids the `serve` report must contain (the sharded fleet runner end to
/// end, and the pure admission-control decision path).
pub const SERVE_REQUIRED_IDS: [&str; 2] = ["serve/fleet-step/256", "serve/admission/1k"];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<BenchReport> {
        vec![
            BenchReport {
                id: "group/alpha/500".to_string(),
                median_ns: 120.5,
                best_ns: 100.0,
                smoke: false,
            },
            BenchReport {
                id: "group/beta/2000".to_string(),
                median_ns: 340.0,
                best_ns: 300.0,
                smoke: false,
            },
        ]
    }

    #[test]
    fn report_json_roundtrips_through_the_validator() {
        let dir = std::env::temp_dir().join(format!("bmp_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sample.json");
        std::fs::write(&path, bench_report_json("sample", &sample_reports())).unwrap();
        validate_bench_json(&path, "sample", &["group/alpha/500", "group/beta/2000"]).unwrap();
        // Wrong name and missing ids are reported.
        assert!(validate_bench_json(&path, "other", &[]).is_err());
        let err = validate_bench_json(&path, "sample", &["gamma"]).unwrap_err();
        assert!(err.contains("gamma"), "{err}");
        // Exact matching: a substring or prefix of a present id does not count (the
        // `/500`-vs-`/5000` trap).
        assert!(validate_bench_json(&path, "sample", &["group/alpha/50"]).is_err());
        assert!(validate_bench_json(&path, "sample", &["alpha/500"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_runs_are_marked_and_still_validate() {
        let reports = vec![BenchReport {
            id: "group/alpha/500".to_string(),
            median_ns: 0.0,
            best_ns: 0.0,
            smoke: true,
        }];
        let json = bench_report_json("sample", &reports);
        assert!(json.contains("\"smoke\""));
        let dir = std::env::temp_dir().join(format!("bmp_bench_smoke_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sample.json");
        std::fs::write(&path, json).unwrap();
        validate_bench_json(&path, "sample", &["group/alpha/500"]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let dir = std::env::temp_dir().join(format!("bmp_bench_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_bad.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(validate_bench_json(&path, "bad", &[]).is_err());
        std::fs::write(
            &path,
            "{\"benchmark\": \"bad\", \"mode\": \"measured\", \"results\": []}",
        )
        .unwrap();
        assert!(validate_bench_json(&path, "bad", &[]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_report_sets_are_not_written() {
        assert!(write_bench_json("never-written", &[]).is_none());
        assert!(!repo_root().join("BENCH_never-written.json").exists());
    }

    /// Writes a measured two-result document and returns its path.
    fn write_doc(dir: &Path, name: &str, alpha_median: f64, beta_median: f64) -> PathBuf {
        let reports = vec![
            BenchReport {
                id: "group/alpha/500".to_string(),
                median_ns: alpha_median,
                best_ns: alpha_median * 0.9,
                smoke: false,
            },
            BenchReport {
                id: "group/beta/2000".to_string(),
                median_ns: beta_median,
                best_ns: beta_median * 0.9,
                smoke: false,
            },
        ];
        let path = dir.join(format!("BENCH_{name}.json"));
        std::fs::write(&path, bench_report_json("sample", &reports)).unwrap();
        path
    }

    #[test]
    fn serial_reference_replaces_the_last_path_segment() {
        assert_eq!(
            serial_reference_id("dichotomic/speculative/spec1"),
            "dichotomic/speculative/serial"
        );
        assert_eq!(serial_reference_id("a/b"), "a/serial");
        assert_eq!(serial_reference_id("bare"), "serial");
    }

    #[test]
    fn require_improvement_compares_against_the_serial_reference() {
        let reports = vec![
            BenchReport {
                id: "dichotomic/speculative/serial".to_string(),
                median_ns: 1000.0,
                best_ns: 900.0,
                smoke: false,
            },
            BenchReport {
                id: "dichotomic/speculative/spec1".to_string(),
                median_ns: 500.0,
                best_ns: 450.0,
                smoke: false,
            },
        ];
        let dir = std::env::temp_dir().join(format!("bmp_bench_improve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sample.json");
        std::fs::write(&path, bench_report_json("sample", &reports)).unwrap();
        let doc = read_bench_document(&path, "sample").unwrap();
        // 2x measured: a 1.3x requirement passes with the achieved ratio reported…
        let achieved = require_improvement(&doc, "dichotomic/speculative/spec1", 1.3)
            .unwrap()
            .unwrap();
        assert!((achieved - 2.0).abs() < 1e-9, "{achieved}");
        // …a 2.5x requirement fails, naming both ids and the shortfall…
        let err = require_improvement(&doc, "dichotomic/speculative/spec1", 2.5).unwrap_err();
        assert!(err.contains("spec1"), "{err}");
        assert!(err.contains("serial"), "{err}");
        assert!(err.contains("2.00x"), "{err}");
        // …and a missing id (either side) is a structural error, not a pass.
        assert!(require_improvement(&doc, "dichotomic/speculative/spec2", 1.0).is_err());
        assert!(require_improvement(&doc, "other/group/fast", 1.0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn require_improvement_falls_back_to_the_cold_sibling() {
        let doc = BenchDocument {
            mode: "measured".to_string(),
            medians: vec![
                ("dichotomic/incremental/cold".to_string(), 900.0),
                ("dichotomic/incremental/warm".to_string(), 300.0),
            ],
        };
        // No `serial` sibling exists, so the reference resolves to `cold`…
        assert_eq!(
            resolve_reference_id(&doc, "dichotomic/incremental/warm").unwrap(),
            "dichotomic/incremental/cold"
        );
        let achieved = require_improvement(&doc, "dichotomic/incremental/warm", 1.5)
            .unwrap()
            .unwrap();
        assert!((achieved - 3.0).abs() < 1e-9, "{achieved}");
        // …a shortfall names the cold reference…
        let err = require_improvement(&doc, "dichotomic/incremental/warm", 4.0).unwrap_err();
        assert!(err.contains("cold"), "{err}");
        // …and when both siblings exist, `serial` wins (the speculative convention).
        let both = BenchDocument {
            mode: "measured".to_string(),
            medians: vec![
                ("g/serial".to_string(), 1000.0),
                ("g/cold".to_string(), 2000.0),
                ("g/fast".to_string(), 500.0),
            ],
        };
        assert_eq!(resolve_reference_id(&both, "g/fast").unwrap(), "g/serial");
        // A document with neither sibling cannot resolve a reference.
        assert!(resolve_reference_id(&doc, "other/group/fast").is_err());
        // The id being its own sibling does not self-reference: `g/cold` against
        // `g/serial`, never against itself.
        assert_eq!(resolve_reference_id(&both, "g/cold").unwrap(), "g/serial");
    }

    #[test]
    fn require_improvement_abstains_on_smoke_documents() {
        let doc = BenchDocument {
            mode: "smoke".to_string(),
            medians: vec![("dichotomic/speculative/spec1".to_string(), 0.0)],
        };
        assert_eq!(
            require_improvement(&doc, "dichotomic/speculative/spec1", 1.3),
            Ok(None)
        );
    }

    #[test]
    fn perf_gate_passes_within_tolerance_and_fails_beyond_it() {
        let dir = std::env::temp_dir().join(format!("bmp_bench_gate_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = write_doc(&dir, "baseline", 100.0, 1000.0);
        // 2.9x on one id, 0.5x on the other: generous tolerance absorbs both.
        let noisy = write_doc(&dir, "noisy", 290.0, 500.0);
        let report = perf_gate(
            &noisy,
            &baseline,
            "sample",
            &["group/alpha/500", "group/beta/2000"],
            REGRESSION_TOLERANCE,
        )
        .unwrap();
        assert!(report.compared);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        // 3.5x on alpha: the gate names the id, both medians and the ratio.
        let slow = write_doc(&dir, "slow", 350.0, 1000.0);
        let report = perf_gate(
            &slow,
            &baseline,
            "sample",
            &["group/alpha/500", "group/beta/2000"],
            REGRESSION_TOLERANCE,
        )
        .unwrap();
        assert_eq!(report.regressions.len(), 1);
        let message = &report.regressions[0];
        assert!(message.contains("group/alpha/500"), "{message}");
        assert!(message.contains("3.50x"), "{message}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perf_gate_abstains_on_smoke_documents_and_skips_unknown_baseline_ids() {
        let dir = std::env::temp_dir().join(format!("bmp_bench_gate2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = write_doc(&dir, "baseline", 100.0, 1000.0);
        // A smoke-mode fresh document has no timings: the gate abstains instead of
        // comparing zeros.
        let smoke = dir.join("BENCH_smoke.json");
        let smoke_reports = vec![BenchReport {
            id: "group/alpha/500".to_string(),
            median_ns: 0.0,
            best_ns: 0.0,
            smoke: true,
        }];
        std::fs::write(&smoke, bench_report_json("sample", &smoke_reports)).unwrap();
        let report = perf_gate(&smoke, &baseline, "sample", &["group/alpha/500"], 3.0).unwrap();
        assert!(!report.compared);
        assert!(report.regressions.is_empty());
        // A pinned id absent from the *baseline* is a new benchmark, not a regression…
        let fresh = write_doc(&dir, "fresh", 100.0, 1000.0);
        let narrow = dir.join("BENCH_narrow.json");
        let narrow_reports = vec![BenchReport {
            id: "group/alpha/500".to_string(),
            median_ns: 100.0,
            best_ns: 90.0,
            smoke: false,
        }];
        std::fs::write(&narrow, bench_report_json("sample", &narrow_reports)).unwrap();
        let report = perf_gate(
            &fresh,
            &narrow,
            "sample",
            &["group/alpha/500", "group/beta/2000"],
            3.0,
        )
        .unwrap();
        assert!(report.compared);
        assert!(report.regressions.is_empty());
        // …but a pinned id absent from the *fresh* document is a structural error.
        let err = perf_gate(&narrow, &fresh, "sample", &["group/beta/2000"], 3.0).unwrap_err();
        assert!(err.contains("group/beta/2000"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
