//! Benchmark crate (see benches/).
