//! Minimal command-line argument parsing (no external dependency).
//!
//! The CLI grammar is deliberately simple: one positional subcommand followed by
//! `--flag value` pairs and boolean `--flag` switches. [`ArgList`] splits the raw arguments
//! accordingly and offers typed accessors with uniform error reporting.

use crate::error::CliError;
use std::collections::BTreeMap;

/// Parsed command line: the subcommand name plus its flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArgList {
    /// The subcommand (first positional argument), empty when none was given.
    pub command: String,
    flags: BTreeMap<String, Option<String>>,
}

/// Flags that take no value (presence/absence switches).
const BOOLEAN_FLAGS: &[&str] = &[
    "--cyclic",
    "--trace",
    "--repair",
    "--queue",
    "--incremental",
];

/// The accepted flags of one subcommand.
///
/// Each `cmd_*` module declares its spec and calls [`ArgList::reject_unknown_flags`]
/// before reading any flag, so a typo (`--instnace`) fails with a usage error that
/// enumerates the accepted flags instead of being silently ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagSpec {
    /// Subcommand the spec belongs to (used in error messages).
    pub command: &'static str,
    /// Every flag the subcommand accepts, boolean or value-taking.
    pub flags: &'static [&'static str],
}

impl ArgList {
    /// Parses raw arguments (excluding the binary name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when a flag is malformed (does not start with `--`) or a
    /// value-taking flag has no value.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut parsed = ArgList::default();
        let mut iter = args.iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                parsed.command = iter.next().expect("peeked").clone();
            }
        }
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument {arg:?} (flags start with --)"
                )));
            };
            if name.is_empty() {
                return Err(CliError::Usage("empty flag name".into()));
            }
            let key = format!("--{name}");
            if BOOLEAN_FLAGS.contains(&key.as_str()) {
                parsed.flags.insert(key, None);
            } else {
                // Refuse to consume a following flag as the value: a typo'd boolean
                // switch (`--cylic --instance x.json`) must fail on the typo itself
                // instead of swallowing the next flag and failing somewhere else.
                let value = iter
                    .next_if(|value| !value.starts_with("--"))
                    .ok_or_else(|| CliError::Usage(format!("flag {key} expects a value")))?;
                parsed.flags.insert(key, Some(value.clone()));
            }
        }
        Ok(parsed)
    }

    /// Names of every flag present on the command line, in sorted order.
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }

    /// Rejects any flag not listed in `spec` with a usage error enumerating the
    /// subcommand's accepted flags.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] naming the first unknown flag.
    pub fn reject_unknown_flags(&self, spec: &FlagSpec) -> Result<(), CliError> {
        for name in self.flag_names() {
            if !spec.flags.contains(&name) {
                let accepted = if spec.flags.is_empty() {
                    "it takes no flags".to_string()
                } else {
                    format!("accepted flags: {}", spec.flags.join(", "))
                };
                return Err(CliError::Usage(format!(
                    "unknown flag {name} for `{}`; {accepted}",
                    spec.command
                )));
            }
        }
        Ok(())
    }

    /// Whether the boolean switch `flag` was given.
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// The raw value of `flag`, if present.
    #[must_use]
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).and_then(|v| v.as_deref())
    }

    /// The value of a mandatory flag.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the flag is missing.
    pub fn require(&self, flag: &str) -> Result<&str, CliError> {
        self.get(flag)
            .ok_or_else(|| CliError::Usage(format!("missing required flag {flag}")))
    }

    /// Parses the value of `flag` as type `T`, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("flag {flag} has an invalid value {raw:?}"))),
        }
    }

    /// Parses the value of a mandatory flag as type `T`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the flag is missing or does not parse.
    pub fn require_parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<T, CliError> {
        let raw = self.require(flag)?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("flag {flag} has an invalid value {raw:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let args = ArgList::parse(&strings(&[
            "solve",
            "--instance",
            "inst.json",
            "--cyclic",
            "--tolerance",
            "1e-8",
        ]))
        .unwrap();
        assert_eq!(args.command, "solve");
        assert_eq!(args.get("--instance"), Some("inst.json"));
        assert!(args.has("--cyclic"));
        assert_eq!(args.get_parsed("--tolerance", 0.0).unwrap(), 1e-8);
    }

    #[test]
    fn empty_arguments_are_valid() {
        let args = ArgList::parse(&[]).unwrap();
        assert_eq!(args.command, "");
        assert!(!args.has("--cyclic"));
        assert_eq!(args.get("--instance"), None);
    }

    #[test]
    fn missing_value_is_reported() {
        let err = ArgList::parse(&strings(&["solve", "--instance"])).unwrap_err();
        assert!(err.to_string().contains("expects a value"));
    }

    #[test]
    fn value_flags_do_not_swallow_following_flags() {
        // A typo'd boolean switch must fail on the typo itself, not consume the next
        // flag as its value and fail with a misleading message further on.
        let err =
            ArgList::parse(&strings(&["solve", "--cylic", "--instance", "x.json"])).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("--cylic"));
        assert!(message.contains("expects a value"));
    }

    #[test]
    fn unexpected_positional_is_reported() {
        let err = ArgList::parse(&strings(&["solve", "oops"])).unwrap_err();
        assert!(err.to_string().contains("unexpected positional"));
    }

    #[test]
    fn require_reports_missing_flags() {
        let args = ArgList::parse(&strings(&["bounds"])).unwrap();
        let err = args.require("--instance").unwrap_err();
        assert!(err.to_string().contains("--instance"));
        let err = args.require_parsed::<f64>("--throughput").unwrap_err();
        assert!(err.to_string().contains("--throughput"));
    }

    #[test]
    fn defaults_and_bad_values() {
        let args = ArgList::parse(&strings(&["generate", "--receivers", "ten"])).unwrap();
        assert_eq!(args.get_parsed("--seed", 7u64).unwrap(), 7);
        assert!(args.get_parsed("--receivers", 0usize).is_err());
        assert!(args.require_parsed::<usize>("--receivers").is_err());
    }

    #[test]
    fn empty_flag_name_is_rejected() {
        let err = ArgList::parse(&strings(&["solve", "--"])).unwrap_err();
        assert!(err.to_string().contains("empty flag"));
    }

    #[test]
    fn unknown_flags_are_rejected_with_the_accepted_list() {
        let spec = FlagSpec {
            command: "solve",
            flags: &["--instance", "--algorithm"],
        };
        let ok = ArgList::parse(&strings(&["solve", "--instance", "x.json"])).unwrap();
        assert!(ok.reject_unknown_flags(&spec).is_ok());
        let typo = ArgList::parse(&strings(&["solve", "--instnace", "x.json"])).unwrap();
        let err = typo.reject_unknown_flags(&spec).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("--instnace"));
        assert!(message.contains("`solve`"));
        assert!(message.contains("--instance, --algorithm"));
    }

    #[test]
    fn flagless_commands_say_so() {
        let spec = FlagSpec {
            command: "help",
            flags: &[],
        };
        let args = ArgList::parse(&strings(&["help", "--trace"])).unwrap();
        let err = args.reject_unknown_flags(&spec).unwrap_err();
        assert!(err.to_string().contains("takes no flags"));
    }
}
