//! Minimal command-line argument parsing (no external dependency).
//!
//! The CLI grammar is deliberately simple: one positional subcommand followed by
//! `--flag value` pairs and boolean `--flag` switches. [`ArgList`] splits the raw arguments
//! accordingly and offers typed accessors with uniform error reporting.

use crate::error::CliError;
use std::collections::BTreeMap;

/// Parsed command line: the subcommand name plus its flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArgList {
    /// The subcommand (first positional argument), empty when none was given.
    pub command: String,
    flags: BTreeMap<String, Option<String>>,
}

/// Flags that take no value (presence/absence switches).
const BOOLEAN_FLAGS: &[&str] = &["--cyclic", "--quiet", "--trace"];

impl ArgList {
    /// Parses raw arguments (excluding the binary name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when a flag is malformed (does not start with `--`) or a
    /// value-taking flag has no value.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut parsed = ArgList::default();
        let mut iter = args.iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                parsed.command = iter.next().expect("peeked").clone();
            }
        }
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument {arg:?} (flags start with --)"
                )));
            };
            if name.is_empty() {
                return Err(CliError::Usage("empty flag name".into()));
            }
            let key = format!("--{name}");
            if BOOLEAN_FLAGS.contains(&key.as_str()) {
                parsed.flags.insert(key, None);
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("flag {key} expects a value")))?;
                parsed.flags.insert(key, Some(value.clone()));
            }
        }
        Ok(parsed)
    }

    /// Whether the boolean switch `flag` was given.
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// The raw value of `flag`, if present.
    #[must_use]
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).and_then(|v| v.as_deref())
    }

    /// The value of a mandatory flag.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the flag is missing.
    pub fn require(&self, flag: &str) -> Result<&str, CliError> {
        self.get(flag)
            .ok_or_else(|| CliError::Usage(format!("missing required flag {flag}")))
    }

    /// Parses the value of `flag` as type `T`, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("flag {flag} has an invalid value {raw:?}"))),
        }
    }

    /// Parses the value of a mandatory flag as type `T`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the flag is missing or does not parse.
    pub fn require_parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<T, CliError> {
        let raw = self.require(flag)?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("flag {flag} has an invalid value {raw:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let args = ArgList::parse(&strings(&[
            "solve",
            "--instance",
            "inst.json",
            "--cyclic",
            "--tolerance",
            "1e-8",
        ]))
        .unwrap();
        assert_eq!(args.command, "solve");
        assert_eq!(args.get("--instance"), Some("inst.json"));
        assert!(args.has("--cyclic"));
        assert_eq!(args.get_parsed("--tolerance", 0.0).unwrap(), 1e-8);
    }

    #[test]
    fn empty_arguments_are_valid() {
        let args = ArgList::parse(&[]).unwrap();
        assert_eq!(args.command, "");
        assert!(!args.has("--cyclic"));
        assert_eq!(args.get("--instance"), None);
    }

    #[test]
    fn missing_value_is_reported() {
        let err = ArgList::parse(&strings(&["solve", "--instance"])).unwrap_err();
        assert!(err.to_string().contains("expects a value"));
    }

    #[test]
    fn unexpected_positional_is_reported() {
        let err = ArgList::parse(&strings(&["solve", "oops"])).unwrap_err();
        assert!(err.to_string().contains("unexpected positional"));
    }

    #[test]
    fn require_reports_missing_flags() {
        let args = ArgList::parse(&strings(&["bounds"])).unwrap();
        let err = args.require("--instance").unwrap_err();
        assert!(err.to_string().contains("--instance"));
        let err = args.require_parsed::<f64>("--throughput").unwrap_err();
        assert!(err.to_string().contains("--throughput"));
    }

    #[test]
    fn defaults_and_bad_values() {
        let args = ArgList::parse(&strings(&["generate", "--receivers", "ten"])).unwrap();
        assert_eq!(args.get_parsed("--seed", 7u64).unwrap(), 7);
        assert!(args.get_parsed("--receivers", 0usize).is_err());
        assert!(args.require_parsed::<usize>("--receivers").is_err());
    }

    #[test]
    fn empty_flag_name_is_rejected() {
        let err = ArgList::parse(&strings(&["solve", "--"])).unwrap_err();
        assert!(err.to_string().contains("empty flag"));
    }
}
