//! `bounds` — print the closed-form throughput bounds of an instance.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use crate::files;
use bmp_core::bounds::Bounds;
use bmp_core::omega::best_omega_throughput;
use bmp_core::AcyclicGuardedSolver;
use std::io::Write;

/// Flags accepted by `bounds`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "bounds",
    flags: &["--instance"],
};

/// Runs the `bounds` subcommand.
///
/// Flags: `--instance FILE` (required).
///
/// Prints the cyclic optimum of Lemma 5.1, the closed-form open-only optima when applicable,
/// the optimal acyclic throughput found by Algorithm 2 + dichotomic search, and the throughput
/// of the best regular ω-word.
///
/// # Errors
///
/// Returns a [`CliError`] when the instance cannot be read.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let instance = files::read_instance(args.require("--instance")?)?;
    let bounds = Bounds::of(&instance);
    let solver = AcyclicGuardedSolver::default();
    let (acyclic, word) = solver.optimal_throughput(&instance);
    let (omega, _) = best_omega_throughput(&instance, 1e-9);

    writeln!(
        out,
        "instance: n = {} open, m = {} guarded, b0 = {:.4}",
        instance.n(),
        instance.m(),
        instance.source_bandwidth()
    )?;
    writeln!(
        out,
        "cyclic optimum T* (Lemma 5.1)        : {:.6}",
        bounds.cyclic_optimum
    )?;
    match bounds.acyclic_open_optimum {
        Some(t) => writeln!(out, "acyclic open-only optimum            : {t:.6}")?,
        None => writeln!(
            out,
            "acyclic open-only optimum            : n/a (guarded nodes present)"
        )?,
    }
    match bounds.cyclic_open_optimum {
        Some(t) => writeln!(out, "cyclic open-only optimum             : {t:.6}")?,
        None => writeln!(
            out,
            "cyclic open-only optimum             : n/a (guarded nodes present)"
        )?,
    }
    writeln!(
        out,
        "optimal acyclic throughput T*_ac     : {acyclic:.6} (word {word})"
    )?;
    writeln!(out, "best regular word (omega1/omega2)    : {omega:.6}")?;
    if bounds.cyclic_optimum > 0.0 {
        writeln!(
            out,
            "acyclic / cyclic ratio               : {:.4} (worst case bound 5/7 ≈ 0.7143)",
            acyclic / bounds.cyclic_optimum
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_platform::paper::figure1;

    fn run_on_figure1() -> String {
        let path = temp_path("bounds-instance.json");
        let path_str = path.to_str().unwrap();
        files::write_instance(path_str, &figure1()).unwrap();
        let list = ArgList::parse(&["--instance".to_string(), path_str.to_string()]).unwrap();
        let mut out = Vec::new();
        run(&list, &mut out).unwrap();
        std::fs::remove_file(path).ok();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn reports_the_paper_values_for_figure1() {
        let output = run_on_figure1();
        // Lemma 5.1: T* = 4.4 for the running example.
        assert!(output.contains("4.400000"));
        // The acyclic optimum of the running example is 4.
        assert!(output.contains("T*_ac     : 4.0"));
        assert!(output.contains("ratio"));
        assert!(output.contains("guarded nodes present"));
    }

    #[test]
    fn missing_instance_flag_is_a_usage_error() {
        let list = ArgList::parse(&[]).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&list, &mut out), Err(CliError::Usage(_))));
    }
}
