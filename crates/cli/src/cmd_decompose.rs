//! `decompose` — split a broadcast scheme into weighted broadcast trees.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use crate::files;
use bmp_trees::{decompose_acyclic, greedy_packing, stripe_message};
use std::io::Write;

/// Flags accepted by `decompose`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "decompose",
    flags: &["--scheme", "--throughput", "--message", "--out"],
};

/// Runs the `decompose` subcommand.
///
/// Flags: `--scheme FILE` (required), `--throughput T` (rate to decompose; defaults to the
/// scheme's max-flow throughput), `--message M` (also print the stripe plan for a message of
/// size `M`), `--out FILE` (write the decomposition as JSON).
///
/// Acyclic schemes are decomposed exactly (interval decomposition); cyclic schemes fall back
/// to the greedy arborescence-packing heuristic.
///
/// # Errors
///
/// Returns a [`CliError`] when the scheme cannot be read or the decomposition fails.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let scheme = files::read_scheme(args.require("--scheme")?)?;
    let throughput: f64 = args.get_parsed("--throughput", scheme.throughput())?;

    let decomposition = if scheme.is_acyclic() {
        writeln!(
            out,
            "method     : exact interval decomposition (acyclic scheme)"
        )?;
        decompose_acyclic(&scheme, throughput)?
    } else {
        let packing = greedy_packing(&scheme)?;
        writeln!(
            out,
            "method     : greedy arborescence packing (cyclic scheme), efficiency {:.3}",
            packing.efficiency()
        )?;
        packing.decomposition
    };
    decomposition.verify(&scheme)?;

    writeln!(out, "throughput : {:.6}", decomposition.throughput())?;
    writeln!(out, "trees      : {}", decomposition.num_trees())?;
    writeln!(out, "max depth  : {}", decomposition.max_depth())?;
    for (index, tree) in decomposition.trees().iter().enumerate() {
        writeln!(
            out,
            "  tree {index}: weight {:.4}, depth {}, edges {:?}",
            tree.weight(),
            tree.max_depth(),
            tree.edges()
        )?;
    }

    if let Some(message) = args.get("--message") {
        let message: f64 = message
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid message size {message:?}")))?;
        let plan = stripe_message(&decomposition, message)?;
        writeln!(out, "stripe plan for a message of size {message}:")?;
        for (index, stripe) in plan.stripes.iter().enumerate() {
            writeln!(out, "  tree {index}: {stripe:.4}")?;
        }
    }

    if let Some(path) = args.get("--out") {
        files::write_text(path, &serde_json::to_string_pretty(&decomposition)?)?;
        writeln!(out, "wrote decomposition to {path}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
    use bmp_core::AcyclicGuardedSolver;
    use bmp_platform::paper::{figure1, figure14};

    fn run_args(args: Vec<String>) -> Result<String, CliError> {
        let list = ArgList::parse(&args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn decomposes_an_acyclic_scheme() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let path = temp_path("dec-acyclic.json").to_str().unwrap().to_string();
        files::write_scheme(&path, &solution.scheme).unwrap();
        let json_path = temp_path("dec-out.json").to_str().unwrap().to_string();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--message".into(),
            "100".into(),
            "--out".into(),
            json_path.clone(),
        ])
        .unwrap();
        assert!(output.contains("exact interval decomposition"));
        assert!(output.contains("trees      :"));
        assert!(output.contains("stripe plan"));
        assert!(std::fs::read_to_string(&json_path)
            .unwrap()
            .contains("trees"));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(json_path).ok();
    }

    #[test]
    fn falls_back_to_greedy_packing_on_cyclic_schemes() {
        let (scheme, _) = cyclic_open_optimal_scheme(&figure14()).unwrap();
        let path = temp_path("dec-cyclic.json").to_str().unwrap().to_string();
        files::write_scheme(&path, &scheme).unwrap();
        let output = run_args(vec!["--scheme".into(), path.clone()]).unwrap();
        assert!(output.contains("greedy arborescence packing"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_message_size_is_a_usage_error() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let path = temp_path("dec-bad.json").to_str().unwrap().to_string();
        files::write_scheme(&path, &solution.scheme).unwrap();
        let err = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--message".into(),
            "huge".into(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_file(path).ok();
    }
}
