//! `export` — render a broadcast scheme as Graphviz DOT or CSV.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use crate::files;
use bmp_core::export::{degrees_to_csv, scheme_to_csv, scheme_to_dot};
use std::io::Write;

/// Flags accepted by `export`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "export",
    flags: &["--scheme", "--format", "--throughput", "--out"],
};

/// Runs the `export` subcommand.
///
/// Flags: `--scheme FILE` (required), `--format dot|edges|degrees` (default dot),
/// `--throughput T` (used by the `degrees` format; defaults to the scheme's max-flow
/// throughput), `--out FILE` (write to a file instead of printing).
///
/// # Errors
///
/// Returns a [`CliError`] when the scheme cannot be read, the format is unknown or the output
/// file cannot be written.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let scheme = files::read_scheme(args.require("--scheme")?)?;
    let format = args.get("--format").unwrap_or("dot");
    let rendered = match format {
        "dot" => scheme_to_dot(&scheme),
        "edges" | "csv" => scheme_to_csv(&scheme),
        "degrees" => {
            let throughput: f64 = args.get_parsed("--throughput", scheme.throughput())?;
            degrees_to_csv(&scheme, throughput)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown export format {other:?} (expected dot, edges or degrees)"
            )))
        }
    };
    match args.get("--out") {
        Some(path) => {
            files::write_text(path, &rendered)?;
            writeln!(out, "wrote {format} export to {path}")?;
        }
        None => out.write_all(rendered.as_bytes())?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_core::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn scheme_path() -> String {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let path = temp_path("export-scheme.json")
            .to_str()
            .unwrap()
            .to_string();
        files::write_scheme(&path, &solution.scheme).unwrap();
        path
    }

    fn run_args(args: Vec<String>) -> Result<String, CliError> {
        let list = ArgList::parse(&args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn exports_dot_to_stdout_by_default() {
        let path = scheme_path();
        let output = run_args(vec!["--scheme".into(), path.clone()]).unwrap();
        assert!(output.starts_with("digraph broadcast"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn exports_edge_and_degree_csv() {
        let path = scheme_path();
        let edges = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--format".into(),
            "edges".into(),
        ])
        .unwrap();
        assert!(edges.starts_with("from,to,rate"));
        let degrees = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--format".into(),
            "degrees".into(),
        ])
        .unwrap();
        assert!(degrees.starts_with("node,class,bandwidth"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn exports_to_a_file() {
        let path = scheme_path();
        let out_path = temp_path("export.dot").to_str().unwrap().to_string();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--out".into(),
            out_path.clone(),
        ])
        .unwrap();
        assert!(output.contains("wrote dot export"));
        assert!(std::fs::read_to_string(&out_path)
            .unwrap()
            .starts_with("digraph"));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn unknown_format_is_a_usage_error() {
        let path = scheme_path();
        let err = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--format".into(),
            "png".into(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_file(path).ok();
    }
}
