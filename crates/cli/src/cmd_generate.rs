//! `generate` — sample a random platform instance and store it as JSON.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use crate::files;
use bmp_platform::distribution::NamedDistribution;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator, SourcePolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

/// Parses one of the paper's six distribution names (case-insensitive).
pub(crate) fn parse_distribution(name: &str) -> Result<NamedDistribution, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "unif100" | "uniform" => Ok(NamedDistribution::Unif100),
        "power1" => Ok(NamedDistribution::Power1),
        "power2" => Ok(NamedDistribution::Power2),
        "ln1" => Ok(NamedDistribution::Ln1),
        "ln2" => Ok(NamedDistribution::Ln2),
        "plab" | "planetlab" => Ok(NamedDistribution::PLab),
        other => Err(CliError::Usage(format!(
            "unknown distribution {other:?} (expected unif100, power1, power2, ln1, ln2 or plab)"
        ))),
    }
}

fn parse_source_policy(raw: &str) -> Result<SourcePolicy, CliError> {
    match raw.to_ascii_lowercase().as_str() {
        "cyclic-opt" | "pinned" => Ok(SourcePolicy::CyclicOptimum),
        "sampled" => Ok(SourcePolicy::Sampled),
        other => {
            if let Some(value) = other.strip_prefix("fixed:") {
                let value: f64 = value.parse().map_err(|_| {
                    CliError::Usage(format!("invalid fixed source bandwidth {value:?}"))
                })?;
                Ok(SourcePolicy::Fixed(value))
            } else {
                Err(CliError::Usage(format!(
                    "unknown source policy {other:?} (expected pinned, sampled or fixed:<bw>)"
                )))
            }
        }
    }
}

/// Flags accepted by `generate`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "generate",
    flags: &[
        "--receivers",
        "--open-prob",
        "--dist",
        "--seed",
        "--source",
        "--out",
    ],
};

/// Runs the `generate` subcommand.
///
/// Flags: `--receivers N` (required), `--open-prob P` (default 0.7), `--dist NAME` (default
/// unif100), `--seed S` (default 42), `--source pinned|sampled|fixed:<bw>` (default pinned),
/// `--out FILE` (optional; JSON is printed when absent).
///
/// # Errors
///
/// Returns a [`CliError`] for malformed flags or unwritable output files.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let receivers: usize = args.require_parsed("--receivers")?;
    let open_probability: f64 = args.get_parsed("--open-prob", 0.7)?;
    let distribution = parse_distribution(args.get("--dist").unwrap_or("unif100"))?;
    let seed: u64 = args.get_parsed("--seed", 42)?;
    let policy = parse_source_policy(args.get("--source").unwrap_or("pinned"))?;

    let config = GeneratorConfig::new(receivers, open_probability)?.with_source_policy(policy);
    let generator = InstanceGenerator::new(config, distribution.build());
    let instance = generator.generate(&mut StdRng::seed_from_u64(seed));

    writeln!(
        out,
        "generated instance: n = {} open, m = {} guarded, b0 = {:.3} ({} distribution, seed {seed})",
        instance.n(),
        instance.m(),
        instance.source_bandwidth(),
        distribution.label(),
    )?;
    match args.get("--out") {
        Some(path) => {
            files::write_instance(path, &instance)?;
            writeln!(out, "wrote {path}")?;
        }
        None => {
            writeln!(out, "{}", serde_json::to_string_pretty(&instance)?)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;

    fn run_args(args: &[&str]) -> Result<String, CliError> {
        let list = ArgList::parse(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn generates_to_stdout() {
        let output = run_args(&["--receivers", "12", "--open-prob", "0.5", "--seed", "1"]).unwrap();
        assert!(output.contains("generated instance"));
        assert!(output.contains("\"open\"") || output.contains("open"));
    }

    #[test]
    fn generates_to_a_file_and_roundtrips() {
        let path = temp_path("gen.json");
        let path_str = path.to_str().unwrap();
        let output = run_args(&[
            "--receivers",
            "20",
            "--dist",
            "power1",
            "--seed",
            "7",
            "--out",
            path_str,
        ])
        .unwrap();
        assert!(output.contains("wrote"));
        let instance = crate::files::read_instance(path_str).unwrap();
        assert_eq!(instance.num_receivers(), 20);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fixed_source_policy() {
        let output =
            run_args(&["--receivers", "5", "--source", "fixed:42.5", "--seed", "3"]).unwrap();
        assert!(output.contains("b0 = 42.5"));
    }

    #[test]
    fn all_distribution_names_parse() {
        for name in [
            "unif100", "power1", "power2", "ln1", "ln2", "plab", "PLab", "UNIF100",
        ] {
            assert!(parse_distribution(name).is_ok(), "{name}");
        }
        assert!(parse_distribution("zipf").is_err());
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        assert!(matches!(run_args(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_args(&["--receivers", "5", "--dist", "bogus"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_args(&["--receivers", "5", "--source", "fixed:abc"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_args(&["--receivers", "5", "--source", "nope"]),
            Err(CliError::Usage(_))
        ));
    }
}
