//! `serve` — run a sharded multi-session broadcast fleet ([`bmp_serve`]).
//!
//! One process hosts N concurrent broadcast sessions behind admission control:
//!
//! ```text
//! bmp serve --sessions 64 --shards 4 --churn 4:3:2 --fault-plan storm \
//!           --max-sessions 48 --queue --report fleet.json --csv fleet.csv
//! ```
//!
//! The run is deterministic for a fixed seed regardless of `--shards` (per-session
//! RNG streams, ordered metric merge) — the report written for `--shards 1` and
//! `--shards 4` is byte-identical.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use bmp_serve::{
    run_fleet, AdmissionPolicy, AdmissionVerdict, ChurnConfig, FleetConfig, FleetReport,
};
use bmp_sim::FaultPlan;
use std::io::Write;

/// Flags accepted by `serve`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "serve",
    flags: &[
        "--sessions",
        "--shards",
        "--receivers",
        "--chunks",
        "--seed",
        "--floor",
        "--threads",
        "--max-sessions",
        "--capacity",
        "--queue",
        "--repair-algorithm",
        "--churn",
        "--fault-plan",
        "--report",
        "--csv",
    ],
};

/// Parses a `START:SPACING:WAVES` churn feed specification.
fn parse_churn(raw: &str) -> Result<ChurnConfig, CliError> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 3 {
        return Err(CliError::Usage(format!(
            "churn spec {raw:?} must be START:SPACING:WAVES (e.g. \"4:3:2\")"
        )));
    }
    let start: f64 = parts[0]
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid churn start {:?}", parts[0])))?;
    let spacing: f64 = parts[1]
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid churn spacing {:?}", parts[1])))?;
    let waves: usize = parts[2]
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid churn wave count {:?}", parts[2])))?;
    if !start.is_finite() || start < 0.0 || spacing <= 0.0 || !spacing.is_finite() {
        return Err(CliError::Usage(format!(
            "churn spec {raw:?}: start must be non-negative and spacing positive"
        )));
    }
    Ok(ChurnConfig {
        start,
        spacing,
        waves,
    })
}

/// Runs the `serve` subcommand.
///
/// Flags: `--sessions N` (default 8), `--shards K` (default 1), `--receivers R`
/// (default 4), `--chunks C` (default 60), `--seed S`, `--floor F` (default 0.9),
/// `--threads T` (flow fan-out per controller), `--max-sessions N` / `--capacity L` /
/// `--queue` (admission policy), `--repair-algorithm NAME`, `--churn
/// START:SPACING:WAVES` (default `4:3:2`), `--fault-plan SPEC` (`storm`,
/// `storm:SEED`, `off`; unset reads `BMP_FAULT_PLAN`), `--report FILE` (fleet report
/// JSON), `--csv FILE` (per-session rows).
///
/// # Errors
///
/// Returns a [`CliError`] on malformed flags or unwritable output paths.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let sessions: usize = args.get_parsed("--sessions", 8)?;
    let shards: usize = args.get_parsed("--shards", 1)?;
    if sessions == 0 || shards == 0 {
        return Err(CliError::Usage(
            "--sessions and --shards must both be at least 1".into(),
        ));
    }
    let floor: f64 = args.get_parsed("--floor", 0.9)?;
    if !(floor > 0.0 && floor <= 1.0) {
        return Err(CliError::Usage(format!(
            "--floor {floor} must lie in (0, 1]"
        )));
    }
    let repair_algorithm = args.get("--repair-algorithm");
    if let Some(name) = repair_algorithm {
        if bmp_core::solver::find(name).is_none() {
            let names: Vec<&str> = bmp_core::solver::registry()
                .iter()
                .map(|solver| solver.name())
                .collect();
            return Err(CliError::Usage(format!(
                "unknown repair algorithm {name:?} (expected one of {})",
                names.join(", ")
            )));
        }
    }
    let capacity = args
        .get("--capacity")
        .map(|raw| {
            raw.parse::<f64>()
                .map_err(|_| CliError::Usage(format!("invalid capacity {raw:?}")))
        })
        .transpose()?;
    let max_sessions = args
        .get("--max-sessions")
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("invalid session cap {raw:?}")))
        })
        .transpose()?;
    let churn = match args.get("--churn") {
        Some(raw) => parse_churn(raw)?,
        None => ChurnConfig::default(),
    };
    let fault_plan = match args.get("--fault-plan") {
        Some(spec) => FaultPlan::parse(spec),
        None => FaultPlan::from_env(),
    };
    let config = FleetConfig {
        sessions,
        shards,
        receivers: args.get_parsed("--receivers", 4)?,
        chunks: args.get_parsed("--chunks", 60)?,
        seed: args.get_parsed("--seed", 0x5EED)?,
        floor,
        flow_threads: args.get_parsed("--threads", 1)?,
        repair_algorithm: repair_algorithm.map(str::to_string),
        admission: AdmissionPolicy {
            max_sessions,
            capacity,
            queue: args.has("--queue"),
        },
        churn,
        fault_plan,
    };

    writeln!(
        out,
        "serving {} session(s) across {} shard(s) (receivers {}, chunks {}, seed {:#x}, floor {})",
        config.sessions, config.shards, config.receivers, config.chunks, config.seed, config.floor
    )?;
    let report = run_fleet(&config);
    render_summary(&report, out)?;
    if let Some(path) = args.get("--report") {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::Io(format!("cannot write fleet report {path:?}: {e}")))?;
        writeln!(out, "fleet report written to {path}")?;
    }
    if let Some(path) = args.get("--csv") {
        std::fs::write(path, report.to_csv())
            .map_err(|e| CliError::Io(format!("cannot write fleet CSV {path:?}: {e}")))?;
        writeln!(out, "per-session CSV written to {path}")?;
    }
    Ok(())
}

/// Renders the human-readable fleet summary.
fn render_summary<W: Write>(report: &FleetReport, out: &mut W) -> Result<(), CliError> {
    let metrics = &report.metrics;
    writeln!(
        out,
        "admission : {} run, {} rejected",
        metrics.sessions_run, metrics.sessions_rejected
    )?;
    for decision in &report.admissions {
        if let AdmissionVerdict::Rejected { reason } = decision.verdict {
            writeln!(
                out,
                "  session {:>4} rejected ({reason:?}, load {:.2})",
                decision.session, decision.load
            )?;
        }
    }
    writeln!(
        out,
        "goodput   : mean {:.1}% of nominal; histogram {:?}",
        100.0 * metrics.mean_goodput_vs_nominal,
        metrics.goodput_histogram
    )?;
    match (
        metrics.recovery_p50,
        metrics.recovery_p90,
        metrics.recovery_p99,
    ) {
        (Some(p50), Some(p90), Some(p99)) => writeln!(
            out,
            "recovery  : p50 {p50:.2} / p90 {p90:.2} / p99 {p99:.2} (simulated time)"
        )?,
        _ => writeln!(out, "recovery  : no repaired session recovered")?,
    }
    writeln!(
        out,
        "repairs   : {} swaps, {} repairs, {} attempts, {} degraded session(s)",
        metrics.total_swaps,
        metrics.total_repairs,
        metrics.total_attempts,
        metrics.degraded_sessions
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: Vec<String>) -> Result<String, CliError> {
        let list = ArgList::parse(&args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn a_small_fleet_serves_and_summarizes() {
        let output = run_args(vec![
            "--sessions".into(),
            "3".into(),
            "--shards".into(),
            "2".into(),
            "--chunks".into(),
            "24".into(),
        ])
        .unwrap();
        assert!(output.contains("serving 3 session(s) across 2 shard(s)"));
        assert!(output.contains("admission : 3 run, 0 rejected"));
        assert!(output.contains("goodput"));
    }

    #[test]
    fn reports_are_written_and_shard_agnostic() {
        let dir = std::env::temp_dir().join(format!("bmp-serve-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
        let common = |shards: &str, report: String| {
            run_args(vec![
                "--sessions".into(),
                "4".into(),
                "--shards".into(),
                shards.into(),
                "--chunks".into(),
                "24".into(),
                "--report".into(),
                report,
                "--csv".into(),
                path("fleet.csv"),
            ])
            .unwrap()
        };
        common("1", path("one.json"));
        common("3", path("three.json"));
        let one = std::fs::read(dir.join("one.json")).unwrap();
        let three = std::fs::read(dir.join("three.json")).unwrap();
        assert_eq!(one, three, "fleet report must not depend on shard count");
        let csv = std::fs::read_to_string(dir.join("fleet.csv")).unwrap();
        assert_eq!(csv.lines().count(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        for args in [
            vec!["--sessions".to_string(), "0".into()],
            vec!["--shards".to_string(), "0".into()],
            vec!["--floor".to_string(), "1.5".into()],
            vec!["--churn".to_string(), "4:3".into()],
            vec!["--churn".to_string(), "4:-1:2".into()],
            vec!["--repair-algorithm".to_string(), "frobnicate".into()],
        ] {
            assert!(
                matches!(run_args(args.clone()), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
    }
}
