//! `serve` — run a sharded multi-session broadcast fleet ([`bmp_serve`]).
//!
//! One process hosts N concurrent broadcast sessions behind admission control:
//!
//! ```text
//! bmp serve --sessions 64 --shards 4 --churn 4:3:2 --fault-plan storm \
//!           --max-sessions 48 --queue --report fleet.json --csv fleet.csv
//! ```
//!
//! The run is deterministic for a fixed seed regardless of `--shards` (per-session
//! RNG streams, ordered metric merge) — the report written for `--shards 1` and
//! `--shards 4` is byte-identical.
//!
//! Supervised fleets can be halted and resumed without changing any result:
//!
//! ```text
//! bmp serve --sessions 64 --checkpoint fleet.ckpt --halt-after 200
//! bmp serve --resume fleet.ckpt --shards 8 --report fleet.json
//! ```
//!
//! The resumed report is byte-identical to the uninterrupted run's. `--panic-session`
//! and `--wedge-session` inject deterministic session failures to exercise the
//! quarantine, watchdog and retry machinery end to end.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use crate::files;
use bmp_serve::{
    run_fleet_with, AdmissionPolicy, AdmissionVerdict, ChurnConfig, Disposition, FleetCheckpoint,
    FleetConfig, FleetOptions, FleetReport, FleetRun, QuarantineReason, SessionFaults,
    SessionPanic, SessionWedge, SupervisionConfig,
};
use bmp_sim::FaultPlan;
use std::io::Write;

/// Flags accepted by `serve`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "serve",
    flags: &[
        "--sessions",
        "--shards",
        "--receivers",
        "--chunks",
        "--seed",
        "--floor",
        "--threads",
        "--speculate",
        "--incremental",
        "--max-sessions",
        "--capacity",
        "--queue",
        "--repair-algorithm",
        "--churn",
        "--fault-plan",
        "--report",
        "--csv",
        "--checkpoint",
        "--checkpoint-every",
        "--halt-after",
        "--resume",
        "--max-rounds",
        "--no-progress",
        "--retries",
        "--panic-session",
        "--wedge-session",
    ],
};

/// The flags that describe the fleet itself (as opposed to scheduling and output):
/// these conflict with `--resume`, which carries the fleet description in the
/// checkpoint.
const RESUME_CONFLICTS: &[&str] = &[
    "--sessions",
    "--receivers",
    "--chunks",
    "--seed",
    "--floor",
    "--threads",
    "--max-sessions",
    "--capacity",
    "--repair-algorithm",
    "--churn",
    "--fault-plan",
    "--max-rounds",
    "--no-progress",
    "--retries",
    "--panic-session",
    "--wedge-session",
];

/// Parses a `START:SPACING:WAVES` churn feed specification.
fn parse_churn(raw: &str) -> Result<ChurnConfig, CliError> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 3 {
        return Err(CliError::Usage(format!(
            "churn spec {raw:?} must be START:SPACING:WAVES (e.g. \"4:3:2\")"
        )));
    }
    let start: f64 = parts[0]
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid churn start {:?}", parts[0])))?;
    let spacing: f64 = parts[1]
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid churn spacing {:?}", parts[1])))?;
    let waves: usize = parts[2]
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid churn wave count {:?}", parts[2])))?;
    if !start.is_finite() || start < 0.0 || spacing <= 0.0 || !spacing.is_finite() {
        return Err(CliError::Usage(format!(
            "churn spec {raw:?}: start must be non-negative and spacing positive"
        )));
    }
    Ok(ChurnConfig {
        start,
        spacing,
        waves,
    })
}

/// Parses a `SESSION:ROUND` (optionally `SESSION:ROUND:once` when `allow_once`)
/// injected-fault specification.
fn parse_session_fault(
    raw: &str,
    flag: &str,
    allow_once: bool,
) -> Result<(usize, usize, bool), CliError> {
    let parts: Vec<&str> = raw.split(':').collect();
    let once = match parts.as_slice() {
        [_, _] => false,
        [_, _, tag] if allow_once && tag.trim() == "once" => true,
        _ => {
            let shape = if allow_once {
                "SESSION:ROUND or SESSION:ROUND:once"
            } else {
                "SESSION:ROUND"
            };
            return Err(CliError::Usage(format!(
                "{flag} spec {raw:?} must be {shape}"
            )));
        }
    };
    let session: usize = parts[0]
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag}: invalid session id {:?}", parts[0])))?;
    let round: usize = parts[1]
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag}: invalid round {:?}", parts[1])))?;
    Ok((session, round, once))
}

/// Parses an optional non-negative integer flag.
fn get_optional<T: std::str::FromStr>(args: &ArgList, flag: &str) -> Result<Option<T>, CliError> {
    args.get(flag)
        .map(|raw| {
            raw.parse::<T>()
                .map_err(|_| CliError::Usage(format!("invalid value {raw:?} for {flag}")))
        })
        .transpose()
}

/// Builds the fleet configuration from scratch (the non-`--resume` path).
fn config_from_flags(args: &ArgList) -> Result<FleetConfig, CliError> {
    let sessions: usize = args.get_parsed("--sessions", 8)?;
    let shards: usize = args.get_parsed("--shards", 1)?;
    if sessions == 0 || shards == 0 {
        return Err(CliError::Usage(
            "--sessions and --shards must both be at least 1".into(),
        ));
    }
    let floor: f64 = args.get_parsed("--floor", 0.9)?;
    if !(floor > 0.0 && floor <= 1.0) {
        return Err(CliError::Usage(format!(
            "--floor {floor} must lie in (0, 1]"
        )));
    }
    let repair_algorithm = args.get("--repair-algorithm");
    if let Some(name) = repair_algorithm {
        if bmp_core::solver::find(name).is_none() {
            let names: Vec<&str> = bmp_core::solver::registry()
                .iter()
                .map(|solver| solver.name())
                .collect();
            return Err(CliError::Usage(format!(
                "unknown repair algorithm {name:?} (expected one of {})",
                names.join(", ")
            )));
        }
    }
    let capacity = args
        .get("--capacity")
        .map(|raw| {
            raw.parse::<f64>()
                .map_err(|_| CliError::Usage(format!("invalid capacity {raw:?}")))
        })
        .transpose()?;
    let max_sessions = args
        .get("--max-sessions")
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("invalid session cap {raw:?}")))
        })
        .transpose()?;
    let churn = match args.get("--churn") {
        Some(raw) => parse_churn(raw)?,
        None => ChurnConfig::default(),
    };
    let fault_plan = match args.get("--fault-plan") {
        Some(spec) => FaultPlan::parse(spec),
        None => FaultPlan::from_env(),
    };
    let supervision = SupervisionConfig {
        max_rounds: get_optional(args, "--max-rounds")?,
        no_progress_rounds: get_optional(args, "--no-progress")?,
        max_retries: args.get_parsed("--retries", SupervisionConfig::default().max_retries)?,
        ..SupervisionConfig::default()
    };
    let mut session_faults = SessionFaults::default();
    if let Some(raw) = args.get("--panic-session") {
        let (session, round, once) = parse_session_fault(raw, "--panic-session", true)?;
        session_faults.panics.push(SessionPanic {
            session,
            round,
            transient: once,
        });
    }
    if let Some(raw) = args.get("--wedge-session") {
        let (session, round, _) = parse_session_fault(raw, "--wedge-session", false)?;
        session_faults.wedges.push(SessionWedge { session, round });
    }
    Ok(FleetConfig {
        sessions,
        shards,
        receivers: args.get_parsed("--receivers", 4)?,
        chunks: args.get_parsed("--chunks", 60)?,
        seed: args.get_parsed("--seed", 0x5EED)?,
        floor,
        flow_threads: args.get_parsed("--threads", 1)?,
        repair_algorithm: repair_algorithm.map(str::to_string),
        admission: AdmissionPolicy {
            max_sessions,
            capacity,
            queue: args.has("--queue"),
        },
        churn,
        fault_plan,
        supervision,
        session_faults,
    })
}

/// Runs the `serve` subcommand.
///
/// Flags: `--sessions N` (default 8), `--shards K` (default 1), `--receivers R`
/// (default 4), `--chunks C` (default 60), `--seed S`, `--floor F` (default 0.9),
/// `--threads T` (flow fan-out per controller), `--speculate N` (dichotomic
/// speculation depth for every controller's re-solves; a scheduling knob — reports
/// are bit-identical at any depth, so it also composes with `--resume`),
/// `--incremental` (warm residual reuse across every controller's re-probes; same
/// bit-identity contract, also composable with `--resume`),
/// `--max-sessions N` / `--capacity L` /
/// `--queue` (admission policy), `--repair-algorithm NAME`, `--churn
/// START:SPACING:WAVES` (default `4:3:2`), `--fault-plan SPEC` (`storm`,
/// `storm:SEED`, `off`; unset reads `BMP_FAULT_PLAN`), `--report FILE` (fleet report
/// JSON), `--csv FILE` (per-session rows).
///
/// Supervision: `--max-rounds N` / `--no-progress N` override the derived watchdog
/// budgets, `--retries R` bounds panic re-admissions, `--panic-session S:R[:once]` /
/// `--wedge-session S:R` inject deterministic session failures.
///
/// Checkpointing: `--checkpoint FILE` streams a fleet checkpoint to FILE every
/// `--checkpoint-every K` waves (default 1), `--halt-after N` parks every session at
/// round N and halts (requires `--checkpoint`), and `--resume FILE` continues a
/// halted fleet — only `--shards` and the output flags may accompany it; the fleet
/// description comes from the checkpoint.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed flags, conflicting resume flags, or
/// unwritable output paths.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let checkpoint_path = args.get("--checkpoint");
    let halt_after: Option<usize> = get_optional(args, "--halt-after")?;
    let checkpoint_every: usize = args.get_parsed("--checkpoint-every", 1)?;
    if checkpoint_path.is_none() {
        if halt_after.is_some() {
            return Err(CliError::Usage(
                "--halt-after requires --checkpoint (the parked fleet must be persisted)".into(),
            ));
        }
        if args.get("--checkpoint-every").is_some() {
            return Err(CliError::Usage(
                "--checkpoint-every requires --checkpoint".into(),
            ));
        }
    }
    let resume = match args.get("--resume") {
        Some(path) => {
            for flag in RESUME_CONFLICTS {
                if args.get(flag).is_some() {
                    return Err(CliError::Usage(format!(
                        "{flag} conflicts with --resume: the fleet description comes \
                         from the checkpoint (only --shards and output flags apply)"
                    )));
                }
            }
            if args.has("--queue") {
                return Err(CliError::Usage(
                    "--queue conflicts with --resume: the admission policy comes from \
                     the checkpoint"
                        .into(),
                ));
            }
            Some(files::read_fleet_checkpoint(path)?)
        }
        None => None,
    };
    let config = match &resume {
        Some(checkpoint) => {
            let mut config = checkpoint.config.clone();
            config.shards = args.get_parsed("--shards", config.shards)?;
            if config.shards == 0 {
                return Err(CliError::Usage("--shards must be at least 1".into()));
            }
            config
        }
        None => config_from_flags(args)?,
    };

    writeln!(
        out,
        "serving {} session(s) across {} shard(s) (receivers {}, chunks {}, seed {:#x}, floor {})",
        config.sessions, config.shards, config.receivers, config.chunks, config.seed, config.floor
    )?;
    // Speculation is a scheduling knob, not fleet description: it never changes a
    // session's results, so it composes with --resume and stays out of the
    // checkpoint. Controllers are built deep inside the shard threads, so the depth
    // travels via the process default (restored afterwards to keep in-process
    // callers hermetic).
    let speculate: usize =
        args.get_parsed("--speculate", bmp_core::solver::default_speculation())?;
    let previous_speculation = bmp_core::solver::set_default_speculation(speculate);
    // Same contract for warm residual reuse: bit-identical reports, so it composes
    // with --resume and travels to the shard-built controllers via the process
    // default.
    let incremental = args.has("--incremental") || bmp_core::solver::default_incremental();
    let previous_incremental = bmp_core::solver::set_default_incremental(incremental);
    let mut write_error: Option<CliError> = None;
    let outcome = {
        let mut sink = |checkpoint: &FleetCheckpoint| {
            if write_error.is_some() {
                return;
            }
            if let Some(path) = checkpoint_path {
                if let Err(e) = files::write_fleet_checkpoint(path, checkpoint) {
                    write_error = Some(e);
                }
            }
        };
        let options = FleetOptions {
            resume,
            halt_after,
            checkpoint_every: if checkpoint_path.is_some() {
                checkpoint_every
            } else {
                0
            },
            on_checkpoint: checkpoint_path
                .is_some()
                .then_some(&mut sink as &mut dyn FnMut(&FleetCheckpoint)),
        };
        run_fleet_with(&config, options)
    };
    bmp_core::solver::set_default_speculation(previous_speculation);
    bmp_core::solver::set_default_incremental(previous_incremental);
    if let Some(e) = write_error {
        return Err(e);
    }
    match outcome {
        FleetRun::Halted(checkpoint) => {
            let path = checkpoint_path.expect("--halt-after requires --checkpoint");
            files::write_fleet_checkpoint(path, &checkpoint)?;
            writeln!(
                out,
                "fleet halted before wave {} with {} session(s) pending; checkpoint \
                 written to {path} (continue with --resume {path})",
                checkpoint.next_wave,
                checkpoint.pending.len()
            )?;
        }
        FleetRun::Completed(report) => {
            render_summary(&report, out)?;
            if let Some(path) = args.get("--report") {
                std::fs::write(path, report.to_json()).map_err(|e| {
                    CliError::Io(format!("cannot write fleet report {path:?}: {e}"))
                })?;
                writeln!(out, "fleet report written to {path}")?;
            }
            if let Some(path) = args.get("--csv") {
                std::fs::write(path, report.to_csv())
                    .map_err(|e| CliError::Io(format!("cannot write fleet CSV {path:?}: {e}")))?;
                writeln!(out, "per-session CSV written to {path}")?;
            }
        }
    }
    Ok(())
}

/// Renders the human-readable fleet summary.
fn render_summary<W: Write>(report: &FleetReport, out: &mut W) -> Result<(), CliError> {
    let metrics = &report.metrics;
    writeln!(
        out,
        "admission : {} run, {} rejected, {} quarantined",
        metrics.sessions_run, metrics.sessions_rejected, metrics.sessions_quarantined
    )?;
    for decision in &report.admissions {
        if let AdmissionVerdict::Rejected { reason } = decision.verdict {
            writeln!(
                out,
                "  session {:>4} rejected ({reason:?}, load {:.2})",
                decision.session, decision.load
            )?;
        }
    }
    if !report.quarantined.is_empty() {
        writeln!(
            out,
            "quarantine: {} permanent, {} retried re-admission(s)",
            metrics.sessions_quarantined, metrics.session_retries
        )?;
        for record in &report.quarantined {
            let reason = match &record.reason {
                QuarantineReason::Panic { tag } => format!("panicked: {tag}"),
                QuarantineReason::Stuck {
                    rounds_without_progress,
                } => format!("stuck ({rounds_without_progress} rounds without progress)"),
                QuarantineReason::Budget { rounds } => {
                    format!("over round budget ({rounds} rounds)")
                }
            };
            let disposition = match record.disposition {
                Disposition::Retried { wave } => format!("retried in wave {wave}"),
                Disposition::Permanent => "permanently quarantined".to_string(),
            };
            writeln!(
                out,
                "  session {:>4} attempt {} (wave {}, round {}): {reason} — {disposition}",
                record.session, record.attempt, record.wave, record.round
            )?;
        }
    }
    writeln!(
        out,
        "goodput   : mean {:.1}% of nominal; histogram {:?}",
        100.0 * metrics.mean_goodput_vs_nominal,
        metrics.goodput_histogram
    )?;
    match (
        metrics.recovery_p50,
        metrics.recovery_p90,
        metrics.recovery_p99,
    ) {
        (Some(p50), Some(p90), Some(p99)) => writeln!(
            out,
            "recovery  : p50 {p50:.2} / p90 {p90:.2} / p99 {p99:.2} (simulated time)"
        )?,
        _ => writeln!(out, "recovery  : no repaired session recovered")?,
    }
    writeln!(
        out,
        "repairs   : {} swaps, {} repairs, {} attempts, {} degraded session(s)",
        metrics.total_swaps,
        metrics.total_repairs,
        metrics.total_attempts,
        metrics.degraded_sessions
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;

    fn run_args(args: Vec<String>) -> Result<String, CliError> {
        let list = ArgList::parse(&args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn a_small_fleet_serves_and_summarizes() {
        let output = run_args(vec![
            "--sessions".into(),
            "3".into(),
            "--shards".into(),
            "2".into(),
            "--chunks".into(),
            "24".into(),
        ])
        .unwrap();
        assert!(output.contains("serving 3 session(s) across 2 shard(s)"));
        assert!(output.contains("admission : 3 run, 0 rejected, 0 quarantined"));
        assert!(output.contains("goodput"));
    }

    #[test]
    fn reports_are_written_and_shard_agnostic() {
        let dir = std::env::temp_dir().join(format!("bmp-serve-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
        let common = |shards: &str, report: String| {
            run_args(vec![
                "--sessions".into(),
                "4".into(),
                "--shards".into(),
                shards.into(),
                "--chunks".into(),
                "24".into(),
                "--report".into(),
                report,
                "--csv".into(),
                path("fleet.csv"),
            ])
            .unwrap()
        };
        common("1", path("one.json"));
        common("3", path("three.json"));
        let one = std::fs::read(dir.join("one.json")).unwrap();
        let three = std::fs::read(dir.join("three.json")).unwrap();
        assert_eq!(one, three, "fleet report must not depend on shard count");
        let csv = std::fs::read_to_string(dir.join("fleet.csv")).unwrap();
        assert_eq!(csv.lines().count(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_reuse_does_not_change_the_fleet_report() {
        let dir = std::env::temp_dir().join(format!("bmp-serve-incr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
        let common = |incremental: bool, report: String| {
            let mut args = vec![
                "--sessions".to_string(),
                "4".into(),
                "--chunks".into(),
                "24".into(),
                "--report".into(),
                report,
            ];
            if incremental {
                args.push("--incremental".into());
            }
            run_args(args).unwrap()
        };
        common(false, path("cold.json"));
        common(true, path("warm.json"));
        let cold = std::fs::read(dir.join("cold.json")).unwrap();
        let warm = std::fs::read(dir.join("warm.json")).unwrap();
        assert_eq!(cold, warm, "fleet report must not depend on warm reuse");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn halted_fleets_resume_to_the_uninterrupted_report() {
        let dir = temp_path("serve-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
        let base = |extra: Vec<String>| {
            let mut args = vec![
                "--sessions".to_string(),
                "4".into(),
                "--chunks".into(),
                "24".into(),
            ];
            args.extend(extra);
            run_args(args).unwrap()
        };
        base(vec!["--report".into(), path("full.json")]);
        let halted = base(vec![
            "--checkpoint".into(),
            path("fleet.ckpt"),
            "--halt-after".into(),
            "10".into(),
        ]);
        assert!(halted.contains("fleet halted"), "{halted}");
        let resumed = run_args(vec![
            "--resume".into(),
            path("fleet.ckpt"),
            "--shards".into(),
            "3".into(),
            "--report".into(),
            path("resumed.json"),
        ])
        .unwrap();
        assert!(resumed.contains("fleet report written"), "{resumed}");
        let full = std::fs::read(dir.join("full.json")).unwrap();
        let back = std::fs::read(dir.join("resumed.json")).unwrap();
        assert_eq!(
            full, back,
            "a halted-and-resumed fleet must reproduce the uninterrupted report"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_panics_are_quarantined_and_summarized() {
        let output = run_args(vec![
            "--sessions".into(),
            "3".into(),
            "--chunks".into(),
            "24".into(),
            "--panic-session".into(),
            "1:3".into(),
            "--retries".into(),
            "0".into(),
        ])
        .unwrap();
        assert!(
            output.contains("admission : 2 run, 0 rejected, 1 quarantined"),
            "{output}"
        );
        assert!(output.contains("permanently quarantined"), "{output}");
        assert!(output.contains("injected session panic"), "{output}");
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        for args in [
            vec!["--sessions".to_string(), "0".into()],
            vec!["--shards".to_string(), "0".into()],
            vec!["--floor".to_string(), "1.5".into()],
            vec!["--churn".to_string(), "4:3".into()],
            vec!["--churn".to_string(), "4:-1:2".into()],
            vec!["--repair-algorithm".to_string(), "frobnicate".into()],
            vec!["--panic-session".to_string(), "1".into()],
            vec!["--panic-session".to_string(), "1:2:often".into()],
            vec!["--wedge-session".to_string(), "1:2:once".into()],
            vec!["--halt-after".to_string(), "5".into()],
            vec![
                "--resume".to_string(),
                "nope.ckpt".into(),
                "--sessions".into(),
                "4".into(),
            ],
        ] {
            assert!(
                matches!(run_args(args.clone()), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
    }
}
