//! `simulate` — run the chunk-level streaming simulator on a broadcast scheme.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use crate::files;
use bmp_sim::{ChunkPolicy, Overlay, SimConfig, Simulator, SourceMode};
use std::io::Write;

pub(crate) fn parse_policy(raw: &str) -> Result<ChunkPolicy, CliError> {
    match raw.to_ascii_lowercase().as_str() {
        "random" | "random-useful" => Ok(ChunkPolicy::RandomUseful),
        "sequential" | "in-order" => Ok(ChunkPolicy::Sequential),
        "latest" | "latest-useful" => Ok(ChunkPolicy::LatestUseful),
        "rarest" | "rarest-first" => Ok(ChunkPolicy::RarestFirst),
        other => Err(CliError::Usage(format!(
            "unknown chunk policy {other:?} (expected random, sequential, latest or rarest)"
        ))),
    }
}

/// Flags accepted by `simulate`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "simulate",
    flags: &[
        "--scheme", "--chunks", "--policy", "--seed", "--jitter", "--live", "--trace",
    ],
};

/// Runs the `simulate` subcommand.
///
/// Flags: `--scheme FILE` (required), `--chunks N` (default 300), `--policy NAME` (default
/// random), `--seed S` (default the engine default), `--jitter J` (default 0), `--live RATE`
/// (live-stream source at the given production rate instead of a file broadcast), `--trace`
/// (print the worst-receiver progress every 50 rounds).
///
/// # Errors
///
/// Returns a [`CliError`] when the scheme cannot be read or a flag is malformed.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let scheme = files::read_scheme(args.require("--scheme")?)?;
    let nominal = scheme.throughput();
    let overlay = Overlay::from_scheme(&scheme);

    let mut config = SimConfig {
        num_chunks: args.get_parsed("--chunks", 300usize)?,
        jitter: args.get_parsed("--jitter", 0.0)?,
        policy: parse_policy(args.get("--policy").unwrap_or("random"))?,
        ..SimConfig::default()
    };
    config.seed = args.get_parsed("--seed", config.seed)?;
    if let Some(rate) = args.get("--live") {
        let rate: f64 = rate
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid live rate {rate:?}")))?;
        config.source_mode = SourceMode::Live { rate };
    }
    let config = config.scaled_to(nominal, 2.0);

    let simulator = Simulator::new(overlay, config);
    writeln!(
        out,
        "simulating {} chunks over {} edges (policy {}, nominal throughput {:.4})",
        config.num_chunks,
        simulator.overlay().edges().len(),
        config.policy.label(),
        nominal
    )?;

    let report = if args.has("--trace") {
        let (report, trace) = simulator.run_traced(50);
        for (time, progress) in trace.worst_progress_series() {
            writeln!(
                out,
                "  t = {time:>8.2}  worst progress {:.1}%",
                progress * 100.0
            )?;
        }
        report
    } else {
        simulator.run()
    };

    writeln!(out, "rounds simulated : {}", report.rounds_run)?;
    writeln!(out, "all completed    : {}", report.all_completed())?;
    match report.min_achieved_rate() {
        Some(rate) => {
            writeln!(
                out,
                "worst delivery rate : {rate:.4} ({:.1}% of nominal)",
                100.0 * rate / nominal
            )?;
        }
        None => {
            writeln!(
                out,
                "worst delivery rate : n/a (slowest receiver got {:.1}% of the message)",
                100.0 * report.worst_progress()
            )?;
        }
    }
    if let Some(makespan) = report.makespan() {
        writeln!(out, "makespan         : {makespan:.2}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_core::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn scheme_path() -> String {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let path = temp_path("sim-scheme.json").to_str().unwrap().to_string();
        files::write_scheme(&path, &solution.scheme).unwrap();
        path
    }

    fn run_args(args: Vec<String>) -> Result<String, CliError> {
        let list = ArgList::parse(&args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn simulates_a_file_broadcast() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "150".into(),
            "--seed".into(),
            "9".into(),
        ])
        .unwrap();
        assert!(output.contains("all completed    : true"));
        assert!(output.contains("worst delivery rate"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn simulates_with_trace_and_policy() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "100".into(),
            "--policy".into(),
            "rarest".into(),
            "--trace".into(),
        ])
        .unwrap();
        assert!(output.contains("policy rarest-first"));
        assert!(output.contains("worst progress"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn live_mode_and_bad_flags() {
        let path = scheme_path();
        let ok = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "100".into(),
            "--live".into(),
            "3.5".into(),
        ]);
        assert!(ok.is_ok());
        assert!(matches!(
            run_args(vec![
                "--scheme".into(),
                path.clone(),
                "--live".into(),
                "fast".into()
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_args(vec![
                "--scheme".into(),
                path.clone(),
                "--policy".into(),
                "bogus".into()
            ]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_policy_names_parse() {
        for name in [
            "random",
            "random-useful",
            "sequential",
            "in-order",
            "latest",
            "rarest-first",
        ] {
            assert!(parse_policy(name).is_ok(), "{name}");
        }
        assert!(parse_policy("fifo").is_err());
    }
}
