//! `simulate` — run the chunk-level streaming simulator on a broadcast scheme.
//!
//! Two modes share the flag surface:
//!
//! * **frozen overlay** (no `--churn`): the classic one-shot validation run, with
//!   optional progress tracing;
//! * **closed loop** (`--churn SPEC`): the session engine applies the churn trace and an
//!   adaptation policy — the static baseline by default, the incremental
//!   re-solve-and-hot-swap controller with `--repair` — and reports *delivered* goodput
//!   against the nominal throughput, plus the controller's decision log and telemetry.
//!
//! The command can also solve and simulate in one shot: `--instance FILE` (with
//! `--algorithm NAME` and `--threads N`) runs a registry solver first and streams over
//! the overlay it produces.
//!
//! Closed-loop runs are crash-safe: `--checkpoint FILE` periodically serializes the
//! complete run state (`--checkpoint-every N` rounds), `--halt-after N` stops
//! mid-broadcast as a crash stand-in, and `--resume FILE` continues from a checkpoint —
//! producing a final report bit-identical to the uninterrupted run under the same seed
//! and trace (`--report FILE` writes it as JSON for byte-for-byte comparison).

use crate::args::{ArgList, FlagSpec};
use crate::cmd_solve::resolve_algorithm;
use crate::error::CliError;
use crate::files;
use bmp_core::scheme::BroadcastScheme;
use bmp_core::solver::EvalCtx;
use bmp_sim::{
    AdaptiveRun, ChunkPolicy, ChurnAction, ChurnEvent, ChurnSchedule, Overlay, RepairController,
    SessionOutcome, SimConfig, Simulator, SourceMode, StaticPolicy,
};
use std::io::Write;

pub(crate) fn parse_policy(raw: &str) -> Result<ChunkPolicy, CliError> {
    match raw.to_ascii_lowercase().as_str() {
        "random" | "random-useful" => Ok(ChunkPolicy::RandomUseful),
        "sequential" | "in-order" => Ok(ChunkPolicy::Sequential),
        "latest" | "latest-useful" => Ok(ChunkPolicy::LatestUseful),
        "rarest" | "rarest-first" => Ok(ChunkPolicy::RarestFirst),
        other => Err(CliError::Usage(format!(
            "unknown chunk policy {other:?} (expected random, sequential, latest or rarest)"
        ))),
    }
}

/// Flags accepted by `simulate`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "simulate",
    flags: &[
        "--scheme",
        "--instance",
        "--algorithm",
        "--threads",
        "--speculate",
        "--incremental",
        "--chunks",
        "--policy",
        "--seed",
        "--jitter",
        "--live",
        "--trace",
        "--churn",
        "--repair",
        "--repair-algorithm",
        "--floor",
        "--checkpoint",
        "--checkpoint-every",
        "--halt-after",
        "--resume",
        "--report",
    ],
};

/// Parses a churn specification: `TIME:NODES` events separated by `;`, nodes separated
/// by `,`. A node is an index (departure), `+index` (rejoin), or the word `busiest`
/// (the scheme's busiest relay departs).
fn parse_churn(raw: &str, scheme: &BroadcastScheme) -> Result<ChurnSchedule, CliError> {
    let num_nodes = scheme.instance().num_nodes();
    let mut events = Vec::new();
    for part in raw.split(';').filter(|part| !part.trim().is_empty()) {
        let (time_raw, nodes_raw) = part.split_once(':').ok_or_else(|| {
            CliError::Usage(format!(
                "churn event {part:?} must be TIME:NODE[,NODE...] (e.g. \"5:3,7;12:+3\")"
            ))
        })?;
        let time: f64 = time_raw.trim().parse().map_err(|_| {
            CliError::Usage(format!("invalid churn event time {:?}", time_raw.trim()))
        })?;
        if !time.is_finite() || time < 0.0 {
            return Err(CliError::Usage(format!(
                "churn event time {time} must be non-negative and finite"
            )));
        }
        for token in nodes_raw.split(',') {
            let token = token.trim();
            let (action, name) = match token.strip_prefix('+') {
                Some(rest) => (ChurnAction::Rejoin, rest),
                None => (ChurnAction::Depart, token),
            };
            let node = if name.eq_ignore_ascii_case("busiest") {
                scheme.busiest_receiver().unwrap_or(1)
            } else {
                name.parse().map_err(|_| {
                    CliError::Usage(format!(
                        "invalid churn node {token:?} (expected an index, +index or \"busiest\")"
                    ))
                })?
            };
            if node == 0 {
                return Err(CliError::Usage("the source (node 0) cannot churn".into()));
            }
            if node >= num_nodes {
                return Err(CliError::Usage(format!(
                    "churn node {node} out of range (the platform has {num_nodes} nodes)"
                )));
            }
            events.push(ChurnEvent { time, node, action });
        }
    }
    if events.is_empty() {
        return Err(CliError::Usage(
            "empty churn specification (expected TIME:NODE[,NODE...][;...])".into(),
        ));
    }
    Ok(ChurnSchedule::new(events))
}

/// Loads the scheme: from `--scheme FILE`, or by solving `--instance FILE` with the
/// requested `--algorithm` (one-shot solve + simulate).
fn load_scheme<W: Write>(
    args: &ArgList,
    threads: usize,
    speculate: usize,
    incremental: bool,
    out: &mut W,
) -> Result<BroadcastScheme, CliError> {
    match (args.get("--scheme"), args.get("--instance")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "pass either --scheme FILE or --instance FILE, not both".into(),
        )),
        (Some(path), None) => {
            if args.has("--algorithm") {
                return Err(CliError::Usage(
                    "--algorithm only applies when solving from --instance".into(),
                ));
            }
            files::read_scheme(path)
        }
        (None, Some(path)) => {
            let instance = files::read_instance(path)?;
            let solver = resolve_algorithm(args.get("--algorithm").unwrap_or("acyclic-guarded"))?;
            let mut ctx = EvalCtx::new();
            ctx.set_parallelism(threads);
            ctx.set_speculation(speculate);
            ctx.set_incremental(incremental);
            let solution = solver.solve(&instance, &mut ctx)?;
            writeln!(
                out,
                "solved {} receivers with {} (throughput {:.4}, {} flow solves)",
                instance.num_receivers(),
                solution.algorithm,
                solution.throughput,
                solution.telemetry.flow_solves
            )?;
            Ok(solution.scheme)
        }
        (None, None) => Err(CliError::Usage(
            "missing required flag --scheme (or --instance to solve first)".into(),
        )),
    }
}

/// The closed-loop policy, held concretely so the driver can both step the run through
/// the `AdaptationPolicy` trait and borrow the controller for checkpointing.
enum PolicyKind {
    Static(StaticPolicy),
    Repair(Box<RepairController>),
}

impl PolicyKind {
    fn label(&self) -> &'static str {
        match self {
            PolicyKind::Static(_) => "static",
            PolicyKind::Repair(_) => "repair",
        }
    }

    fn step(&mut self, run: &mut AdaptiveRun) -> bool {
        match self {
            PolicyKind::Static(policy) => run.step(policy),
            PolicyKind::Repair(controller) => run.step(&mut **controller),
        }
    }

    fn controller(&self) -> Option<&RepairController> {
        match self {
            PolicyKind::Static(_) => None,
            PolicyKind::Repair(controller) => Some(controller),
        }
    }

    fn outcome(&self, run: &AdaptiveRun) -> SessionOutcome {
        match self {
            PolicyKind::Static(policy) => run.outcome(policy),
            PolicyKind::Repair(controller) => run.outcome(&**controller),
        }
    }
}

/// Crash-safety options of a closed-loop run.
struct Checkpointing<'a> {
    /// Where to write checkpoints (`--checkpoint FILE`); `None` disables them.
    path: Option<&'a str>,
    /// Rounds between checkpoint writes (`--checkpoint-every N`).
    every: usize,
    /// Stop (without finishing) once this many rounds have run (`--halt-after N`) — the
    /// crash stand-in of the recovery smoke test.
    halt_after: Option<usize>,
}

/// Parses and validates the crash-safety flags. `closed_loop` says whether the run has
/// a churn trace (or is a resume): the flags are meaningless for frozen-overlay runs.
fn parse_checkpointing<'a>(
    args: &'a ArgList,
    closed_loop: bool,
) -> Result<Checkpointing<'a>, CliError> {
    if !closed_loop {
        for flag in [
            "--checkpoint",
            "--checkpoint-every",
            "--halt-after",
            "--report",
        ] {
            if args.has(flag) {
                return Err(CliError::Usage(format!(
                    "{flag} only applies to closed-loop runs (--churn or --resume)"
                )));
            }
        }
    }
    if args.has("--checkpoint-every") && !args.has("--checkpoint") {
        return Err(CliError::Usage(
            "--checkpoint-every requires --checkpoint FILE (where to write)".into(),
        ));
    }
    let every: usize = args.get_parsed("--checkpoint-every", 50usize)?;
    if every == 0 {
        return Err(CliError::Usage(
            "--checkpoint-every must be at least 1 round".into(),
        ));
    }
    let halt_after = args
        .get("--halt-after")
        .map(|raw| {
            raw.parse::<usize>().map_err(|_| {
                CliError::Usage(format!("flag --halt-after has an invalid value {raw:?}"))
            })
        })
        .transpose()?;
    Ok(Checkpointing {
        path: args.get("--checkpoint"),
        every,
        halt_after,
    })
}

/// Steps the closed loop to completion — or to the `--halt-after` crash point — writing
/// checkpoints on the configured cadence (and always at the halt point, so a crash
/// never loses more than the final partial round). Returns whether the run finished.
fn drive(
    run: &mut AdaptiveRun,
    kind: &mut PolicyKind,
    checkpointing: &Checkpointing<'_>,
) -> Result<bool, CliError> {
    let mut since_checkpoint = 0usize;
    loop {
        let finished = kind.step(run);
        since_checkpoint += 1;
        let halted = !finished
            && checkpointing
                .halt_after
                .is_some_and(|halt| run.session().rounds_run() >= halt);
        if let Some(path) = checkpointing.path {
            if finished || halted || since_checkpoint >= checkpointing.every {
                files::write_checkpoint(path, &run.checkpoint(kind.controller()))?;
                since_checkpoint = 0;
            }
        }
        if finished || halted {
            return Ok(finished);
        }
    }
}

/// Renders the end of a closed-loop run: the outcome report (or the halt notice),
/// controller telemetry, and the `--report FILE` JSON artefact.
fn finish_closed_loop<W: Write>(
    run: &AdaptiveRun,
    kind: &PolicyKind,
    finished: bool,
    checkpointing: &Checkpointing<'_>,
    report_path: Option<&str>,
    out: &mut W,
) -> Result<(), CliError> {
    if !finished {
        match checkpointing.path {
            Some(path) => writeln!(
                out,
                "halted after {} rounds (checkpoint written to {path})",
                run.session().rounds_run()
            )?,
            None => writeln!(out, "halted after {} rounds", run.session().rounds_run())?,
        }
        return Ok(());
    }
    let outcome = kind.outcome(run);
    report_outcome(&outcome, out)?;
    if let Some(controller) = kind.controller() {
        let ctx = controller.ctx();
        writeln!(
            out,
            "controller telemetry : {} flow solves, {} bisection iters, {} rescans skipped ({} edges patched), {} flows warm-started",
            ctx.flow_solves(),
            ctx.bisection_iters(),
            ctx.rescans_skipped(),
            ctx.edges_patched(),
            ctx.flows_warm_started()
        )?;
        for decision in controller.decisions() {
            let solver = decision.solver.as_deref().unwrap_or("-");
            writeln!(
                out,
                "  decision at t = {:.2}: departed {:?}, victim tolerance {:.3}, residual {:.4} ({:.1}% of nominal), {} attempt(s), solver {solver}{}{}",
                decision.time,
                decision.departed,
                decision.victim_tolerance,
                decision.residual,
                100.0 * decision.residual / outcome.nominal,
                decision.attempts,
                if decision.probe_timed_out { ", probe timed out" } else { "" },
                if decision.degraded { ", DEGRADED" } else { "" },
            )?;
        }
    }
    if let Some(path) = report_path {
        files::write_text(path, &serde_json::to_string(&outcome.report)?)?;
        writeln!(out, "report written to {path}")?;
    }
    Ok(())
}

/// Runs `simulate --resume FILE`: rehydrates a checkpointed closed-loop run (the
/// checkpoint fixes the overlay, churn trace, configuration and policy, so the usual
/// input flags conflict) and steps it to completion — or to the next `--halt-after`.
fn run_resumed<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    for flag in [
        "--scheme",
        "--instance",
        "--algorithm",
        "--threads",
        "--speculate",
        "--incremental",
        "--chunks",
        "--policy",
        "--seed",
        "--jitter",
        "--live",
        "--trace",
        "--churn",
        "--repair",
        "--repair-algorithm",
        "--floor",
    ] {
        if args.has(flag) {
            return Err(CliError::Usage(format!(
                "{flag} conflicts with --resume (the checkpoint already fixes the run)"
            )));
        }
    }
    let checkpointing = parse_checkpointing(args, true)?;
    let path = args.get("--resume").expect("caller checked");
    let checkpoint = files::read_checkpoint(path)?;
    let (mut run, controller) = AdaptiveRun::resume(checkpoint);
    let mut kind = match controller {
        Some(controller) => PolicyKind::Repair(Box::new(controller)),
        None => PolicyKind::Static(StaticPolicy),
    };
    writeln!(
        out,
        "resumed closed-loop run at round {} (adaptation {})",
        run.session().rounds_run(),
        kind.label()
    )?;
    let finished = drive(&mut run, &mut kind, &checkpointing)?;
    finish_closed_loop(
        &run,
        &kind,
        finished,
        &checkpointing,
        args.get("--report"),
        out,
    )
}

/// Renders the closed-loop outcome: swap timeline, survivor completion, goodput ratio.
fn report_outcome<W: Write>(outcome: &SessionOutcome, out: &mut W) -> Result<(), CliError> {
    for swap in &outcome.swaps {
        let action = match swap.repaired_nominal {
            Some(repaired) if swap.swapped => {
                format!("hot-swapped (repaired nominal {repaired:.4})")
            }
            _ => "kept the overlay".to_string(),
        };
        let recovery = match swap.recovered_at {
            Some(at) => format!("recovered at t = {at:.2}"),
            None => "never recovered".to_string(),
        };
        writeln!(
            out,
            "  t = {:>7.2}  membership change: {action}, {recovery}",
            swap.time
        )?;
    }
    let completed = outcome
        .survivors
        .iter()
        .filter(|&&node| outcome.report.completion_time[node].is_some())
        .count();
    writeln!(out, "rounds simulated : {}", outcome.report.rounds_run)?;
    writeln!(
        out,
        "survivors completed : {completed}/{}",
        outcome.survivors.len()
    )?;
    writeln!(
        out,
        "delivered goodput : {:.4} ({:.1}% of nominal)",
        outcome.goodput(),
        100.0 * outcome.goodput_vs_nominal()
    )?;
    if let Some(recovery) = outcome.recovery_time() {
        writeln!(out, "post-churn recovery : {recovery:.2} time units")?;
    }
    if let Some(floor) = outcome.degraded_floor {
        writeln!(
            out,
            "DEGRADED : repair budget exhausted, kept the last good overlay (residual floor {floor:.4})"
        )?;
    }
    Ok(())
}

/// Runs the `simulate` subcommand.
///
/// Flags: `--scheme FILE` *or* `--instance FILE` (solve first; `--algorithm NAME`
/// selects the registry solver, `--threads N` its flow fan-out, `--speculate N` its
/// dichotomic speculation depth, `--incremental` warm residual reuse across its
/// dichotomic probes — bit-identical results either way), `--chunks N` (default
/// 300), `--policy NAME` (default random), `--seed S`, `--jitter J`, `--live RATE`,
/// `--trace` (worst-receiver progress every 50 rounds; frozen-overlay runs only),
/// `--churn SPEC` (scheduled departures/rejoins, e.g. `"5:busiest"` or `"5:3,7;12:+3"`),
/// `--repair` (adapt by incremental re-solve + hot-swap instead of the static baseline),
/// `--repair-algorithm NAME` (pin the named registry solver to the front of the repair
/// fallback chain; unset keeps the registry order), `--floor F` (repair when the
/// residual drops below `F ×` nominal, default 0.9).
///
/// Crash safety (closed-loop runs only): `--checkpoint FILE` writes the run state
/// every `--checkpoint-every N` rounds (default 50) and at the end, `--halt-after N`
/// stops mid-broadcast after N rounds (a crash stand-in), `--resume FILE` continues a
/// checkpointed run bit-identically, and `--report FILE` writes the final delivery
/// report as JSON for byte-for-byte comparison.
///
/// # Errors
///
/// Returns a [`CliError`] when the scheme/instance cannot be read or a flag is malformed.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    if args.get("--resume").is_some() {
        return run_resumed(args, out);
    }
    let threads: usize = args.get_parsed("--threads", 1)?;
    if args.has("--threads") && !(args.has("--repair") || args.get("--instance").is_some()) {
        return Err(CliError::Usage(
            "--threads only applies when solving (--instance) or repairing (--repair)".into(),
        ));
    }
    let speculate: usize =
        args.get_parsed("--speculate", bmp_core::solver::default_speculation())?;
    if args.has("--speculate") && !(args.has("--repair") || args.get("--instance").is_some()) {
        return Err(CliError::Usage(
            "--speculate only applies when solving (--instance) or repairing (--repair)".into(),
        ));
    }
    let incremental = args.has("--incremental") || bmp_core::solver::default_incremental();
    if args.has("--incremental") && !(args.has("--repair") || args.get("--instance").is_some()) {
        return Err(CliError::Usage(
            "--incremental only applies when solving (--instance) or repairing (--repair)".into(),
        ));
    }
    let scheme = load_scheme(args, threads, speculate, incremental, out)?;
    let nominal = scheme.throughput();
    let overlay = Overlay::from_scheme(&scheme);

    let mut config = SimConfig {
        num_chunks: args.get_parsed("--chunks", 300usize)?,
        jitter: args.get_parsed("--jitter", 0.0)?,
        policy: parse_policy(args.get("--policy").unwrap_or("random"))?,
        ..SimConfig::default()
    };
    config.seed = args.get_parsed("--seed", config.seed)?;
    if let Some(rate) = args.get("--live") {
        let rate: f64 = rate
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid live rate {rate:?}")))?;
        config.source_mode = SourceMode::Live { rate };
    }
    let config = config.scaled_to(nominal, 2.0);

    let churn = args
        .get("--churn")
        .map(|raw| parse_churn(raw, &scheme))
        .transpose()?;
    if args.has("--repair") && churn.is_none() {
        return Err(CliError::Usage(
            "--repair requires a --churn specification to react to".into(),
        ));
    }
    if args.has("--floor") && !args.has("--repair") {
        return Err(CliError::Usage(
            "--floor only applies with --repair (it is the repair controller's threshold)".into(),
        ));
    }
    let repair_algorithm = args.get("--repair-algorithm");
    if repair_algorithm.is_some() && !args.has("--repair") {
        return Err(CliError::Usage(
            "--repair-algorithm only applies with --repair (it pins the repair chain's first solver)"
                .into(),
        ));
    }
    if let Some(name) = repair_algorithm {
        if bmp_core::solver::find(name).is_none() {
            let names: Vec<&str> = bmp_core::solver::registry()
                .iter()
                .map(|solver| solver.name())
                .collect();
            return Err(CliError::Usage(format!(
                "unknown repair algorithm {name:?} (expected one of {})",
                names.join(", ")
            )));
        }
    }
    let floor: f64 = args.get_parsed("--floor", 0.9)?;
    if !(0.0..=1.0).contains(&floor) || floor == 0.0 {
        return Err(CliError::Usage(format!(
            "--floor {floor} must lie in (0, 1]"
        )));
    }
    if args.has("--trace") && churn.is_some() {
        return Err(CliError::Usage(
            "--trace is only available without --churn (the closed loop reports its own timeline)"
                .into(),
        ));
    }

    let checkpointing = parse_checkpointing(args, churn.is_some())?;

    if let Some(churn) = churn {
        // Closed-loop run: the session engine plus an adaptation policy, stepped
        // through the crash-safe driver so checkpoints can be cut between rounds.
        let mut kind = if args.has("--repair") {
            let mut controller =
                RepairController::new(scheme.instance().clone(), scheme.clone(), nominal, floor);
            controller.set_parallelism(threads);
            controller.set_speculation(speculate);
            controller.set_incremental(incremental);
            controller.set_repair_algorithm(repair_algorithm.map(str::to_string));
            PolicyKind::Repair(Box::new(controller))
        } else {
            PolicyKind::Static(StaticPolicy)
        };
        writeln!(
            out,
            "simulating {} chunks over {} edges (policy {}, nominal throughput {:.4}, adaptation {})",
            config.num_chunks,
            overlay.edges().len(),
            config.policy.label(),
            nominal,
            kind.label()
        )?;
        let mut run = AdaptiveRun::new(overlay, config, churn, nominal);
        let finished = drive(&mut run, &mut kind, &checkpointing)?;
        return finish_closed_loop(
            &run,
            &kind,
            finished,
            &checkpointing,
            args.get("--report"),
            out,
        );
    }

    let simulator = Simulator::new(overlay, config);
    writeln!(
        out,
        "simulating {} chunks over {} edges (policy {}, nominal throughput {:.4})",
        config.num_chunks,
        simulator.overlay().edges().len(),
        config.policy.label(),
        nominal
    )?;

    let report = if args.has("--trace") {
        let (report, trace) = simulator.run_traced(50);
        for (time, progress) in trace.worst_progress_series() {
            writeln!(
                out,
                "  t = {time:>8.2}  worst progress {:.1}%",
                progress * 100.0
            )?;
        }
        report
    } else {
        simulator.run()
    };

    writeln!(out, "rounds simulated : {}", report.rounds_run)?;
    writeln!(out, "all completed    : {}", report.all_completed())?;
    match report.min_achieved_rate() {
        Some(rate) => {
            writeln!(
                out,
                "worst delivery rate : {rate:.4} ({:.1}% of nominal)",
                100.0 * rate / nominal
            )?;
        }
        None => {
            writeln!(
                out,
                "worst delivery rate : n/a (slowest receiver got {:.1}% of the message)",
                100.0 * report.worst_progress()
            )?;
        }
    }
    if let Some(makespan) = report.makespan() {
        writeln!(out, "makespan         : {makespan:.2}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_core::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn scheme_path() -> String {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let path = temp_path("sim-scheme.json").to_str().unwrap().to_string();
        files::write_scheme(&path, &solution.scheme).unwrap();
        path
    }

    fn instance_path() -> String {
        let path = temp_path("sim-instance.json").to_str().unwrap().to_string();
        files::write_instance(&path, &figure1()).unwrap();
        path
    }

    fn run_args(args: Vec<String>) -> Result<String, CliError> {
        let list = ArgList::parse(&args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn simulates_a_file_broadcast() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "150".into(),
            "--seed".into(),
            "9".into(),
        ])
        .unwrap();
        assert!(output.contains("all completed    : true"));
        assert!(output.contains("worst delivery rate"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn simulates_with_trace_and_policy() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "100".into(),
            "--policy".into(),
            "rarest".into(),
            "--trace".into(),
        ])
        .unwrap();
        assert!(output.contains("policy rarest-first"));
        assert!(output.contains("worst progress"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn live_mode_and_bad_flags() {
        let path = scheme_path();
        let ok = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "100".into(),
            "--live".into(),
            "3.5".into(),
        ]);
        assert!(ok.is_ok());
        assert!(matches!(
            run_args(vec![
                "--scheme".into(),
                path.clone(),
                "--live".into(),
                "fast".into()
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_args(vec![
                "--scheme".into(),
                path.clone(),
                "--policy".into(),
                "bogus".into()
            ]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn churned_static_run_reports_goodput() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "150".into(),
            "--churn".into(),
            "5:busiest".into(),
        ])
        .unwrap();
        assert!(output.contains("adaptation static"));
        assert!(output.contains("membership change: kept the overlay"));
        assert!(output.contains("delivered goodput"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn churned_repair_run_swaps_and_beats_static() {
        let path = scheme_path();
        let common = |repair: bool| {
            let mut args = vec![
                "--scheme".to_string(),
                path.clone(),
                "--chunks".into(),
                "150".into(),
                "--churn".into(),
                "5:3".into(),
            ];
            if repair {
                args.push("--repair".into());
            }
            run_args(args).unwrap()
        };
        let static_out = common(false);
        let repair_out = common(true);
        assert!(repair_out.contains("adaptation repair"));
        assert!(repair_out.contains("hot-swapped"));
        assert!(repair_out.contains("controller telemetry"));
        assert!(repair_out.contains("decision at t ="));
        let goodput = |report: &str| -> f64 {
            report
                .lines()
                .find(|line| line.starts_with("delivered goodput"))
                .and_then(|line| line.split(':').nth(1))
                .and_then(|rest| rest.trim().split(' ').next())
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            goodput(&repair_out) > goodput(&static_out),
            "repair {repair_out} vs static {static_out}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn incremental_repair_run_is_identical_and_warm_starts() {
        let path = scheme_path();
        let common = |incremental: bool| {
            let mut args = vec![
                "--scheme".to_string(),
                path.clone(),
                "--chunks".into(),
                "150".into(),
                "--churn".into(),
                "5:3".into(),
                "--repair".into(),
            ];
            if incremental {
                args.push("--incremental".into());
            }
            run_args(args).unwrap()
        };
        let cold = common(false);
        let warm = common(true);
        // Warm residual reuse may only change the telemetry counters line — every
        // decision, swap, goodput and recovery line must match verbatim.
        let stable = |report: &str| {
            report
                .lines()
                .filter(|line| !line.contains("telemetry"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(stable(&cold), stable(&warm), "--incremental");
        // And the reuse is observable: the warm run reports warm-started flows.
        let warm_started = |report: &str| -> u64 {
            report
                .lines()
                .find(|line| line.starts_with("controller telemetry"))
                .and_then(|line| line.split(',').next_back())
                .and_then(|cell| cell.trim().split(' ').next())
                .unwrap()
                .parse()
                .unwrap()
        };
        // The flagless run stays cold only when the process default is cold (under
        // BMP_INCREMENTAL=1 both runs warm-start, which the diff above already
        // proves equivalent).
        if !bmp_core::solver::default_incremental() {
            assert_eq!(warm_started(&cold), 0, "{cold}");
        }
        assert!(warm_started(&warm) > 0, "{warm}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn repair_algorithm_flag_pins_the_chain_head() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".to_string(),
            path.clone(),
            "--chunks".into(),
            "150".into(),
            "--churn".into(),
            "5:3".into(),
            "--repair".into(),
            "--repair-algorithm".into(),
            "exhaustive".into(),
        ])
        .unwrap();
        assert!(output.contains("hot-swapped"));
        assert!(
            output.contains("solver exhaustive"),
            "the pinned solver should take the repair: {output}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn solves_and_simulates_in_one_shot() {
        let path = instance_path();
        let output = run_args(vec![
            "--instance".into(),
            path.clone(),
            "--algorithm".into(),
            "acyclic-guarded".into(),
            "--threads".into(),
            "2".into(),
            "--chunks".into(),
            "120".into(),
            "--churn".into(),
            "4:busiest".into(),
            "--repair".into(),
        ])
        .unwrap();
        assert!(output.contains("solved 5 receivers with acyclic-guarded"));
        assert!(output.contains("adaptation repair"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn churn_specs_parse_and_reject_malformed_input() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let scheme = &solution.scheme;
        let schedule = parse_churn("5:3,+4;1.5:busiest", scheme).unwrap();
        assert_eq!(schedule.events().len(), 3);
        assert_eq!(schedule.events()[0].time, 1.5);
        for bad in ["", "5", "x:3", "5:zero", "5:0", "5:99", "-1:3", "5:+nope"] {
            assert!(parse_churn(bad, scheme).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn conflicting_and_incomplete_flag_combinations_are_rejected() {
        let scheme = scheme_path();
        let instance = instance_path();
        for args in [
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--instance".into(),
                instance.clone(),
            ],
            vec!["--scheme".to_string(), scheme.clone(), "--repair".into()],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--algorithm".into(),
                "auto".into(),
            ],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--churn".into(),
                "5:3".into(),
                "--trace".into(),
            ],
            vec![
                "--instance".to_string(),
                instance.clone(),
                "--algorithm".into(),
                "frobnicate".into(),
            ],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--churn".into(),
                "5:3".into(),
                "--floor".into(),
                "2.0".into(),
            ],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--threads".into(),
                "4".into(),
            ],
            // --incremental needs a solve (--instance) or a repair loop to act on.
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--incremental".into(),
            ],
            // --repair-algorithm without --repair, and an unknown solver name.
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--churn".into(),
                "5:3".into(),
                "--repair-algorithm".into(),
                "auto".into(),
            ],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--churn".into(),
                "5:3".into(),
                "--repair".into(),
                "--repair-algorithm".into(),
                "frobnicate".into(),
            ],
        ] {
            assert!(
                matches!(run_args(args.clone()), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
        std::fs::remove_file(scheme).ok();
        std::fs::remove_file(instance).ok();
    }

    #[test]
    fn halted_run_resumes_to_a_bit_identical_report() {
        let path = scheme_path();
        let checkpoint = temp_path("sim-checkpoint.json")
            .to_str()
            .unwrap()
            .to_string();
        let report_full = temp_path("sim-report-full.json")
            .to_str()
            .unwrap()
            .to_string();
        let report_resumed = temp_path("sim-report-resumed.json")
            .to_str()
            .unwrap()
            .to_string();
        let base = |extra: Vec<String>| {
            let mut args = vec![
                "--scheme".to_string(),
                path.clone(),
                "--chunks".into(),
                "150".into(),
                "--churn".into(),
                "5:3;12:+3".into(),
                "--repair".into(),
            ];
            args.extend(extra);
            args
        };
        // Uninterrupted reference run through the same crash-safe driver.
        let full = run_args(base(vec![
            "--checkpoint".into(),
            checkpoint.clone(),
            "--report".into(),
            report_full.clone(),
        ]))
        .unwrap();
        assert!(full.contains("report written to"));
        // Interrupted run: checkpoint every 10 rounds, crash after 40.
        let halted = run_args(base(vec![
            "--checkpoint".into(),
            checkpoint.clone(),
            "--checkpoint-every".into(),
            "10".into(),
            "--halt-after".into(),
            "40".into(),
        ]))
        .unwrap();
        assert!(halted.contains("halted after 40 rounds"));
        // Resume from the crash point and finish.
        let resumed = run_args(vec![
            "--resume".into(),
            checkpoint.clone(),
            "--report".into(),
            report_resumed.clone(),
        ])
        .unwrap();
        assert!(resumed.contains("resumed closed-loop run at round 40 (adaptation repair)"));
        assert!(resumed.contains("hot-swapped"));
        let full_bytes = std::fs::read(&report_full).unwrap();
        let resumed_bytes = std::fs::read(&report_resumed).unwrap();
        assert!(!full_bytes.is_empty());
        assert_eq!(
            full_bytes, resumed_bytes,
            "resumed report must be byte-identical to the uninterrupted run"
        );
        for file in [&path, &checkpoint, &report_full, &report_resumed] {
            std::fs::remove_file(file).ok();
        }
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        let path = scheme_path();
        for args in [
            // --checkpoint-every without --checkpoint.
            vec![
                "--scheme".to_string(),
                path.clone(),
                "--churn".into(),
                "5:3".into(),
                "--checkpoint-every".into(),
                "10".into(),
            ],
            // Crash-safety flags on a frozen-overlay run.
            vec![
                "--scheme".to_string(),
                path.clone(),
                "--checkpoint".into(),
                "/tmp/never-written.json".into(),
            ],
            vec![
                "--scheme".to_string(),
                path.clone(),
                "--report".into(),
                "/tmp/never-written.json".into(),
            ],
            // Zero cadence.
            vec![
                "--scheme".to_string(),
                path.clone(),
                "--churn".into(),
                "5:3".into(),
                "--checkpoint".into(),
                "/tmp/never-written.json".into(),
                "--checkpoint-every".into(),
                "0".into(),
            ],
            // Input flags conflict with --resume.
            vec![
                "--resume".to_string(),
                "/tmp/whatever.json".into(),
                "--scheme".into(),
                path.clone(),
            ],
            vec![
                "--resume".to_string(),
                "/tmp/whatever.json".into(),
                "--repair".into(),
            ],
        ] {
            assert!(
                matches!(run_args(args.clone()), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
        // A missing checkpoint file is an I/O error, not a usage error.
        assert!(matches!(
            run_args(vec!["--resume".into(), "/nonexistent/bmp/cp.json".into()]),
            Err(CliError::Io(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_policy_names_parse() {
        for name in [
            "random",
            "random-useful",
            "sequential",
            "in-order",
            "latest",
            "rarest-first",
        ] {
            assert!(parse_policy(name).is_ok(), "{name}");
        }
        assert!(parse_policy("fifo").is_err());
    }
}
