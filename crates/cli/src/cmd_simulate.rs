//! `simulate` — run the chunk-level streaming simulator on a broadcast scheme.
//!
//! Two modes share the flag surface:
//!
//! * **frozen overlay** (no `--churn`): the classic one-shot validation run, with
//!   optional progress tracing;
//! * **closed loop** (`--churn SPEC`): the session engine applies the churn trace and an
//!   adaptation policy — the static baseline by default, the incremental
//!   re-solve-and-hot-swap controller with `--repair` — and reports *delivered* goodput
//!   against the nominal throughput, plus the controller's decision log and telemetry.
//!
//! The command can also solve and simulate in one shot: `--instance FILE` (with
//! `--algorithm NAME` and `--threads N`) runs a registry solver first and streams over
//! the overlay it produces.

use crate::args::{ArgList, FlagSpec};
use crate::cmd_solve::resolve_algorithm;
use crate::error::CliError;
use crate::files;
use bmp_core::scheme::BroadcastScheme;
use bmp_core::solver::EvalCtx;
use bmp_sim::{
    run_adaptive, AdaptationPolicy, ChunkPolicy, ChurnAction, ChurnEvent, ChurnSchedule, Overlay,
    RepairController, SessionOutcome, SimConfig, Simulator, SourceMode, StaticPolicy,
};
use std::io::Write;

pub(crate) fn parse_policy(raw: &str) -> Result<ChunkPolicy, CliError> {
    match raw.to_ascii_lowercase().as_str() {
        "random" | "random-useful" => Ok(ChunkPolicy::RandomUseful),
        "sequential" | "in-order" => Ok(ChunkPolicy::Sequential),
        "latest" | "latest-useful" => Ok(ChunkPolicy::LatestUseful),
        "rarest" | "rarest-first" => Ok(ChunkPolicy::RarestFirst),
        other => Err(CliError::Usage(format!(
            "unknown chunk policy {other:?} (expected random, sequential, latest or rarest)"
        ))),
    }
}

/// Flags accepted by `simulate`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "simulate",
    flags: &[
        "--scheme",
        "--instance",
        "--algorithm",
        "--threads",
        "--chunks",
        "--policy",
        "--seed",
        "--jitter",
        "--live",
        "--trace",
        "--churn",
        "--repair",
        "--floor",
    ],
};

/// Parses a churn specification: `TIME:NODES` events separated by `;`, nodes separated
/// by `,`. A node is an index (departure), `+index` (rejoin), or the word `busiest`
/// (the scheme's busiest relay departs).
fn parse_churn(raw: &str, scheme: &BroadcastScheme) -> Result<ChurnSchedule, CliError> {
    let num_nodes = scheme.instance().num_nodes();
    let mut events = Vec::new();
    for part in raw.split(';').filter(|part| !part.trim().is_empty()) {
        let (time_raw, nodes_raw) = part.split_once(':').ok_or_else(|| {
            CliError::Usage(format!(
                "churn event {part:?} must be TIME:NODE[,NODE...] (e.g. \"5:3,7;12:+3\")"
            ))
        })?;
        let time: f64 = time_raw.trim().parse().map_err(|_| {
            CliError::Usage(format!("invalid churn event time {:?}", time_raw.trim()))
        })?;
        if !time.is_finite() || time < 0.0 {
            return Err(CliError::Usage(format!(
                "churn event time {time} must be non-negative and finite"
            )));
        }
        for token in nodes_raw.split(',') {
            let token = token.trim();
            let (action, name) = match token.strip_prefix('+') {
                Some(rest) => (ChurnAction::Rejoin, rest),
                None => (ChurnAction::Depart, token),
            };
            let node = if name.eq_ignore_ascii_case("busiest") {
                scheme.busiest_receiver().unwrap_or(1)
            } else {
                name.parse().map_err(|_| {
                    CliError::Usage(format!(
                        "invalid churn node {token:?} (expected an index, +index or \"busiest\")"
                    ))
                })?
            };
            if node == 0 {
                return Err(CliError::Usage("the source (node 0) cannot churn".into()));
            }
            if node >= num_nodes {
                return Err(CliError::Usage(format!(
                    "churn node {node} out of range (the platform has {num_nodes} nodes)"
                )));
            }
            events.push(ChurnEvent { time, node, action });
        }
    }
    if events.is_empty() {
        return Err(CliError::Usage(
            "empty churn specification (expected TIME:NODE[,NODE...][;...])".into(),
        ));
    }
    Ok(ChurnSchedule::new(events))
}

/// Loads the scheme: from `--scheme FILE`, or by solving `--instance FILE` with the
/// requested `--algorithm` (one-shot solve + simulate).
fn load_scheme<W: Write>(
    args: &ArgList,
    threads: usize,
    out: &mut W,
) -> Result<BroadcastScheme, CliError> {
    match (args.get("--scheme"), args.get("--instance")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "pass either --scheme FILE or --instance FILE, not both".into(),
        )),
        (Some(path), None) => {
            if args.has("--algorithm") {
                return Err(CliError::Usage(
                    "--algorithm only applies when solving from --instance".into(),
                ));
            }
            files::read_scheme(path)
        }
        (None, Some(path)) => {
            let instance = files::read_instance(path)?;
            let solver = resolve_algorithm(args.get("--algorithm").unwrap_or("acyclic-guarded"))?;
            let mut ctx = EvalCtx::new();
            ctx.set_parallelism(threads);
            let solution = solver.solve(&instance, &mut ctx)?;
            writeln!(
                out,
                "solved {} receivers with {} (throughput {:.4}, {} flow solves)",
                instance.num_receivers(),
                solution.algorithm,
                solution.throughput,
                solution.telemetry.flow_solves
            )?;
            Ok(solution.scheme)
        }
        (None, None) => Err(CliError::Usage(
            "missing required flag --scheme (or --instance to solve first)".into(),
        )),
    }
}

/// Renders the closed-loop outcome: swap timeline, survivor completion, goodput ratio.
fn report_outcome<W: Write>(outcome: &SessionOutcome, out: &mut W) -> Result<(), CliError> {
    for swap in &outcome.swaps {
        let action = match swap.repaired_nominal {
            Some(repaired) if swap.swapped => {
                format!("hot-swapped (repaired nominal {repaired:.4})")
            }
            _ => "kept the overlay".to_string(),
        };
        let recovery = match swap.recovered_at {
            Some(at) => format!("recovered at t = {at:.2}"),
            None => "never recovered".to_string(),
        };
        writeln!(
            out,
            "  t = {:>7.2}  membership change: {action}, {recovery}",
            swap.time
        )?;
    }
    let completed = outcome
        .survivors
        .iter()
        .filter(|&&node| outcome.report.completion_time[node].is_some())
        .count();
    writeln!(out, "rounds simulated : {}", outcome.report.rounds_run)?;
    writeln!(
        out,
        "survivors completed : {completed}/{}",
        outcome.survivors.len()
    )?;
    writeln!(
        out,
        "delivered goodput : {:.4} ({:.1}% of nominal)",
        outcome.goodput(),
        100.0 * outcome.goodput_vs_nominal()
    )?;
    if let Some(recovery) = outcome.recovery_time() {
        writeln!(out, "post-churn recovery : {recovery:.2} time units")?;
    }
    Ok(())
}

/// Runs the `simulate` subcommand.
///
/// Flags: `--scheme FILE` *or* `--instance FILE` (solve first; `--algorithm NAME`
/// selects the registry solver, `--threads N` its flow fan-out), `--chunks N` (default
/// 300), `--policy NAME` (default random), `--seed S`, `--jitter J`, `--live RATE`,
/// `--trace` (worst-receiver progress every 50 rounds; frozen-overlay runs only),
/// `--churn SPEC` (scheduled departures/rejoins, e.g. `"5:busiest"` or `"5:3,7;12:+3"`),
/// `--repair` (adapt by incremental re-solve + hot-swap instead of the static baseline),
/// `--floor F` (repair when the residual drops below `F ×` nominal, default 0.9).
///
/// # Errors
///
/// Returns a [`CliError`] when the scheme/instance cannot be read or a flag is malformed.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let threads: usize = args.get_parsed("--threads", 1)?;
    if args.has("--threads") && !(args.has("--repair") || args.get("--instance").is_some()) {
        return Err(CliError::Usage(
            "--threads only applies when solving (--instance) or repairing (--repair)".into(),
        ));
    }
    let scheme = load_scheme(args, threads, out)?;
    let nominal = scheme.throughput();
    let overlay = Overlay::from_scheme(&scheme);

    let mut config = SimConfig {
        num_chunks: args.get_parsed("--chunks", 300usize)?,
        jitter: args.get_parsed("--jitter", 0.0)?,
        policy: parse_policy(args.get("--policy").unwrap_or("random"))?,
        ..SimConfig::default()
    };
    config.seed = args.get_parsed("--seed", config.seed)?;
    if let Some(rate) = args.get("--live") {
        let rate: f64 = rate
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid live rate {rate:?}")))?;
        config.source_mode = SourceMode::Live { rate };
    }
    let config = config.scaled_to(nominal, 2.0);

    let churn = args
        .get("--churn")
        .map(|raw| parse_churn(raw, &scheme))
        .transpose()?;
    if args.has("--repair") && churn.is_none() {
        return Err(CliError::Usage(
            "--repair requires a --churn specification to react to".into(),
        ));
    }
    if args.has("--floor") && !args.has("--repair") {
        return Err(CliError::Usage(
            "--floor only applies with --repair (it is the repair controller's threshold)".into(),
        ));
    }
    let floor: f64 = args.get_parsed("--floor", 0.9)?;
    if !(0.0..=1.0).contains(&floor) || floor == 0.0 {
        return Err(CliError::Usage(format!(
            "--floor {floor} must lie in (0, 1]"
        )));
    }
    if args.has("--trace") && churn.is_some() {
        return Err(CliError::Usage(
            "--trace is only available without --churn (the closed loop reports its own timeline)"
                .into(),
        ));
    }

    if let Some(churn) = churn {
        // Closed-loop run: the session engine plus an adaptation policy.
        let mut repair_controller = args.has("--repair").then(|| {
            let mut controller =
                RepairController::new(scheme.instance().clone(), scheme.clone(), nominal, floor);
            controller.set_parallelism(threads);
            controller
        });
        let mut static_policy = StaticPolicy;
        let policy: &mut dyn AdaptationPolicy = match repair_controller.as_mut() {
            Some(controller) => controller,
            None => &mut static_policy,
        };
        writeln!(
            out,
            "simulating {} chunks over {} edges (policy {}, nominal throughput {:.4}, adaptation {})",
            config.num_chunks,
            overlay.edges().len(),
            config.policy.label(),
            nominal,
            policy.label()
        )?;
        let outcome = run_adaptive(overlay, config, &churn, policy, nominal);
        report_outcome(&outcome, out)?;
        if let Some(repair_controller) = &repair_controller {
            let ctx = repair_controller.ctx();
            writeln!(
                out,
                "controller telemetry : {} flow solves, {} bisection iters, {} rescans skipped ({} edges patched)",
                ctx.flow_solves(),
                ctx.bisection_iters(),
                ctx.rescans_skipped(),
                ctx.edges_patched()
            )?;
            for decision in repair_controller.decisions() {
                writeln!(
                    out,
                    "  decision at t = {:.2}: departed {:?}, victim tolerance {:.3}, residual {:.4} ({:.1}% of nominal)",
                    decision.time,
                    decision.departed,
                    decision.victim_tolerance,
                    decision.residual,
                    100.0 * decision.residual / nominal
                )?;
            }
        }
        return Ok(());
    }

    let simulator = Simulator::new(overlay, config);
    writeln!(
        out,
        "simulating {} chunks over {} edges (policy {}, nominal throughput {:.4})",
        config.num_chunks,
        simulator.overlay().edges().len(),
        config.policy.label(),
        nominal
    )?;

    let report = if args.has("--trace") {
        let (report, trace) = simulator.run_traced(50);
        for (time, progress) in trace.worst_progress_series() {
            writeln!(
                out,
                "  t = {time:>8.2}  worst progress {:.1}%",
                progress * 100.0
            )?;
        }
        report
    } else {
        simulator.run()
    };

    writeln!(out, "rounds simulated : {}", report.rounds_run)?;
    writeln!(out, "all completed    : {}", report.all_completed())?;
    match report.min_achieved_rate() {
        Some(rate) => {
            writeln!(
                out,
                "worst delivery rate : {rate:.4} ({:.1}% of nominal)",
                100.0 * rate / nominal
            )?;
        }
        None => {
            writeln!(
                out,
                "worst delivery rate : n/a (slowest receiver got {:.1}% of the message)",
                100.0 * report.worst_progress()
            )?;
        }
    }
    if let Some(makespan) = report.makespan() {
        writeln!(out, "makespan         : {makespan:.2}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_core::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn scheme_path() -> String {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let path = temp_path("sim-scheme.json").to_str().unwrap().to_string();
        files::write_scheme(&path, &solution.scheme).unwrap();
        path
    }

    fn instance_path() -> String {
        let path = temp_path("sim-instance.json").to_str().unwrap().to_string();
        files::write_instance(&path, &figure1()).unwrap();
        path
    }

    fn run_args(args: Vec<String>) -> Result<String, CliError> {
        let list = ArgList::parse(&args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn simulates_a_file_broadcast() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "150".into(),
            "--seed".into(),
            "9".into(),
        ])
        .unwrap();
        assert!(output.contains("all completed    : true"));
        assert!(output.contains("worst delivery rate"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn simulates_with_trace_and_policy() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "100".into(),
            "--policy".into(),
            "rarest".into(),
            "--trace".into(),
        ])
        .unwrap();
        assert!(output.contains("policy rarest-first"));
        assert!(output.contains("worst progress"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn live_mode_and_bad_flags() {
        let path = scheme_path();
        let ok = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "100".into(),
            "--live".into(),
            "3.5".into(),
        ]);
        assert!(ok.is_ok());
        assert!(matches!(
            run_args(vec![
                "--scheme".into(),
                path.clone(),
                "--live".into(),
                "fast".into()
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_args(vec![
                "--scheme".into(),
                path.clone(),
                "--policy".into(),
                "bogus".into()
            ]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn churned_static_run_reports_goodput() {
        let path = scheme_path();
        let output = run_args(vec![
            "--scheme".into(),
            path.clone(),
            "--chunks".into(),
            "150".into(),
            "--churn".into(),
            "5:busiest".into(),
        ])
        .unwrap();
        assert!(output.contains("adaptation static"));
        assert!(output.contains("membership change: kept the overlay"));
        assert!(output.contains("delivered goodput"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn churned_repair_run_swaps_and_beats_static() {
        let path = scheme_path();
        let common = |repair: bool| {
            let mut args = vec![
                "--scheme".to_string(),
                path.clone(),
                "--chunks".into(),
                "150".into(),
                "--churn".into(),
                "5:3".into(),
            ];
            if repair {
                args.push("--repair".into());
            }
            run_args(args).unwrap()
        };
        let static_out = common(false);
        let repair_out = common(true);
        assert!(repair_out.contains("adaptation repair"));
        assert!(repair_out.contains("hot-swapped"));
        assert!(repair_out.contains("controller telemetry"));
        assert!(repair_out.contains("decision at t ="));
        let goodput = |report: &str| -> f64 {
            report
                .lines()
                .find(|line| line.starts_with("delivered goodput"))
                .and_then(|line| line.split(':').nth(1))
                .and_then(|rest| rest.trim().split(' ').next())
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            goodput(&repair_out) > goodput(&static_out),
            "repair {repair_out} vs static {static_out}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn solves_and_simulates_in_one_shot() {
        let path = instance_path();
        let output = run_args(vec![
            "--instance".into(),
            path.clone(),
            "--algorithm".into(),
            "acyclic-guarded".into(),
            "--threads".into(),
            "2".into(),
            "--chunks".into(),
            "120".into(),
            "--churn".into(),
            "4:busiest".into(),
            "--repair".into(),
        ])
        .unwrap();
        assert!(output.contains("solved 5 receivers with acyclic-guarded"));
        assert!(output.contains("adaptation repair"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn churn_specs_parse_and_reject_malformed_input() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let scheme = &solution.scheme;
        let schedule = parse_churn("5:3,+4;1.5:busiest", scheme).unwrap();
        assert_eq!(schedule.events().len(), 3);
        assert_eq!(schedule.events()[0].time, 1.5);
        for bad in ["", "5", "x:3", "5:zero", "5:0", "5:99", "-1:3", "5:+nope"] {
            assert!(parse_churn(bad, scheme).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn conflicting_and_incomplete_flag_combinations_are_rejected() {
        let scheme = scheme_path();
        let instance = instance_path();
        for args in [
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--instance".into(),
                instance.clone(),
            ],
            vec!["--scheme".to_string(), scheme.clone(), "--repair".into()],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--algorithm".into(),
                "auto".into(),
            ],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--churn".into(),
                "5:3".into(),
                "--trace".into(),
            ],
            vec![
                "--instance".to_string(),
                instance.clone(),
                "--algorithm".into(),
                "frobnicate".into(),
            ],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--churn".into(),
                "5:3".into(),
                "--floor".into(),
                "2.0".into(),
            ],
            vec![
                "--scheme".to_string(),
                scheme.clone(),
                "--threads".into(),
                "4".into(),
            ],
        ] {
            assert!(
                matches!(run_args(args.clone()), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
        std::fs::remove_file(scheme).ok();
        std::fs::remove_file(instance).ok();
    }

    #[test]
    fn all_policy_names_parse() {
        for name in [
            "random",
            "random-useful",
            "sequential",
            "in-order",
            "latest",
            "rarest-first",
        ] {
            assert!(parse_policy(name).is_ok(), "{name}");
        }
        assert!(parse_policy("fifo").is_err());
    }
}
