//! `solve` — compute a low-degree broadcast overlay for an instance.

use crate::args::ArgList;
use crate::error::CliError;
use crate::files;
use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
use bmp_core::export::scheme_to_dot;
use bmp_core::AcyclicGuardedSolver;
use std::io::Write;

/// Runs the `solve` subcommand.
///
/// Flags: `--instance FILE` (required), `--cyclic` (use the cyclic construction of Theorem 5.2,
/// open-only instances), `--tolerance EPS` (dichotomic search precision, default `1e-9`),
/// `--out FILE` (write the scheme as JSON), `--dot FILE` (write a Graphviz rendering).
///
/// # Errors
///
/// Returns a [`CliError`] when the instance cannot be read, the cyclic construction is asked
/// for an instance with guarded nodes, or an output file cannot be written.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    let instance = files::read_instance(args.require("--instance")?)?;
    let tolerance: f64 = args.get_parsed("--tolerance", 1e-9)?;

    let (scheme, throughput, label) = if args.has("--cyclic") {
        let (scheme, throughput) = cyclic_open_optimal_scheme(&instance)?;
        (scheme, throughput, "cyclic (Theorem 5.2)")
    } else {
        let solution = AcyclicGuardedSolver::with_tolerance(tolerance).solve(&instance);
        writeln!(out, "coding word: {}", solution.word)?;
        (
            solution.scheme,
            solution.throughput,
            "acyclic (Theorem 4.1)",
        )
    };

    writeln!(out, "algorithm  : {label}")?;
    writeln!(out, "throughput : {throughput:.6}")?;
    writeln!(out, "verified   : {:.6} (max-flow)", scheme.throughput())?;
    writeln!(out, "feasible   : {}", scheme.is_feasible())?;
    writeln!(out, "acyclic    : {}", scheme.is_acyclic())?;
    writeln!(out, "edges      : {}", scheme.edges().len())?;
    let degrees = scheme.outdegrees();
    writeln!(
        out,
        "outdegrees : {:?} (max excess over ceil(b_i/T): {})",
        degrees,
        scheme.max_degree_excess(throughput)
    )?;

    if let Some(path) = args.get("--out") {
        files::write_scheme(path, &scheme)?;
        writeln!(out, "wrote scheme to {path}")?;
    }
    if let Some(path) = args.get("--dot") {
        files::write_text(path, &scheme_to_dot(&scheme))?;
        writeln!(out, "wrote Graphviz rendering to {path}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_platform::paper::figure1;
    use bmp_platform::Instance;

    fn run_args(args: &[String]) -> Result<String, CliError> {
        let list = ArgList::parse(args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn write_figure1() -> String {
        let path = temp_path("solve-instance.json");
        let path_str = path.to_str().unwrap().to_string();
        files::write_instance(&path_str, &figure1()).unwrap();
        path_str
    }

    #[test]
    fn solves_the_running_example_acyclically() {
        let instance_path = write_figure1();
        let scheme_path = temp_path("solve-scheme.json").to_str().unwrap().to_string();
        let dot_path = temp_path("solve.dot").to_str().unwrap().to_string();
        let output = run_args(&[
            "--instance".into(),
            instance_path.clone(),
            "--out".into(),
            scheme_path.clone(),
            "--dot".into(),
            dot_path.clone(),
        ])
        .unwrap();
        assert!(output.contains("acyclic (Theorem 4.1)"));
        assert!(output.contains("throughput : 4.0"));
        assert!(output.contains("feasible   : true"));
        assert!(output.contains("coding word"));
        let scheme = files::read_scheme(&scheme_path).unwrap();
        assert!(scheme.is_feasible());
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.starts_with("digraph"));
        for path in [instance_path, scheme_path, dot_path] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn cyclic_solve_works_on_open_only_instances() {
        let path = temp_path("solve-open.json").to_str().unwrap().to_string();
        let instance = Instance::open_only(5.0, vec![5.0, 5.0, 3.0, 2.0]).unwrap();
        files::write_instance(&path, &instance).unwrap();
        let output = run_args(&["--instance".into(), path.clone(), "--cyclic".into()]).unwrap();
        assert!(output.contains("cyclic (Theorem 5.2)"));
        assert!(output.contains("feasible   : true"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cyclic_solve_rejects_guarded_instances() {
        let path = write_figure1();
        let err = run_args(&["--instance".into(), path.clone(), "--cyclic".into()]).unwrap_err();
        assert!(matches!(err, CliError::Algorithm(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_instance_flag() {
        assert!(matches!(run_args(&[]), Err(CliError::Usage(_))));
    }
}
