//! `solve` — compute a low-degree broadcast overlay for an instance.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use crate::files;
use bmp_core::export::scheme_to_dot;
use bmp_core::solver::{EvalCtx, Solution, Solver};
use std::io::Write;

/// Flags accepted by `solve`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "solve",
    flags: &[
        "--instance",
        "--algorithm",
        "--cyclic",
        "--tolerance",
        "--threads",
        "--speculate",
        "--incremental",
        "--out",
        "--dot",
    ],
};

pub use bmp_trees::solver::full_registry;

/// One line per registered solver: `name — description`.
fn registry_listing(solvers: &[Box<dyn Solver>]) -> String {
    solvers
        .iter()
        .map(|solver| format!("  {:<20} {}", solver.name(), solver.describe()))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Resolves an algorithm name against the full registry, enumerating the registered
/// solvers (with descriptions) on an unknown name. Shared by `solve` and the
/// solve-then-simulate path of `simulate`.
pub(crate) fn resolve_algorithm(requested: &str) -> Result<Box<dyn Solver>, CliError> {
    let mut solvers = full_registry();
    match solvers.iter().position(|s| s.name() == requested) {
        Some(index) => Ok(solvers.swap_remove(index)),
        None => Err(CliError::Usage(format!(
            "unknown algorithm {requested:?}; registered solvers:\n{}",
            registry_listing(&solvers)
        ))),
    }
}

/// Resolves `--algorithm` (and the legacy `--cyclic` switch) against the registry.
fn pick_solver(args: &ArgList) -> Result<Box<dyn Solver>, CliError> {
    let requested = match (args.get("--algorithm"), args.has("--cyclic")) {
        (Some(_), true) => {
            return Err(CliError::Usage(
                "pass either --algorithm NAME or the legacy --cyclic switch, not both".into(),
            ))
        }
        (Some(name), false) => name,
        // `--cyclic` predates the registry and remains an alias for the cyclic
        // construction of Theorem 5.2.
        (None, true) => "cyclic-open",
        (None, false) => "acyclic-guarded",
    };
    resolve_algorithm(requested)
}

/// Renders the uniform report every algorithm shares, from its [`Solution`].
fn report<W: Write>(solution: &Solution, out: &mut W) -> Result<(), CliError> {
    writeln!(out, "algorithm  : {}", solution.algorithm)?;
    if let Some(word) = &solution.word {
        writeln!(out, "word       : {word}")?;
    }
    let scheme = &solution.scheme;
    writeln!(out, "throughput : {:.6}", solution.throughput)?;
    writeln!(
        out,
        "verified   : {:.6} (max-flow)",
        solution.verified_throughput
    )?;
    writeln!(out, "feasible   : {}", scheme.is_feasible())?;
    writeln!(out, "acyclic    : {}", scheme.is_acyclic())?;
    writeln!(out, "edges      : {}", scheme.edges().len())?;
    writeln!(
        out,
        "outdegrees : {:?} (max excess over ceil(b_i/T): {})",
        scheme.outdegrees(),
        scheme.max_degree_excess(solution.throughput)
    )?;
    let telemetry = &solution.telemetry;
    writeln!(
        out,
        "telemetry  : {} flow solves, {} bisection iters, {} rescans skipped ({} edges patched), {:.3} ms",
        telemetry.flow_solves,
        telemetry.bisection_iters,
        telemetry.rescans_skipped,
        telemetry.edges_patched,
        telemetry.wall_time.as_secs_f64() * 1e3
    )?;
    Ok(())
}

/// Runs the `solve` subcommand.
///
/// Flags: `--instance FILE` (required), `--algorithm NAME` (registry dispatch; unknown
/// names list the registered solvers), `--cyclic` (legacy alias for
/// `--algorithm cyclic-open`), `--tolerance EPS` (dichotomic search precision, default
/// `1e-9`), `--threads N` (flow-evaluation fan-out over the persistent worker pool:
/// `1` sequential — the default — `N > 1` up to N concurrent lanes, `0` the
/// instance-size heuristic; the reported throughput is bit-identical either way),
/// `--speculate N` (dichotomic speculation depth: `0` — the default unless
/// `BMP_SPECULATE` is set — probes one midpoint at a time, `N > 0` additionally
/// submits the next N levels of candidate midpoints to the flow pool and discards
/// the branch the serial search would not have taken; the report is bit-identical
/// at any depth), `--incremental` (warm residual reuse: consecutive dichotomic
/// probes start each max-flow from the previous probe's retained residual instead
/// of a cold solve — on by default when `BMP_INCREMENTAL` is set, bit-identical
/// report either way), `--out FILE` (write the scheme as JSON), `--dot FILE`
/// (write a Graphviz rendering).
///
/// # Errors
///
/// Returns a [`CliError`] when the instance cannot be read, the algorithm name is
/// unknown, the algorithm rejects the instance, or an output file cannot be written.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let solver = pick_solver(args)?;
    let instance = files::read_instance(args.require("--instance")?)?;
    let tolerance: f64 = args.get_parsed("--tolerance", 1e-9)?;
    let threads: usize = args.get_parsed("--threads", 1)?;
    let speculate: usize =
        args.get_parsed("--speculate", bmp_core::solver::default_speculation())?;

    let mut ctx = EvalCtx::with_tolerance(tolerance);
    ctx.set_parallelism(threads);
    ctx.set_speculation(speculate);
    ctx.set_incremental(args.has("--incremental") || bmp_core::solver::default_incremental());
    let solution = solver.solve(&instance, &mut ctx)?;
    report(&solution, out)?;

    if let Some(path) = args.get("--out") {
        files::write_scheme(path, &solution.scheme)?;
        writeln!(out, "wrote scheme to {path}")?;
    }
    if let Some(path) = args.get("--dot") {
        files::write_text(path, &scheme_to_dot(&solution.scheme))?;
        writeln!(out, "wrote Graphviz rendering to {path}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_platform::paper::figure1;
    use bmp_platform::Instance;

    fn run_args(args: &[String]) -> Result<String, CliError> {
        let list = ArgList::parse(args)?;
        let mut out = Vec::new();
        run(&list, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn write_figure1() -> String {
        let path = temp_path("solve-instance.json");
        let path_str = path.to_str().unwrap().to_string();
        files::write_instance(&path_str, &figure1()).unwrap();
        path_str
    }

    fn write_open_instance(name: &str) -> String {
        let path = temp_path(name).to_str().unwrap().to_string();
        let instance = Instance::open_only(5.0, vec![5.0, 5.0, 3.0, 2.0]).unwrap();
        files::write_instance(&path, &instance).unwrap();
        path
    }

    #[test]
    fn solves_the_running_example_acyclically() {
        let instance_path = write_figure1();
        let scheme_path = temp_path("solve-scheme.json").to_str().unwrap().to_string();
        let dot_path = temp_path("solve.dot").to_str().unwrap().to_string();
        let output = run_args(&[
            "--instance".into(),
            instance_path.clone(),
            "--out".into(),
            scheme_path.clone(),
            "--dot".into(),
            dot_path.clone(),
        ])
        .unwrap();
        assert!(output.contains("algorithm  : acyclic-guarded"));
        assert!(output.contains("throughput : 4.0"));
        assert!(output.contains("feasible   : true"));
        assert!(output.contains("word       :"));
        assert!(output.contains("telemetry  :"));
        // The word comes after the algorithm header (uniform report order).
        assert!(output.find("algorithm").unwrap() < output.find("word").unwrap());
        let scheme = files::read_scheme(&scheme_path).unwrap();
        assert!(scheme.is_feasible());
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.starts_with("digraph"));
        for path in [instance_path, scheme_path, dot_path] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn registry_dispatch_covers_every_applicable_solver() {
        // The acceptance bar for the unified API: at least five distinct registry names
        // dispatchable through `--algorithm` on stock instances.
        let guarded_path = write_figure1();
        let open_path = write_open_instance("solve-open-dispatch.json");
        let mut dispatched = Vec::new();
        for solver in full_registry() {
            let name = solver.name();
            let path = match name {
                "acyclic-open" | "cyclic-open" => &open_path,
                _ => &guarded_path,
            };
            let output = run_args(&[
                "--instance".into(),
                path.clone(),
                "--algorithm".into(),
                name.into(),
            ])
            .unwrap_or_else(|e| panic!("--algorithm {name} failed: {e}"));
            assert!(output.contains("feasible   : true"), "{name}: {output}");
            assert!(output.contains("telemetry  :"), "{name}: {output}");
            dispatched.push(name);
        }
        assert!(dispatched.len() >= 5, "only dispatched {dispatched:?}");
        for path in [guarded_path, open_path] {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn threads_flag_changes_nothing_but_wall_time() {
        let path = write_figure1();
        let sequential = run_args(&["--instance".into(), path.clone()]).unwrap();
        for threads in ["0", "2", "8"] {
            let pooled = run_args(&[
                "--instance".into(),
                path.clone(),
                "--threads".into(),
                threads.into(),
            ])
            .unwrap();
            // Same algorithm, word, throughput, verification — the fan-out may only
            // change the telemetry timing line.
            let stable = |report: &str| {
                report
                    .lines()
                    .filter(|line| !line.starts_with("telemetry"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(stable(&sequential), stable(&pooled), "--threads {threads}");
        }
        let err = run_args(&[
            "--instance".into(),
            path.clone(),
            "--threads".into(),
            "many".into(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn speculate_flag_changes_nothing_but_wall_time() {
        let path = write_figure1();
        let serial = run_args(&["--instance".into(), path.clone()]).unwrap();
        for depth in ["1", "2", "3"] {
            let speculative = run_args(&[
                "--instance".into(),
                path.clone(),
                "--speculate".into(),
                depth.into(),
            ])
            .unwrap();
            // The determinism contract: speculation may only change the telemetry
            // timing line, never the word, throughput, or scheme.
            let stable = |report: &str| {
                report
                    .lines()
                    .filter(|line| !line.starts_with("telemetry"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(stable(&serial), stable(&speculative), "--speculate {depth}");
        }
        let err = run_args(&[
            "--instance".into(),
            path.clone(),
            "--speculate".into(),
            "deep".into(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--speculate"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn incremental_flag_changes_nothing_but_wall_time() {
        let path = write_figure1();
        let cold = run_args(&["--instance".into(), path.clone()]).unwrap();
        let warm = run_args(&["--instance".into(), path.clone(), "--incremental".into()]).unwrap();
        // The bit-identity contract: warm residual reuse may only change the telemetry
        // timing line, never the word, throughput, or scheme.
        let stable = |report: &str| {
            report
                .lines()
                .filter(|line| !line.starts_with("telemetry"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(stable(&cold), stable(&warm), "--incremental");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cyclic_switch_remains_an_alias() {
        let path = write_open_instance("solve-open.json");
        let output = run_args(&["--instance".into(), path.clone(), "--cyclic".into()]).unwrap();
        assert!(output.contains("algorithm  : cyclic-open"));
        assert!(output.contains("feasible   : true"));
        let explicit = run_args(&[
            "--instance".into(),
            path.clone(),
            "--algorithm".into(),
            "cyclic-open".into(),
        ])
        .unwrap();
        // Same algorithm either way; only telemetry timing may differ.
        assert_eq!(
            output.lines().next().unwrap(),
            explicit.lines().next().unwrap()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cyclic_solve_rejects_guarded_instances() {
        let path = write_figure1();
        let err = run_args(&["--instance".into(), path.clone(), "--cyclic".into()]).unwrap_err();
        assert!(matches!(err, CliError::Algorithm(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_algorithm_lists_the_registry() {
        let path = write_figure1();
        let err = run_args(&[
            "--instance".into(),
            path.clone(),
            "--algorithm".into(),
            "frobnicate".into(),
        ])
        .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("unknown algorithm"));
        for name in ["acyclic-guarded", "cyclic-open", "tree-decomposition"] {
            assert!(message.contains(name), "missing {name} in: {message}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn algorithm_and_cyclic_conflict() {
        let path = write_figure1();
        let err = run_args(&[
            "--instance".into(),
            path.clone(),
            "--cyclic".into(),
            "--algorithm".into(),
            "auto".into(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("not both"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn typoed_flag_is_rejected_with_the_accepted_list() {
        let err = run_args(&["--instnace".into(), "x.json".into()]).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("--instnace"));
        assert!(message.contains("--instance"));
        assert!(message.contains("--algorithm"));
    }

    #[test]
    fn missing_instance_flag() {
        assert!(matches!(run_args(&[]), Err(CliError::Usage(_))));
    }
}
