//! `verify` — check a broadcast scheme against the model's constraints.

use crate::args::{ArgList, FlagSpec};
use crate::error::CliError;
use crate::files;
use bmp_platform::node::degree_lower_bound;
use std::io::Write;

/// Flags accepted by `verify`.
pub const FLAGS: FlagSpec = FlagSpec {
    command: "verify",
    flags: &["--scheme", "--throughput"],
};

/// Runs the `verify` subcommand.
///
/// Flags: `--scheme FILE` (required), `--throughput T` (target throughput; defaults to the
/// max-flow throughput of the scheme itself).
///
/// Prints the feasibility violations (bandwidth, firewall, malformed rates), the max-flow
/// throughput, whether the scheme is acyclic, and the per-node degree excess with respect to
/// `⌈b_i / T⌉`.
///
/// # Errors
///
/// Returns a [`CliError`] when the scheme cannot be read.
pub fn run<W: Write>(args: &ArgList, out: &mut W) -> Result<(), CliError> {
    args.reject_unknown_flags(&FLAGS)?;
    let scheme = files::read_scheme(args.require("--scheme")?)?;
    let violations = scheme.validate();
    let measured = scheme.throughput();
    let target: f64 = args.get_parsed("--throughput", measured)?;

    if violations.is_empty() {
        writeln!(out, "constraints : satisfied")?;
    } else {
        writeln!(out, "constraints : {} violation(s)", violations.len())?;
        for violation in &violations {
            writeln!(out, "  - {violation:?}")?;
        }
    }
    writeln!(
        out,
        "throughput  : {measured:.6} (max-flow from the source to every receiver)"
    )?;
    writeln!(out, "acyclic     : {}", scheme.is_acyclic())?;
    writeln!(out, "node  class    bandwidth  outdegree  bound  excess")?;
    let instance = scheme.instance();
    for node in instance.nodes() {
        let outdegree = scheme.outdegree(node.id);
        let bound = degree_lower_bound(node.bandwidth, target);
        writeln!(
            out,
            "C{:<4} {:<8} {:>9.3}  {:>9}  {:>5}  {:>6}",
            node.id,
            format!("{:?}", node.class).to_lowercase(),
            node.bandwidth,
            outdegree,
            bound,
            outdegree as i64 - bound as i64
        )?;
    }
    writeln!(
        out,
        "max degree excess over ceil(b_i/T): {}",
        scheme.max_degree_excess(target)
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::testutil::temp_path;
    use bmp_core::scheme::BroadcastScheme;
    use bmp_core::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn run_on(scheme: &BroadcastScheme, extra: &[&str]) -> String {
        let path = temp_path("verify-scheme.json");
        let path_str = path.to_str().unwrap();
        files::write_scheme(path_str, scheme).unwrap();
        let mut args = vec!["--scheme".to_string(), path_str.to_string()];
        args.extend(extra.iter().map(|s| (*s).to_string()));
        let list = ArgList::parse(&args).unwrap();
        let mut out = Vec::new();
        run(&list, &mut out).unwrap();
        std::fs::remove_file(path).ok();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn a_solver_scheme_verifies_cleanly() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let output = run_on(&solution.scheme, &[]);
        assert!(output.contains("constraints : satisfied"));
        assert!(output.contains("acyclic     : true"));
        assert!(output.contains("max degree excess"));
        assert!(output.contains("C0"));
        assert!(output.contains("guarded"));
    }

    #[test]
    fn violations_are_listed() {
        let mut scheme = BroadcastScheme::new(figure1());
        scheme.set_rate(3, 4, 1.0); // guarded -> guarded
        scheme.set_rate(4, 1, 5.0); // bandwidth of node 4 is 1
        let output = run_on(&scheme, &["--throughput", "1.0"]);
        assert!(output.contains("violation(s)"));
        assert!(output.contains("FirewallViolated"));
        assert!(output.contains("BandwidthExceeded"));
    }

    #[test]
    fn missing_scheme_flag_is_a_usage_error() {
        let list = ArgList::parse(&[]).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&list, &mut out), Err(CliError::Usage(_))));
    }
}
