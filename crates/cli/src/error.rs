//! Error type of the command-line interface.

use std::fmt;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is malformed (unknown command, missing flag, bad value).
    Usage(String),
    /// A file could not be read or written.
    Io(String),
    /// A JSON document could not be parsed or produced.
    Json(String),
    /// An algorithm reported an error (infeasible throughput, unsupported instance, …).
    Algorithm(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(msg) => write!(f, "I/O error: {msg}"),
            CliError::Json(msg) => write!(f, "JSON error: {msg}"),
            CliError::Algorithm(msg) => write!(f, "algorithm error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e.to_string())
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e.to_string())
    }
}

impl From<bmp_core::CoreError> for CliError {
    fn from(e: bmp_core::CoreError) -> Self {
        CliError::Algorithm(e.to_string())
    }
}

impl From<bmp_platform::PlatformError> for CliError {
    fn from(e: bmp_platform::PlatformError) -> Self {
        CliError::Algorithm(e.to_string())
    }
}

impl From<bmp_trees::TreesError> for CliError {
    fn from(e: bmp_trees::TreesError) -> Self {
        CliError::Algorithm(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert!(CliError::Usage("x".into()).to_string().starts_with("usage"));
        assert!(CliError::Io("x".into()).to_string().starts_with("I/O"));
        assert!(CliError::Json("x".into()).to_string().starts_with("JSON"));
        assert!(CliError::Algorithm("x".into())
            .to_string()
            .starts_with("algorithm"));
    }

    #[test]
    fn conversions() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(CliError::from(io), CliError::Io(_)));
        let json = serde_json::from_str::<u32>("not json").unwrap_err();
        assert!(matches!(CliError::from(json), CliError::Json(_)));
        let core = bmp_core::CoreError::InvalidWord("bad".into());
        assert!(matches!(CliError::from(core), CliError::Algorithm(_)));
        let platform = bmp_platform::PlatformError::EmptyInstance;
        assert!(matches!(CliError::from(platform), CliError::Algorithm(_)));
        let trees = bmp_trees::TreesError::NotAcyclic;
        assert!(matches!(CliError::from(trees), CliError::Algorithm(_)));
    }
}
