//! Reading and writing the CLI's JSON artefacts (instances, broadcast schemes, and
//! closed-loop run checkpoints).

use crate::error::CliError;
use bmp_core::scheme::BroadcastScheme;
use bmp_platform::Instance;
use bmp_serve::FleetCheckpoint;
use bmp_sim::RunCheckpoint;
use std::fs;
use std::path::Path;

/// Reads a platform instance from a JSON file produced by [`write_instance`] (or by any code
/// serialising [`Instance`] with serde).
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be read and [`CliError::Json`] when it does
/// not contain a valid instance.
pub fn read_instance(path: &str) -> Result<Instance, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read instance file {path}: {e}")))?;
    Ok(serde_json::from_str(&text)?)
}

/// Writes a platform instance as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be written.
pub fn write_instance(path: &str, instance: &Instance) -> Result<(), CliError> {
    write_text(path, &serde_json::to_string_pretty(instance)?)
}

/// Reads a broadcast scheme (which embeds its instance) from a JSON file.
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be read and [`CliError::Json`] when it does
/// not contain a valid scheme.
pub fn read_scheme(path: &str) -> Result<BroadcastScheme, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read scheme file {path}: {e}")))?;
    Ok(serde_json::from_str(&text)?)
}

/// Writes a broadcast scheme as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be written.
pub fn write_scheme(path: &str, scheme: &BroadcastScheme) -> Result<(), CliError> {
    write_text(path, &serde_json::to_string_pretty(scheme)?)
}

/// Reads a closed-loop run checkpoint written by [`write_checkpoint`].
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be read and [`CliError::Json`] when it
/// does not contain a valid checkpoint (validation is structural here; the semantic
/// invariants are enforced when the run is resumed).
pub fn read_checkpoint(path: &str) -> Result<RunCheckpoint, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read checkpoint file {path}: {e}")))?;
    Ok(serde_json::from_str(&text)?)
}

/// Writes a closed-loop run checkpoint as compact JSON. The encoding is deterministic
/// (f64 values use shortest-round-trip formatting), so identical run states produce
/// byte-identical checkpoint files.
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be written.
pub fn write_checkpoint(path: &str, checkpoint: &RunCheckpoint) -> Result<(), CliError> {
    write_text(path, &serde_json::to_string(checkpoint)?)
}

/// Reads a fleet checkpoint written by [`write_fleet_checkpoint`] (or streamed out by
/// `serve --checkpoint`).
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be read and [`CliError::Json`] when it
/// does not contain a valid fleet checkpoint (config/admission consistency is enforced
/// when the fleet is resumed).
pub fn read_fleet_checkpoint(path: &str) -> Result<FleetCheckpoint, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read fleet checkpoint file {path}: {e}")))?;
    FleetCheckpoint::from_json(&text).map_err(CliError::Json)
}

/// Writes a fleet checkpoint as pretty-printed JSON (deterministic encoding, like all
/// fleet artefacts).
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be written.
pub fn write_fleet_checkpoint(path: &str, checkpoint: &FleetCheckpoint) -> Result<(), CliError> {
    write_text(path, &checkpoint.to_json())
}

/// Writes raw text to `path`, creating parent directories when needed.
///
/// # Errors
///
/// Returns [`CliError::Io`] when the file cannot be written.
pub fn write_text(path: &str, text: &str) -> Result<(), CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)
                .map_err(|e| CliError::Io(format!("cannot create directory {parent:?}: {e}")))?;
        }
    }
    fs::write(path, text).map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Helpers for the CLI unit tests: unique temporary paths.

    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A unique path in the system temporary directory (not created).
    pub fn temp_path(tag: &str) -> PathBuf {
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bmp-cli-test-{}-{id}-{tag}", std::process::id()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;
    use testutil::temp_path;

    #[test]
    fn instance_roundtrip() {
        let path = temp_path("instance.json");
        let path = path.to_str().unwrap();
        write_instance(path, &figure1()).unwrap();
        let back = read_instance(path).unwrap();
        assert_eq!(back.n(), 2);
        assert_eq!(back.m(), 3);
        assert_eq!(back.source_bandwidth(), 6.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scheme_roundtrip() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let path = temp_path("scheme.json");
        let path = path.to_str().unwrap();
        write_scheme(path, &solution.scheme).unwrap();
        let back = read_scheme(path).unwrap();
        assert_eq!(back.instance().num_nodes(), 6);
        assert_eq!(back.edges().len(), solution.scheme.edges().len());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_instance("/nonexistent/bmp/file.json").unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
        let err = read_scheme("/nonexistent/bmp/file.json").unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn invalid_json_is_a_json_error() {
        let path = temp_path("garbage.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, "{not json").unwrap();
        assert!(matches!(
            read_instance(path).unwrap_err(),
            CliError::Json(_)
        ));
        assert!(matches!(read_scheme(path).unwrap_err(), CliError::Json(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_text_creates_parent_directories() {
        let dir = temp_path("nested");
        let path = dir.join("deep/file.txt");
        write_text(path.to_str().unwrap(), "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        std::fs::remove_dir_all(&dir).ok();
    }
}
