//! Command-line interface to the bounded multi-port broadcast toolkit.
//!
//! The binary (`bmp-cli`) exposes the full pipeline a platform operator would run:
//!
//! ```text
//! bmp-cli generate  --receivers 100 --open-prob 0.7 --dist plab --out platform.json
//! bmp-cli bounds    --instance platform.json
//! bmp-cli solve     --instance platform.json --out overlay.json --dot overlay.dot
//! bmp-cli verify    --scheme overlay.json
//! bmp-cli decompose --scheme overlay.json --message 1000
//! bmp-cli simulate  --scheme overlay.json --chunks 500 --policy rarest
//! bmp-cli export    --scheme overlay.json --format degrees
//! ```
//!
//! Every subcommand lives in its own module and is unit-tested through the same [`run`] entry
//! point the binary uses; the binary itself is a thin wrapper around [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod cmd_bounds;
pub mod cmd_decompose;
pub mod cmd_export;
pub mod cmd_generate;
pub mod cmd_serve;
pub mod cmd_simulate;
pub mod cmd_solve;
pub mod cmd_verify;
pub mod error;
pub mod files;

pub use error::CliError;

use args::ArgList;
use std::io::Write;

/// Usage text printed by `help` and on unknown commands.
pub const USAGE: &str = "\
bmp-cli — broadcasting under the bounded multi-port model

USAGE: bmp-cli <command> [flags]

COMMANDS:
  generate   sample a random platform instance          (--receivers, --open-prob, --dist, --seed, --source, --out)
  bounds     print closed-form and computed throughput bounds  (--instance)
  solve      compute a low-degree broadcast overlay     (--instance, --algorithm, --cyclic, --tolerance, --out, --dot)
  verify     check a scheme's constraints and degrees   (--scheme, --throughput)
  decompose  split a scheme into weighted broadcast trees  (--scheme, --throughput, --message, --out)
  simulate   run the chunk-level streaming simulator    (--scheme | --instance [--algorithm, --threads], --chunks,
             and the closed-loop session engine          --policy, --seed, --jitter, --live, --trace,
                                                         --churn SPEC, --repair, --floor)
  serve      run a sharded multi-session broadcast fleet  (--sessions, --shards, --receivers, --chunks, --seed,
             with admission control and fleet metrics     --floor, --threads, --max-sessions, --capacity, --queue,
                                                          --repair-algorithm, --churn START:SPACING:WAVES,
                                                          --fault-plan, --report FILE, --csv FILE)
  export     render a scheme as DOT or CSV              (--scheme, --format, --throughput, --out)
  help       print this message

`solve --algorithm NAME` dispatches any registered solver (acyclic-guarded,
acyclic-open, cyclic-open, exhaustive, omega-word, auto, tree-decomposition);
an unknown NAME lists the registry with one-line descriptions. Unrecognized
flags are rejected with the subcommand's accepted flag list.

`simulate --churn \"5:busiest;12:+3\"` injects scheduled departures/rejoins and
reports delivered goodput; adding `--repair` re-solves the surviving platform
on every membership change and hot-swaps the repaired overlay mid-broadcast.
With `--instance` the command solves and simulates in one shot.
";

/// Parses `args` (excluding the binary name) and runs the corresponding subcommand, writing
/// human-readable output to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] describing bad usage, I/O problems or algorithm-level failures; the
/// binary prints it to stderr and exits with a non-zero status.
pub fn run<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let parsed = ArgList::parse(args)?;
    match parsed.command.as_str() {
        "generate" => cmd_generate::run(&parsed, out),
        "bounds" => cmd_bounds::run(&parsed, out),
        "solve" => cmd_solve::run(&parsed, out),
        "verify" => cmd_verify::run(&parsed, out),
        "decompose" => cmd_decompose::run(&parsed, out),
        "simulate" => cmd_simulate::run(&parsed, out),
        "serve" => cmd_serve::run(&parsed, out),
        "export" => cmd_export::run(&parsed, out),
        "help" | "" => {
            parsed.reject_unknown_flags(&args::FlagSpec {
                command: "help",
                flags: &[],
            })?;
            out.write_all(USAGE.as_bytes())?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `bmp-cli help` for the command list"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strings(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_is_printed_for_empty_and_help_commands() {
        assert!(run_strings(&[]).unwrap().contains("USAGE"));
        assert!(run_strings(&["help"]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = run_strings(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn full_pipeline_through_the_dispatcher() {
        let dir = std::env::temp_dir().join(format!("bmp-cli-pipeline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let instance = dir.join("instance.json");
        let scheme = dir.join("scheme.json");
        let instance = instance.to_str().unwrap();
        let scheme = scheme.to_str().unwrap();

        run_strings(&[
            "generate",
            "--receivers",
            "15",
            "--open-prob",
            "0.6",
            "--seed",
            "5",
            "--out",
            instance,
        ])
        .unwrap();
        let bounds = run_strings(&["bounds", "--instance", instance]).unwrap();
        assert!(bounds.contains("cyclic optimum"));
        let solve = run_strings(&["solve", "--instance", instance, "--out", scheme]).unwrap();
        assert!(solve.contains("feasible   : true"));
        let verify = run_strings(&["verify", "--scheme", scheme]).unwrap();
        assert!(verify.contains("constraints : satisfied"));
        let decompose = run_strings(&["decompose", "--scheme", scheme]).unwrap();
        assert!(decompose.contains("trees"));
        let export = run_strings(&["export", "--scheme", scheme, "--format", "edges"]).unwrap();
        assert!(export.starts_with("from,to,rate"));
        let simulate = run_strings(&[
            "simulate",
            "--scheme",
            scheme,
            "--chunks",
            "120",
            "--policy",
            "sequential",
        ])
        .unwrap();
        assert!(simulate.contains("all completed"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
