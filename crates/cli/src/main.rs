//! `bmp-cli` binary entry point: a thin wrapper around [`bmp_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match bmp_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("{error}");
            eprintln!("run `bmp-cli help` for usage");
            ExitCode::FAILURE
        }
    }
}
