//! Acyclic broadcast with guarded nodes: dichotomic search for the optimal throughput
//! (Theorem 4.1) and the low-degree scheme construction of Lemma 4.6.
//!
//! There is no closed form for the optimal acyclic throughput in the presence of guarded
//! nodes; the paper combines the linear-time feasibility test of Algorithm 2 with a
//! dichotomic search on `T`. Once a valid coding word is known, an explicit scheme is built
//! by feeding every node from the *earliest* previously-placed nodes that still have unused
//! upload bandwidth, guarded bandwidth first for open receivers (conservative solutions).
//! The resulting outdegrees satisfy
//!
//! * `o_j ≤ ⌈b_j/T⌉ + 1` for every guarded node,
//! * `o_i ≤ ⌈b_i/T⌉ + 2` for every open node except at most one,
//! * `o_i ≤ ⌈b_i/T⌉ + 3` for that remaining open node.

use crate::bounds::cyclic_upper_bound;
use crate::error::CoreError;
use crate::greedy::{greedy_test, GreedyOutcome};
use crate::scheme::BroadcastScheme;
use crate::search::{DichotomicSearch, SearchOutcome};
use crate::word::{CodingWord, Symbol};
use bmp_platform::{Instance, NodeId};

/// A solved acyclic instance: throughput, encoding word and explicit low-degree scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct AcyclicSolution {
    /// Achieved (near-optimal) acyclic throughput.
    pub throughput: f64,
    /// The coding word / increasing order realising it.
    pub word: CodingWord,
    /// The explicit low-degree broadcast scheme.
    pub scheme: BroadcastScheme,
}

/// Solver for the acyclic problem with guarded nodes (dichotomic search over Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct AcyclicGuardedSolver {
    /// Relative precision of the dichotomic search.
    pub tolerance: f64,
    /// Maximum number of bisection iterations (defensive cap).
    pub max_iterations: usize,
}

impl Default for AcyclicGuardedSolver {
    fn default() -> Self {
        AcyclicGuardedSolver {
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

impl AcyclicGuardedSolver {
    /// Creates a solver with a custom relative tolerance.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        AcyclicGuardedSolver {
            tolerance,
            ..Self::default()
        }
    }

    /// Whether throughput `t` is acyclically feasible (Algorithm 2).
    #[must_use]
    pub fn is_feasible(&self, instance: &Instance, t: f64) -> bool {
        greedy_test(instance, t).is_feasible()
    }

    /// The shared bisection driver configured with this solver's tolerance and cap.
    #[must_use]
    pub fn search(&self) -> DichotomicSearch {
        DichotomicSearch {
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
        }
    }

    /// Optimal acyclic throughput `T*_ac` (up to the solver tolerance) together with a valid
    /// coding word attaining it.
    #[must_use]
    pub fn optimal_throughput(&self, instance: &Instance) -> (f64, CodingWord) {
        let (throughput, word, _) = self.optimal_throughput_traced(instance);
        (throughput, word)
    }

    /// Like [`AcyclicGuardedSolver::optimal_throughput`], additionally reporting the number
    /// of bisection probes spent (surfaced as telemetry by the solver registry).
    #[must_use]
    pub fn optimal_throughput_traced(&self, instance: &Instance) -> (f64, CodingWord, u64) {
        self.optimal_throughput_traced_from(0.0, instance)
    }

    /// [`AcyclicGuardedSolver::optimal_throughput_traced`] warm-started from a
    /// caller-known throughput hint ([`DichotomicSearch::maximize_from`]): the incremental
    /// repair path seeds the bisection with the residual throughput its probe already
    /// verified, so the search starts from a bracket `[residual, upper]` instead of
    /// `[0, upper]`. The hint is probed, not trusted — a residual above the acyclic
    /// optimum (a cyclic deployed overlay) is refuted and merely narrows the bracket
    /// from above. A non-positive hint reproduces the cold search probe for probe.
    #[must_use]
    pub fn optimal_throughput_traced_from(
        &self,
        lower_hint: f64,
        instance: &Instance,
    ) -> (f64, CodingWord, u64) {
        let upper = cyclic_upper_bound(instance);
        let outcome = self
            .search()
            .maximize_from(lower_hint, upper, |t| self.is_feasible(instance, t));
        let word = greedy_test(instance, outcome.value)
            .word()
            .cloned()
            .unwrap_or_default();
        (outcome.value, word, outcome.probes)
    }

    /// The speculative counterpart of
    /// [`AcyclicGuardedSolver::optimal_throughput_traced_from`]: the same search with
    /// each round's candidate tree of depth `depth` evaluated concurrently on the
    /// shared flow worker pool ([`bmp_flow::FlowPool::global`]), returning the full
    /// [`SearchOutcome`] so callers can account the speculation separately.
    ///
    /// The probes are the pure `GreedyTest` feasibility predicate, so the result —
    /// value, word and serial probe count — is bit-identical to the serial search at
    /// any depth (the determinism contract of
    /// [`DichotomicSearch::maximize_speculative_from`]); `depth == 0` simply runs the
    /// serial path. Speculative tickets are tagged
    /// ([`bmp_flow::TicketClass::Speculative`]) so the pool reserves a fair-share lane
    /// and accounts cancelled wagers separately. The instance is cloned once into an
    /// [`std::sync::Arc`] per call — the pool's workers outlive the call, so they
    /// cannot borrow it — which is noise next to the probes a bisection performs.
    #[must_use]
    pub fn optimal_throughput_traced_spec(
        &self,
        lower_hint: f64,
        instance: &Instance,
        depth: usize,
    ) -> (f64, CodingWord, SearchOutcome) {
        if depth == 0 {
            let (value, word, probes) = self.optimal_throughput_traced_from(lower_hint, instance);
            return (
                value,
                word,
                SearchOutcome {
                    value,
                    probes,
                    probes_speculated: 0,
                    probes_wasted: 0,
                },
            );
        }
        let upper = cyclic_upper_bound(instance);
        let solver = *self;
        let shared = std::sync::Arc::new(instance.clone());
        let probe: bmp_flow::ProbeFn = {
            let instance = std::sync::Arc::clone(&shared);
            std::sync::Arc::new(move |_, t| solver.is_feasible(&instance, t))
        };
        let pool = bmp_flow::FlowPool::global();
        let mut tagged: Vec<(u64, f64)> = Vec::new();
        let outcome = self.search().maximize_speculative_from(
            lower_hint,
            upper,
            depth,
            |candidates, verdicts| {
                tagged.clear();
                tagged.extend(candidates.iter().map(|&t| (0u64, t)));
                pool.probe_batch(
                    &probe,
                    &tagged,
                    candidates.len(),
                    bmp_flow::TicketClass::Speculative,
                    verdicts,
                );
            },
        );
        let word = greedy_test(instance, outcome.value)
            .word()
            .cloned()
            .unwrap_or_default();
        (outcome.value, word, outcome)
    }

    /// Builds the low-degree scheme of Lemma 4.6 for a valid word at throughput `t`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWord`] when the word does not match the instance or is not
    /// valid for `t`.
    pub fn scheme_for_word(
        &self,
        instance: &Instance,
        t: f64,
        word: &CodingWord,
    ) -> Result<BroadcastScheme, CoreError> {
        if !word.is_complete_for(instance) {
            return Err(CoreError::InvalidWord(format!(
                "word {word} does not match instance (n={}, m={})",
                instance.n(),
                instance.m()
            )));
        }
        if !crate::word::is_valid_word(instance, t, word) {
            return Err(CoreError::InvalidWord(format!(
                "word {word} is not valid for throughput {t}"
            )));
        }
        Ok(build_scheme(instance, t, word))
    }

    /// Builds a low-degree scheme achieving throughput `t`, if `t` is acyclically feasible.
    #[must_use]
    pub fn scheme_for_throughput(&self, instance: &Instance, t: f64) -> Option<BroadcastScheme> {
        match greedy_test(instance, t) {
            GreedyOutcome::Feasible { word, .. } => Some(build_scheme(instance, t, &word)),
            GreedyOutcome::Infeasible { .. } => None,
        }
    }

    /// Solves the instance: optimal throughput, word and explicit scheme.
    #[must_use]
    pub fn solve(&self, instance: &Instance) -> AcyclicSolution {
        let (throughput, word) = self.optimal_throughput(instance);
        let scheme = build_scheme(instance, throughput, &word);
        AcyclicSolution {
            throughput,
            word,
            scheme,
        }
    }
}

/// Earliest-feeder conservative construction: each node of the order receives exactly `t`,
/// drawn from guarded bandwidth first (for open receivers) and from the earliest placed
/// nodes with unused upload.
fn build_scheme(instance: &Instance, t: f64, word: &CodingWord) -> BroadcastScheme {
    let mut scheme = BroadcastScheme::new(instance.clone());
    if t <= 0.0 {
        return scheme;
    }
    let tol = 1e-12 * t.max(1.0);
    // Remaining upload of every node.
    let mut remaining: Vec<f64> = (0..instance.num_nodes())
        .map(|i| instance.bandwidth(i))
        .collect();
    // Placed feeders by class, in placement order, with a cursor to the earliest one that may
    // still have unused upload.
    let mut open_feeders: Vec<NodeId> = vec![0];
    let mut guarded_feeders: Vec<NodeId> = Vec::new();
    let mut open_cursor = 0usize;
    let mut guarded_cursor = 0usize;
    let mut next_open = 1usize;
    let mut next_guarded = 1usize;

    for &symbol in word.symbols() {
        let (receiver, use_guarded_pool) = match symbol {
            Symbol::Open => {
                let id = instance.open_id(next_open);
                next_open += 1;
                (id, true)
            }
            Symbol::Guarded => {
                let id = instance.guarded_id(next_guarded);
                next_guarded += 1;
                (id, false)
            }
        };
        let mut need = t;
        if use_guarded_pool {
            drain(
                &mut scheme,
                &mut remaining,
                &guarded_feeders,
                &mut guarded_cursor,
                receiver,
                &mut need,
                tol,
            );
        }
        drain(
            &mut scheme,
            &mut remaining,
            &open_feeders,
            &mut open_cursor,
            receiver,
            &mut need,
            tol,
        );
        debug_assert!(
            need <= 1e-6 * t.max(1.0),
            "receiver {receiver} is missing {need} of its demand (word not valid?)"
        );
        // The newly placed node becomes a potential feeder for the following ones.
        match symbol {
            Symbol::Open => open_feeders.push(receiver),
            Symbol::Guarded => guarded_feeders.push(receiver),
        }
    }
    scheme.prune_dust();
    scheme
}

/// Pours bandwidth from the feeders (starting at the cursor) into `receiver` until its demand
/// is met or the pool is exhausted.
fn drain(
    scheme: &mut BroadcastScheme,
    remaining: &mut [f64],
    feeders: &[NodeId],
    cursor: &mut usize,
    receiver: NodeId,
    need: &mut f64,
    tol: f64,
) {
    while *need > tol && *cursor < feeders.len() {
        let feeder = feeders[*cursor];
        let available = remaining[feeder];
        if available <= tol {
            *cursor += 1;
            continue;
        }
        let transfer = available.min(*need);
        scheme.add_rate(feeder, receiver, transfer);
        remaining[feeder] -= transfer;
        *need -= transfer;
        if remaining[feeder] <= tol {
            *cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{acyclic_open_optimum, cyclic_upper_bound, five_sevenths};
    use bmp_platform::paper::{figure1, figure18, figure18_tight_epsilon};
    use bmp_platform::{Instance, NodeClass};

    fn solver() -> AcyclicGuardedSolver {
        AcyclicGuardedSolver::default()
    }

    /// Checks the degree bounds of Theorem 4.1 on a scheme built from a greedy word.
    fn assert_degree_bounds(instance: &Instance, scheme: &BroadcastScheme, t: f64) {
        let mut open_excess_3 = 0usize;
        for node in 0..instance.num_nodes() {
            let excess = scheme.degree_excess(node, t);
            match instance.class(node) {
                NodeClass::Guarded => assert!(
                    excess <= 1,
                    "guarded node {node} has degree excess {excess}"
                ),
                NodeClass::Source | NodeClass::Open => {
                    assert!(excess <= 3, "open node {node} has degree excess {excess}");
                    if excess == 3 {
                        open_excess_3 += 1;
                    }
                }
            }
        }
        assert!(
            open_excess_3 <= 1,
            "{open_excess_3} open nodes have degree excess 3 (at most one allowed)"
        );
    }

    #[test]
    fn figure1_optimal_acyclic_is_4() {
        let solution = solver().solve(&figure1());
        assert!(
            (solution.throughput - 4.0).abs() < 1e-6,
            "throughput = {}",
            solution.throughput
        );
        assert!(solution.scheme.is_feasible());
        assert!(solution.scheme.is_acyclic());
        let achieved = solution.scheme.throughput();
        assert!(achieved + 1e-6 >= solution.throughput);
    }

    #[test]
    fn figure5_scheme_structure() {
        // At T = 4 the greedy word is ■©■©■ (order 0 3 1 4 2 5). The scheme built from it
        // must deliver 4 to every node and keep the paper's degree bounds.
        let inst = figure1();
        let scheme = solver().scheme_for_throughput(&inst, 4.0).unwrap();
        assert!(scheme.is_feasible(), "violations: {:?}", scheme.validate());
        for receiver in inst.receivers() {
            assert!(
                (scheme.received(receiver) - 4.0).abs() < 1e-9,
                "receiver {receiver} got {}",
                scheme.received(receiver)
            );
        }
        assert!((scheme.throughput() - 4.0).abs() < 1e-9);
        assert_degree_bounds(&inst, &scheme, 4.0);
        // Source feeds the first guarded node with its whole demand (conservative, earliest
        // feeder): c_{0,3} > 0.
        assert!(scheme.rate(0, 3) > 0.0);
    }

    #[test]
    fn figure18_solution_is_five_sevenths() {
        let inst = figure18(figure18_tight_epsilon()).unwrap();
        let solution = solver().solve(&inst);
        assert!(
            (solution.throughput - five_sevenths()).abs() < 1e-6,
            "throughput = {}",
            solution.throughput
        );
        assert!(solution.scheme.is_feasible());
        assert!((solution.scheme.throughput() - five_sevenths()).abs() < 1e-6);
    }

    #[test]
    fn open_only_matches_algorithm_1_optimum() {
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        let (t, word) = solver().optimal_throughput(&inst);
        assert!((t - acyclic_open_optimum(&inst).unwrap()).abs() < 1e-6);
        assert_eq!(word.to_string(), "ooo");
    }

    #[test]
    fn solution_never_exceeds_cyclic_bound() {
        let inst = figure1();
        let (t, _) = solver().optimal_throughput(&inst);
        assert!(t <= cyclic_upper_bound(&inst) + 1e-9);
    }

    #[test]
    fn guarded_only_instance() {
        let inst = Instance::new(6.0, vec![], vec![2.0, 1.0, 1.0]).unwrap();
        let solution = solver().solve(&inst);
        // Every guarded node must be fed directly by the source: T* = b0 / m = 2.
        assert!((solution.throughput - 2.0).abs() < 1e-6);
        assert!(solution.scheme.is_feasible());
        assert_eq!(solution.scheme.outdegree(0), 3);
        for g in inst.guarded_indices() {
            assert_eq!(solution.scheme.outdegree(g), 0);
        }
    }

    #[test]
    fn infeasible_throughput_returns_none() {
        let inst = figure1();
        assert!(solver().scheme_for_throughput(&inst, 4.2).is_none());
        assert!(solver().scheme_for_throughput(&inst, 100.0).is_none());
    }

    #[test]
    fn scheme_for_word_rejects_invalid_words() {
        let inst = figure1();
        let bad_counts = CodingWord::parse("oo").unwrap();
        assert!(solver().scheme_for_word(&inst, 1.0, &bad_counts).is_err());
        let invalid_at_4 = CodingWord::parse("ggoog").unwrap();
        assert!(solver().scheme_for_word(&inst, 4.0, &invalid_at_4).is_err());
    }

    #[test]
    fn scheme_for_word_accepts_figure2_word() {
        let inst = figure1();
        let word = CodingWord::parse("googg").unwrap();
        let scheme = solver().scheme_for_word(&inst, 4.0, &word).unwrap();
        assert!(scheme.is_feasible());
        assert!((scheme.throughput() - 4.0).abs() < 1e-9);
        assert!(scheme.is_acyclic());
    }

    #[test]
    fn degree_bounds_hold_on_varied_instances() {
        let instances = vec![
            figure1(),
            Instance::new(10.0, vec![8.0, 6.0, 5.0, 2.0], vec![7.0, 3.0, 1.0]).unwrap(),
            Instance::new(3.0, vec![9.0, 1.0], vec![4.0, 4.0, 0.5, 0.5]).unwrap(),
            Instance::new(5.0, vec![2.0; 10], vec![1.0; 10]).unwrap(),
            Instance::new(1.0, vec![0.5; 4], vec![3.0; 2]).unwrap(),
        ];
        let solver = solver();
        for inst in instances {
            let solution = solver.solve(&inst);
            assert!(solution.scheme.is_feasible());
            let achieved = solution.scheme.throughput();
            assert!(
                achieved + 1e-6 >= solution.throughput,
                "achieved {achieved} < claimed {}",
                solution.throughput
            );
            if solution.throughput > 1e-9 {
                assert_degree_bounds(&inst, &solution.scheme, solution.throughput);
            }
        }
    }

    #[test]
    fn acyclicity_of_constructed_schemes() {
        let inst = Instance::new(10.0, vec![8.0, 6.0, 5.0, 2.0], vec![7.0, 3.0, 1.0]).unwrap();
        let solution = solver().solve(&inst);
        let order = solution.scheme.topological_order().expect("acyclic");
        assert_eq!(order[0], 0);
    }

    #[test]
    fn dichotomic_search_brackets_the_optimum() {
        let inst = figure1();
        let s = solver();
        let (t, _) = s.optimal_throughput(&inst);
        assert!(s.is_feasible(&inst, t));
        assert!(!s.is_feasible(&inst, t + 1e-5));
    }
}
