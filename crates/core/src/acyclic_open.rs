//! Algorithm 1: optimal acyclic broadcast for instances without guarded nodes.
//!
//! Nodes are sorted by non-increasing bandwidth and served one after the other: each sender
//! `C_i` pours its whole outgoing bandwidth into the first receivers that are not yet served
//! at rate `T`. The resulting scheme is acyclic, reaches the optimal acyclic throughput
//! `T* = min(b_0, S_{n−1}/n)` and every node has outdegree at most `⌈b_i/T⌉ + 1`
//! (Section III-B of the paper).

use crate::bounds::acyclic_open_optimum;
use crate::error::CoreError;
use crate::scheme::BroadcastScheme;
use bmp_flow::eps;
use bmp_platform::Instance;

/// Builds the Algorithm 1 scheme at throughput `throughput` for an instance without guarded
/// nodes.
///
/// # Errors
///
/// * [`CoreError::GuardedNodesNotSupported`] if the instance has guarded nodes,
/// * [`CoreError::InfeasibleThroughput`] if `throughput` exceeds `min(b_0, S_{n−1}/n)`.
pub fn acyclic_open_scheme(
    instance: &Instance,
    throughput: f64,
) -> Result<BroadcastScheme, CoreError> {
    if instance.has_guarded() {
        return Err(CoreError::GuardedNodesNotSupported {
            algorithm: "Algorithm 1 (acyclic, open nodes only)",
        });
    }
    let optimum = acyclic_open_optimum(instance)?;
    if eps::definitely_gt(throughput, optimum) {
        return Err(CoreError::InfeasibleThroughput {
            requested: throughput,
            optimum,
        });
    }
    // Guard against callers passing `optimum + ε` (allowed by the tolerant comparison above):
    // the construction below assumes the prefix-sum invariant S_{i−1} ≥ i·T exactly.
    let throughput = throughput.min(optimum);
    let n = instance.n();
    let mut scheme = BroadcastScheme::new(instance.clone());
    if throughput <= 0.0 || n == 0 {
        return Ok(scheme);
    }

    // `remaining_need[t]` is how much receiver C_t still has to receive (r_t in the paper),
    // `t` is the first receiver that is not yet fully served.
    let mut remaining_need: Vec<f64> = vec![throughput; n + 1];
    remaining_need[0] = 0.0; // the source receives nothing
    let mut t = 1usize;
    let tol = 1e-12 * throughput.max(1.0);

    for sender in 0..=n {
        let mut supply = instance.bandwidth(sender);
        while supply > tol && t <= n {
            // Acyclicity invariant (S_{i−1} ≥ i·T): the receiver pointer is always ahead of
            // the sender.
            debug_assert!(t > sender, "receiver pointer caught up with the sender");
            let transfer = remaining_need[t].min(supply);
            if transfer > tol {
                scheme.add_rate(sender, t, transfer);
            }
            remaining_need[t] -= transfer;
            supply -= transfer;
            if remaining_need[t] <= tol {
                remaining_need[t] = 0.0;
                t += 1;
            }
        }
        if t > n {
            break;
        }
    }
    scheme.prune_dust();
    Ok(scheme)
}

/// Builds the optimal Algorithm 1 scheme (`T = min(b_0, S_{n−1}/n)`) and returns it together
/// with its throughput.
///
/// # Errors
///
/// Returns [`CoreError::GuardedNodesNotSupported`] if the instance has guarded nodes.
pub fn acyclic_open_optimal_scheme(
    instance: &Instance,
) -> Result<(BroadcastScheme, f64), CoreError> {
    let optimum = acyclic_open_optimum(instance)?;
    let scheme = acyclic_open_scheme(instance, optimum)?;
    Ok((scheme, optimum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    fn check_scheme(instance: &Instance, throughput: f64) -> BroadcastScheme {
        let scheme = acyclic_open_scheme(instance, throughput).expect("feasible");
        assert!(scheme.is_feasible(), "violations: {:?}", scheme.validate());
        assert!(scheme.is_acyclic());
        let achieved = scheme.throughput();
        assert!(
            achieved + 1e-7 >= throughput,
            "achieved {achieved} < requested {throughput}"
        );
        // Degree bound of Section III-B: ⌈b_i/T⌉ + 1.
        for node in 0..instance.num_nodes() {
            let excess = scheme.degree_excess(node, throughput);
            assert!(excess <= 1, "node {node} has degree excess {excess} (> +1)");
        }
        scheme
    }

    #[test]
    fn optimal_scheme_on_simple_instance() {
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        let (scheme, optimum) = acyclic_open_optimal_scheme(&inst).unwrap();
        assert!((optimum - 5.0).abs() < 1e-12);
        assert!(scheme.is_feasible());
        assert!((scheme.throughput() - 5.0).abs() < 1e-9);
        check_scheme(&inst, 5.0);
    }

    #[test]
    fn source_limited_instance() {
        let inst = Instance::open_only(2.0, vec![50.0, 40.0, 30.0]).unwrap();
        let (scheme, optimum) = acyclic_open_optimal_scheme(&inst).unwrap();
        assert!((optimum - 2.0).abs() < 1e-12);
        assert!((scheme.throughput() - 2.0).abs() < 1e-9);
        // The source only needs to feed the first node; the chain then relays.
        assert_eq!(scheme.outdegree(0), 1);
    }

    #[test]
    fn figure3_structure_consecutive_receivers() {
        // Each sender serves a consecutive range of receivers (Figure 3 of the paper).
        let inst = Instance::open_only(10.0, vec![7.0, 6.0, 5.0, 4.0, 3.0, 2.0]).unwrap();
        let (scheme, optimum) = acyclic_open_optimal_scheme(&inst).unwrap();
        let t = optimum;
        for sender in 0..inst.num_nodes() {
            let receivers: Vec<usize> = (1..inst.num_nodes())
                .filter(|&j| scheme.rate(sender, j) > 1e-9)
                .collect();
            for pair in receivers.windows(2) {
                assert_eq!(
                    pair[1],
                    pair[0] + 1,
                    "receivers of {sender} not consecutive"
                );
            }
            // Senders only feed strictly later nodes.
            if let Some(&first) = receivers.first() {
                assert!(first > sender);
            }
        }
        check_scheme(&inst, t);
    }

    #[test]
    fn every_receiver_gets_exactly_t() {
        let inst = Instance::open_only(4.0, vec![3.5, 3.0, 2.5, 2.0, 1.0]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        for receiver in inst.receivers() {
            let received = scheme.received(receiver);
            assert!(
                (received - t).abs() < 1e-9,
                "receiver {receiver} got {received}, expected {t}"
            );
        }
    }

    #[test]
    fn sub_optimal_throughput_also_works() {
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        for t in [0.5, 1.0, 2.5, 4.0, 4.999] {
            check_scheme(&inst, t);
        }
    }

    #[test]
    fn rejects_guarded_instances() {
        let err = acyclic_open_scheme(&figure1(), 1.0).unwrap_err();
        assert!(matches!(err, CoreError::GuardedNodesNotSupported { .. }));
    }

    #[test]
    fn rejects_infeasible_throughput() {
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        let err = acyclic_open_scheme(&inst, 5.1).unwrap_err();
        assert!(matches!(err, CoreError::InfeasibleThroughput { .. }));
    }

    #[test]
    fn zero_throughput_gives_empty_scheme() {
        let inst = Instance::open_only(6.0, vec![5.0]).unwrap();
        let scheme = acyclic_open_scheme(&inst, 0.0).unwrap();
        assert!(scheme.edges().is_empty());
    }

    #[test]
    fn homogeneous_instance_degree_bound_tight() {
        // Homogeneous open-only instance: every node should have degree close to ⌈b/T⌉.
        let inst = Instance::open_only(1.0, vec![1.0; 20]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        for node in 0..inst.num_nodes() {
            assert!(scheme.outdegree(node) <= 2);
        }
    }

    #[test]
    fn single_receiver() {
        let inst = Instance::open_only(3.0, vec![1.0]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        assert!((t - 3.0).abs() < 1e-12);
        assert!((scheme.rate(0, 1) - 3.0).abs() < 1e-9);
    }
}
