//! Closed-form throughput bounds from the paper.
//!
//! * Acyclic, open nodes only (Section III-B): `T*_ac = min(b_0, S_{n−1}/n)` where
//!   `S_k = Σ_{i=0}^{k} b_i`.
//! * Cyclic, open nodes only (Theorem 5.2): `T* = min(b_0, (b_0 + O)/n)`.
//! * Cyclic, general case (Lemma 5.1): `T* ≤ min(b_0, (b_0+O)/m, (b_0+O+G)/(n+m))`; the paper
//!   shows this bound is attained (possibly at the price of arbitrarily large degrees), so it
//!   is used as the optimal cyclic throughput throughout the experiments, and it is
//!   cross-checked against the LP oracle on small instances.
//! * Worst-case ratios: `T*_ac/T* ≥ 1 − 1/n` without guarded nodes (Theorem 6.1), `≥ 5/7`
//!   in general (Theorem 6.2), and `≤ (1+√41)/8` for the Theorem 6.3 family.

use crate::error::CoreError;
use bmp_platform::Instance;

/// The tight worst-case ratio `5/7` between acyclic and cyclic optimal throughput
/// (Theorem 6.2).
#[must_use]
pub fn five_sevenths() -> f64 {
    5.0 / 7.0
}

/// The asymptotic worst-case ratio `(1+√41)/8 ≈ 0.925` of Theorem 6.3.
#[must_use]
pub fn theorem63_limit_ratio() -> f64 {
    (1.0 + 41.0_f64.sqrt()) / 8.0
}

/// Lower bound `1 − 1/n` on the acyclic/cyclic ratio for instances without guarded nodes
/// (Theorem 6.1).
#[must_use]
pub fn theorem61_ratio_bound(n: usize) -> f64 {
    if n == 0 {
        1.0
    } else {
        1.0 - 1.0 / n as f64
    }
}

/// Optimal *acyclic* throughput for an instance without guarded nodes:
/// `min(b_0, S_{n−1}/n)` (Section III-B).
///
/// # Errors
///
/// Returns [`CoreError::GuardedNodesNotSupported`] when the instance has guarded nodes
/// (there is no closed form in that case; use the dichotomic search of
/// [`crate::acyclic_guarded`]).
pub fn acyclic_open_optimum(instance: &Instance) -> Result<f64, CoreError> {
    if instance.has_guarded() {
        return Err(CoreError::GuardedNodesNotSupported {
            algorithm: "acyclic_open_optimum",
        });
    }
    let n = instance.n();
    let b0 = instance.source_bandwidth();
    if n == 0 {
        return Ok(b0);
    }
    // S_{n-1} = b_0 + b_1 + … + b_{n-1} (the smallest open node b_n is excluded).
    let s_n_minus_1 = instance.prefix_sum(n - 1);
    Ok(b0.min(s_n_minus_1 / n as f64))
}

/// Optimal *cyclic* throughput for an instance without guarded nodes:
/// `min(b_0, (b_0 + O)/n)` (Theorem 5.2).
///
/// # Errors
///
/// Returns [`CoreError::GuardedNodesNotSupported`] when the instance has guarded nodes.
pub fn cyclic_open_optimum(instance: &Instance) -> Result<f64, CoreError> {
    if instance.has_guarded() {
        return Err(CoreError::GuardedNodesNotSupported {
            algorithm: "cyclic_open_optimum",
        });
    }
    let n = instance.n();
    let b0 = instance.source_bandwidth();
    if n == 0 {
        return Ok(b0);
    }
    Ok(b0.min((b0 + instance.open_sum()) / n as f64))
}

/// Upper bound of Lemma 5.1 on the cyclic throughput:
/// `min(b_0, (b_0+O)/m, (b_0+O+G)/(n+m))`.
///
/// The paper proves the bound is attained by a (possibly high-degree) cyclic scheme, so this
/// value is the optimal cyclic throughput `T*` used as the normalisation of every ratio in
/// the evaluation.
#[must_use]
pub fn cyclic_upper_bound(instance: &Instance) -> f64 {
    let b0 = instance.source_bandwidth();
    let o = instance.open_sum();
    let g = instance.guarded_sum();
    let n = instance.n();
    let m = instance.m();
    let mut bound = b0;
    if m > 0 {
        bound = bound.min((b0 + o) / m as f64);
    }
    if n + m > 0 {
        bound = bound.min((b0 + o + g) / (n + m) as f64);
    }
    bound
}

/// All closed-form bounds of an instance, bundled for convenience.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Optimal cyclic throughput `T*` (Lemma 5.1, attained).
    pub cyclic_optimum: f64,
    /// Optimal acyclic throughput when the instance has no guarded node, `None` otherwise
    /// (with guarded nodes the optimum has no closed form).
    pub acyclic_open_optimum: Option<f64>,
    /// Optimal cyclic throughput restricted to open-only instances, `None` when guarded nodes
    /// are present.
    pub cyclic_open_optimum: Option<f64>,
}

impl Bounds {
    /// Computes every closed-form bound of `instance`.
    #[must_use]
    pub fn of(instance: &Instance) -> Self {
        Bounds {
            cyclic_optimum: cyclic_upper_bound(instance),
            acyclic_open_optimum: acyclic_open_optimum(instance).ok(),
            cyclic_open_optimum: cyclic_open_optimum(instance).ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::{figure1, figure18, figure18_tight_epsilon, figure6};

    #[test]
    fn figure1_cyclic_bound_is_4_4() {
        let bound = cyclic_upper_bound(&figure1());
        assert!((bound - 4.4).abs() < 1e-12);
    }

    #[test]
    fn figure6_cyclic_bound_is_1() {
        for m in 2..30 {
            let bound = cyclic_upper_bound(&figure6(m).unwrap());
            assert!((bound - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn figure18_cyclic_bound_is_1() {
        let inst = figure18(figure18_tight_epsilon()).unwrap();
        assert!((cyclic_upper_bound(&inst) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acyclic_open_formula() {
        // b = [6, 5, 4, 3]: S_2 = 15, n = 3 → min(6, 5) = 5.
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        assert!((acyclic_open_optimum(&inst).unwrap() - 5.0).abs() < 1e-12);
        // Source-limited case.
        let inst = Instance::open_only(2.0, vec![50.0, 40.0, 30.0]).unwrap();
        assert!((acyclic_open_optimum(&inst).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn acyclic_open_rejects_guarded() {
        let err = acyclic_open_optimum(&figure1()).unwrap_err();
        assert!(matches!(err, CoreError::GuardedNodesNotSupported { .. }));
        let err = cyclic_open_optimum(&figure1()).unwrap_err();
        assert!(matches!(err, CoreError::GuardedNodesNotSupported { .. }));
    }

    #[test]
    fn cyclic_open_formula() {
        // b = [6, 5, 4, 3]: (6 + 12)/3 = 6 → min(6, 6) = 6.
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        assert!((cyclic_open_optimum(&inst).unwrap() - 6.0).abs() < 1e-12);
        // The cyclic optimum always dominates the acyclic one.
        assert!(cyclic_open_optimum(&inst).unwrap() >= acyclic_open_optimum(&inst).unwrap());
    }

    #[test]
    fn acyclic_vs_cyclic_ratio_bound_open_only() {
        // Theorem 6.1: the ratio is at least 1 − 1/n.
        for n in 1..10 {
            let open: Vec<f64> = (1..=n).map(|i| 1.0 + i as f64).collect();
            let inst = Instance::open_only(2.0, open).unwrap();
            let acyclic = acyclic_open_optimum(&inst).unwrap();
            let cyclic = cyclic_open_optimum(&inst).unwrap();
            assert!(acyclic / cyclic >= theorem61_ratio_bound(n) - 1e-12);
        }
    }

    #[test]
    fn single_open_node_bounds() {
        let inst = Instance::open_only(3.0, vec![10.0]).unwrap();
        // n = 1: S_0 = b_0 = 3, so both optima equal b_0.
        assert!((acyclic_open_optimum(&inst).unwrap() - 3.0).abs() < 1e-12);
        assert!((cyclic_open_optimum(&inst).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_bundle() {
        let bounds = Bounds::of(&figure1());
        assert!((bounds.cyclic_optimum - 4.4).abs() < 1e-12);
        assert!(bounds.acyclic_open_optimum.is_none());
        assert!(bounds.cyclic_open_optimum.is_none());
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        let bounds = Bounds::of(&inst);
        assert_eq!(bounds.acyclic_open_optimum, Some(5.0));
        assert_eq!(bounds.cyclic_open_optimum, Some(6.0));
        assert!((bounds.cyclic_optimum - 6.0).abs() < 1e-12);
    }

    #[test]
    fn constants() {
        assert!((five_sevenths() - 0.714_285_714).abs() < 1e-6);
        assert!((theorem63_limit_ratio() - 0.925_39).abs() < 1e-4);
        assert_eq!(theorem61_ratio_bound(0), 1.0);
        assert_eq!(theorem61_ratio_bound(1), 0.0);
        assert!((theorem61_ratio_bound(4) - 0.75).abs() < 1e-12);
    }
}
