//! Churn analysis: what happens to a broadcast scheme when participating nodes leave.
//!
//! The paper's conclusion notes that the computed overlays "should be resilient to small
//! variations in the communication performance of nodes. However [they are] probably not
//! resilient to churn." This module quantifies both halves of that remark:
//!
//! * [`residual_throughput`] measures how much of the nominal rate survives when a set of
//!   nodes disappears while the overlay stays unchanged (typically: a large drop — the
//!   static overlay is *not* churn-resilient);
//! * [`repair`] removes the departed nodes from the instance, re-runs the acyclic solver and
//!   reports the new optimum, i.e. the price of a recomputation (typically: small — the
//!   algorithms are fast enough to be re-run on every membership change).

use crate::acyclic_guarded::{AcyclicGuardedSolver, AcyclicSolution};
use crate::scheme::{BroadcastScheme, RATE_EPS};
use crate::solver::EvalCtx;
use bmp_platform::{Instance, NodeId};

/// Throughput of `scheme` restricted to the surviving nodes: departed nodes neither send nor
/// receive nor relay, and departed receivers are not counted in the minimum.
///
/// One-shot convenience over [`residual_throughput_with`]; sweeps evaluating many
/// departures should hold an [`EvalCtx`] and call the `_with` variant so the flow
/// workspace (and, for a fixed survivor set, the arena itself) is reused.
///
/// # Panics
///
/// Panics if the source (node 0) is listed among the departed nodes.
#[must_use]
pub fn residual_throughput(scheme: &BroadcastScheme, departed: &[NodeId]) -> f64 {
    residual_throughput_with(scheme, departed, &mut EvalCtx::new())
}

/// [`residual_throughput`] evaluated through an explicit context.
///
/// # Panics
///
/// Panics if the source (node 0) is listed among the departed nodes.
#[must_use]
pub fn residual_throughput_with(
    scheme: &BroadcastScheme,
    departed: &[NodeId],
    ctx: &mut EvalCtx,
) -> f64 {
    let instance = scheme.instance();
    let n = instance.num_nodes();
    let mut alive = vec![true; n];
    for &node in departed {
        assert_ne!(node, 0, "the source cannot depart");
        if node < n {
            alive[node] = false;
        }
    }
    let mut edges = Vec::new();
    for (from, to, rate) in scheme.edges() {
        if alive[from] && alive[to] && rate > RATE_EPS {
            edges.push((from, to, rate));
        }
    }
    let survivors: Vec<NodeId> = instance.receivers().filter(|&r| alive[r]).collect();
    let throughput = ctx.min_max_flow(n, &edges, 0, &survivors);
    if throughput.is_finite() {
        throughput
    } else {
        0.0
    }
}

/// Result of repairing an overlay after departures.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The reduced instance (departed nodes removed).
    pub instance: Instance,
    /// The freshly computed acyclic solution on the reduced instance.
    pub solution: AcyclicSolution,
    /// Mapping from surviving original node ids to ids in the reduced instance.
    pub id_map: Vec<(NodeId, NodeId)>,
}

/// Rebuilds an instance without the departed nodes and re-runs the acyclic solver.
///
/// Returns `None` when no receiver survives.
///
/// # Panics
///
/// Panics if the source is listed among the departed nodes.
#[must_use]
pub fn repair(
    instance: &Instance,
    departed: &[NodeId],
    solver: &AcyclicGuardedSolver,
) -> Option<RepairOutcome> {
    let mut alive = vec![true; instance.num_nodes()];
    for &node in departed {
        assert_ne!(node, 0, "the source cannot depart");
        if node < instance.num_nodes() {
            alive[node] = false;
        }
    }
    let open: Vec<(NodeId, f64)> = instance
        .open_indices()
        .filter(|&i| alive[i])
        .map(|i| (i, instance.bandwidth(i)))
        .collect();
    let guarded: Vec<(NodeId, f64)> = instance
        .guarded_indices()
        .filter(|&i| alive[i])
        .map(|i| (i, instance.bandwidth(i)))
        .collect();
    if open.is_empty() && guarded.is_empty() {
        return None;
    }
    // The surviving nodes keep their relative (sorted) order within each class, so the
    // reduced instance is already sorted and the id mapping is positional.
    let reduced = Instance::new_presorted(
        instance.source_bandwidth(),
        open.iter().map(|&(_, b)| b).collect(),
        guarded.iter().map(|&(_, b)| b).collect(),
    )
    .ok()?;
    let mut id_map = vec![(0, 0)];
    for (new_index, &(old_id, _)) in open.iter().enumerate() {
        id_map.push((old_id, new_index + 1));
    }
    for (new_index, &(old_id, _)) in guarded.iter().enumerate() {
        id_map.push((old_id, reduced.n() + new_index + 1));
    }
    let solution = solver.solve(&reduced);
    Some(RepairOutcome {
        instance: reduced,
        solution,
        id_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    #[test]
    fn departure_of_a_relay_collapses_the_static_overlay() {
        // In the Figure 1 solution the guarded node C3 relays a large share of the rate: if
        // it leaves and the overlay is not recomputed, the surviving receivers starve.
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let nominal = solution.throughput;
        let residual = residual_throughput(&solution.scheme, &[3]);
        assert!(
            residual < 0.75 * nominal,
            "residual {residual} vs nominal {nominal}"
        );
    }

    #[test]
    fn departure_of_a_leaf_is_harmless() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        // C5 is the last guarded node: it relays little, so removing it barely matters for
        // the others.
        let residual = residual_throughput(&solution.scheme, &[5]);
        assert!(residual + 1e-9 >= 0.9 * solution.throughput);
    }

    #[test]
    fn no_departure_keeps_the_nominal_throughput() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let residual = residual_throughput(&solution.scheme, &[]);
        assert!((residual - solution.scheme.throughput()).abs() < 1e-9);
    }

    #[test]
    fn context_variant_matches_one_shot_across_departures() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        for departed in [&[][..], &[3][..], &[5][..], &[1, 4][..]] {
            assert_eq!(
                residual_throughput_with(&solution.scheme, departed, &mut ctx),
                residual_throughput(&solution.scheme, departed)
            );
        }
        assert!(ctx.flow_solves() > 0);
    }

    #[test]
    fn repair_restores_a_feasible_low_degree_overlay() {
        let solver = AcyclicGuardedSolver::default();
        let instance = figure1();
        let outcome = repair(&instance, &[3], &solver).unwrap();
        assert_eq!(outcome.instance.num_receivers(), 4);
        assert_eq!(outcome.instance.m(), 2);
        assert!(outcome.solution.scheme.is_feasible());
        // The repaired throughput is the optimum of the reduced platform and is certified by
        // max-flow.
        assert!(outcome.solution.scheme.throughput() + 1e-6 >= outcome.solution.throughput);
        // The id map covers the source and the four survivors.
        assert_eq!(outcome.id_map.len(), 5);
        assert!(outcome.id_map.iter().all(|&(old, _)| old != 3));
    }

    #[test]
    fn repair_after_all_receivers_depart_is_none() {
        let solver = AcyclicGuardedSolver::default();
        let instance = figure1();
        assert!(repair(&instance, &[1, 2, 3, 4, 5], &solver).is_none());
    }

    #[test]
    #[should_panic(expected = "source cannot depart")]
    fn source_departure_is_rejected() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let _ = residual_throughput(&solution.scheme, &[0]);
        let _ = repair(&figure1(), &[0], &solver);
    }
}
