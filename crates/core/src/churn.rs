//! Churn analysis: what happens to a broadcast scheme when participating nodes leave.
//!
//! The paper's conclusion notes that the computed overlays "should be resilient to small
//! variations in the communication performance of nodes. However [they are] probably not
//! resilient to churn." This module quantifies both halves of that remark:
//!
//! * [`residual_throughput`] measures how much of the nominal rate survives when a set of
//!   nodes disappears while the overlay stays unchanged (typically: a large drop — the
//!   static overlay is *not* churn-resilient);
//! * [`repair`] removes the departed nodes from the instance, re-runs the acyclic solver and
//!   reports the new optimum, i.e. the price of a recomputation (typically: small — the
//!   algorithms are fast enough to be re-run on every membership change);
//! * [`degradation_tolerance`] quantifies the *other* half of the remark ("resilient to
//!   small variations in the communication performance of nodes"): the dichotomic search
//!   for the largest fraction by which one node's upload rates can degrade before the
//!   delivered throughput drops below a floor. Its probes re-score the same scheme with
//!   only that node's outgoing rates moving — exactly the access pattern the dirty-edge
//!   journal of [`BroadcastScheme`] accelerates (the evaluation context patches the few
//!   journaled capacities instead of rescanning the O(n²) rate matrix per probe).

use crate::acyclic_guarded::{AcyclicGuardedSolver, AcyclicSolution};
use crate::scheme::{BroadcastScheme, RATE_EPS};
use crate::solver::EvalCtx;
use bmp_platform::{Instance, NodeId};

/// Throughput of `scheme` restricted to the surviving nodes: departed nodes neither send nor
/// receive nor relay, and departed receivers are not counted in the minimum.
///
/// One-shot convenience over [`residual_throughput_with`]; sweeps evaluating many
/// departures should hold an [`EvalCtx`] and call the `_with` variant so the flow
/// workspace (and, for a fixed survivor set, the arena itself) is reused.
///
/// # Panics
///
/// Panics if the source (node 0) is listed among the departed nodes.
#[must_use]
pub fn residual_throughput(scheme: &BroadcastScheme, departed: &[NodeId]) -> f64 {
    residual_throughput_with(scheme, departed, &mut EvalCtx::new())
}

/// [`residual_throughput`] evaluated through an explicit context.
///
/// The survivor overlay is assembled into a context-owned buffer
/// ([`EvalCtx::min_max_flow_with`]), so a sweep evaluating thousands of departure sets
/// performs no per-call edge-list allocation.
///
/// # Panics
///
/// Panics if the source (node 0) is listed among the departed nodes.
#[must_use]
pub fn residual_throughput_with(
    scheme: &BroadcastScheme,
    departed: &[NodeId],
    ctx: &mut EvalCtx,
) -> f64 {
    let instance = scheme.instance();
    let n = instance.num_nodes();
    let mut alive = vec![true; n];
    for &node in departed {
        assert_ne!(node, 0, "the source cannot depart");
        if node < n {
            alive[node] = false;
        }
    }
    let survivors: Vec<NodeId> = instance.receivers().filter(|&r| alive[r]).collect();
    let throughput = ctx.min_max_flow_with(n, 0, &survivors, |edges| {
        edges.extend(
            scheme
                .edges()
                .into_iter()
                .filter(|&(from, to, rate)| alive[from] && alive[to] && rate > RATE_EPS),
        );
    });
    if throughput.is_finite() {
        throughput
    } else {
        0.0
    }
}

/// Dichotomic degradation probe: the largest fraction `d ∈ [0, 1]` by which `node`'s
/// outgoing rates can be uniformly scaled down (to `1 − d` of their nominal value) while
/// the scheme still delivers at least `floor` to every receiver.
///
/// Returns 1.0 when even losing the node's entire upload keeps the floor (the node is
/// not load-bearing) and 0.0 when any degradation at all breaks it. The probes bisect
/// through `ctx` ([`crate::search::DichotomicSearch`] at the context tolerance, probes
/// accounted as [`crate::solver::Telemetry::bisection_iters`]); this function is the
/// in-tree exemplar of the *copy-on-probe* idiom (see the "Copy-on-probe" section of
/// the [`crate::scheme`] module docs): it clones **one** working copy up front and
/// mutates only `node`'s outgoing rates per probe, so every evaluation rides the
/// dirty-edge journal ([`crate::solver::Telemetry::rescans_skipped`]) instead of
/// rescanning the rate matrix — cloning inside the probe loop would hand the context a
/// fresh `eval_id` each time and pay the full scan.
///
/// # Panics
///
/// Panics if `node` is out of range for the scheme's instance.
#[must_use]
pub fn degradation_tolerance(
    scheme: &BroadcastScheme,
    node: NodeId,
    floor: f64,
    ctx: &mut EvalCtx,
) -> f64 {
    let instance = scheme.instance();
    assert!(node < instance.num_nodes(), "node {node} out of range");
    let out_edges: Vec<(NodeId, f64)> = (0..instance.num_nodes())
        .filter_map(|to| {
            let rate = scheme.rate(node, to);
            (to != node && rate > RATE_EPS).then_some((to, rate))
        })
        .collect();
    let mut probe = scheme.clone();
    let search = ctx.search();
    let tol = 1e-9 * floor.max(1.0);
    let outcome = search.maximize(1.0, |degradation| {
        let scale = 1.0 - degradation;
        for &(to, rate) in &out_edges {
            probe.set_rate(node, to, rate * scale);
        }
        ctx.throughput(&probe) + tol >= floor
    });
    ctx.add_bisection_iters(outcome.probes);
    outcome.value
}

/// Result of repairing an overlay after departures.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The reduced instance (departed nodes removed).
    pub instance: Instance,
    /// The freshly computed acyclic solution on the reduced instance.
    pub solution: AcyclicSolution,
    /// Mapping from surviving original node ids to ids in the reduced instance.
    pub id_map: Vec<(NodeId, NodeId)>,
}

impl RepairOutcome {
    /// The repaired scheme's overlay edges translated back to the *original* node ids
    /// (through [`RepairOutcome::id_map`]). This is the hot-swap entry point of the
    /// adaptive session controller in `bmp-sim`: the running data plane still addresses
    /// the full platform (departed nodes stay addressable in case they rejoin), so the
    /// re-solved overlay must be expressed in the original id space before it can
    /// replace the frozen one mid-broadcast.
    #[must_use]
    pub fn edges_in_original_ids(&self) -> Vec<(NodeId, NodeId, f64)> {
        let slots = self.id_map.iter().map(|&(_, new)| new).max().unwrap_or(0) + 1;
        let mut new_to_old = vec![0; slots];
        for &(old, new) in &self.id_map {
            new_to_old[new] = old;
        }
        self.solution
            .scheme
            .edges()
            .into_iter()
            .map(|(from, to, rate)| (new_to_old[from], new_to_old[to], rate))
            .collect()
    }
}

/// Rebuilds an instance without the departed nodes and re-runs the acyclic solver.
///
/// Returns `None` when no receiver survives.
///
/// # Panics
///
/// Panics if the source is listed among the departed nodes.
#[must_use]
pub fn repair(
    instance: &Instance,
    departed: &[NodeId],
    solver: &AcyclicGuardedSolver,
) -> Option<RepairOutcome> {
    let mut alive = vec![true; instance.num_nodes()];
    for &node in departed {
        assert_ne!(node, 0, "the source cannot depart");
        if node < instance.num_nodes() {
            alive[node] = false;
        }
    }
    let open: Vec<(NodeId, f64)> = instance
        .open_indices()
        .filter(|&i| alive[i])
        .map(|i| (i, instance.bandwidth(i)))
        .collect();
    let guarded: Vec<(NodeId, f64)> = instance
        .guarded_indices()
        .filter(|&i| alive[i])
        .map(|i| (i, instance.bandwidth(i)))
        .collect();
    if open.is_empty() && guarded.is_empty() {
        return None;
    }
    // The surviving nodes keep their relative (sorted) order within each class, so the
    // reduced instance is already sorted and the id mapping is positional.
    let reduced = Instance::new_presorted(
        instance.source_bandwidth(),
        open.iter().map(|&(_, b)| b).collect(),
        guarded.iter().map(|&(_, b)| b).collect(),
    )
    .ok()?;
    let mut id_map = vec![(0, 0)];
    for (new_index, &(old_id, _)) in open.iter().enumerate() {
        id_map.push((old_id, new_index + 1));
    }
    for (new_index, &(old_id, _)) in guarded.iter().enumerate() {
        id_map.push((old_id, reduced.n() + new_index + 1));
    }
    let solution = solver.solve(&reduced);
    Some(RepairOutcome {
        instance: reduced,
        solution,
        id_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    #[test]
    fn departure_of_a_relay_collapses_the_static_overlay() {
        // In the Figure 1 solution the guarded node C3 relays a large share of the rate: if
        // it leaves and the overlay is not recomputed, the surviving receivers starve.
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let nominal = solution.throughput;
        let residual = residual_throughput(&solution.scheme, &[3]);
        assert!(
            residual < 0.75 * nominal,
            "residual {residual} vs nominal {nominal}"
        );
    }

    #[test]
    fn departure_of_a_leaf_is_harmless() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        // C5 is the last guarded node: it relays little, so removing it barely matters for
        // the others.
        let residual = residual_throughput(&solution.scheme, &[5]);
        assert!(residual + 1e-9 >= 0.9 * solution.throughput);
    }

    #[test]
    fn no_departure_keeps_the_nominal_throughput() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let residual = residual_throughput(&solution.scheme, &[]);
        assert!((residual - solution.scheme.throughput()).abs() < 1e-9);
    }

    #[test]
    fn context_variant_matches_one_shot_across_departures() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        for departed in [&[][..], &[3][..], &[5][..], &[1, 4][..]] {
            assert_eq!(
                residual_throughput_with(&solution.scheme, departed, &mut ctx),
                residual_throughput(&solution.scheme, departed)
            );
        }
        assert!(ctx.flow_solves() > 0);
    }

    #[test]
    fn degradation_tolerance_separates_relays_from_leaves() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        ctx.set_journal_enabled(true); // immune to the CI journal-off matrix
        let floor = 0.9 * solution.throughput;
        // The guarded relay C3 carries a large share of the rate: it cannot degrade far
        // before the floor breaks.
        let relay = degradation_tolerance(&solution.scheme, 3, floor, &mut ctx);
        // The last guarded node relays little: it tolerates much more degradation.
        let leaf = degradation_tolerance(&solution.scheme, 5, floor, &mut ctx);
        assert!(
            relay < leaf,
            "relay tolerance {relay} should be below leaf tolerance {leaf}"
        );
        assert!((0.0..=1.0).contains(&relay));
        assert!((0.0..=1.0).contains(&leaf));
        // The probes bisect and ride the dirty-edge journal.
        assert!(ctx.bisection_iters() > 0);
        assert!(ctx.rescans_skipped() > 0);
    }

    #[test]
    fn degradation_tolerance_honors_trivial_floors() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        // A zero floor survives losing the node entirely.
        assert_eq!(
            degradation_tolerance(&solution.scheme, 3, 0.0, &mut ctx),
            1.0
        );
        // A floor above the nominal throughput fails immediately.
        let t = solution.throughput;
        assert_eq!(
            degradation_tolerance(&solution.scheme, 3, 2.0 * t, &mut ctx),
            0.0
        );
    }

    #[test]
    fn degradation_probe_matches_a_hand_scaled_evaluation() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        let floor = 0.8 * solution.throughput;
        let d = degradation_tolerance(&solution.scheme, 0, floor, &mut ctx);
        // Re-scale by hand at the returned tolerance and just below the breaking point:
        // the floor must hold there and fail slightly above.
        let verify = |degradation: f64| {
            let mut scaled = solution.scheme.clone();
            for (from, to, rate) in solution.scheme.edges() {
                if from == 0 {
                    scaled.set_rate(from, to, rate * (1.0 - degradation));
                }
            }
            scaled.throughput()
        };
        assert!(verify(d) + 1e-6 >= floor);
        if d < 1.0 - 1e-6 {
            assert!(verify((d + 0.05).min(1.0)) < floor + 1e-6);
        }
    }

    #[test]
    fn repair_restores_a_feasible_low_degree_overlay() {
        let solver = AcyclicGuardedSolver::default();
        let instance = figure1();
        let outcome = repair(&instance, &[3], &solver).unwrap();
        assert_eq!(outcome.instance.num_receivers(), 4);
        assert_eq!(outcome.instance.m(), 2);
        assert!(outcome.solution.scheme.is_feasible());
        // The repaired throughput is the optimum of the reduced platform and is certified by
        // max-flow.
        assert!(outcome.solution.scheme.throughput() + 1e-6 >= outcome.solution.throughput);
        // The id map covers the source and the four survivors.
        assert_eq!(outcome.id_map.len(), 5);
        assert!(outcome.id_map.iter().all(|&(old, _)| old != 3));
    }

    #[test]
    fn repaired_edges_translate_back_to_original_ids() {
        let solver = AcyclicGuardedSolver::default();
        let instance = figure1();
        let outcome = repair(&instance, &[3], &solver).unwrap();
        let edges = outcome.edges_in_original_ids();
        assert_eq!(edges.len(), outcome.solution.scheme.edges().len());
        for &(from, to, rate) in &edges {
            assert_ne!(from, 3, "departed node reappeared as sender");
            assert_ne!(to, 3, "departed node reappeared as receiver");
            assert!(from < instance.num_nodes() && to < instance.num_nodes());
            assert!(rate > 0.0);
        }
        // The translated overlay delivers the repaired throughput to the survivors.
        let survivors: Vec<NodeId> = (1..instance.num_nodes()).filter(|&v| v != 3).collect();
        let mut ctx = EvalCtx::new();
        let value = ctx.min_max_flow(instance.num_nodes(), &edges, 0, &survivors);
        assert!(
            (value - outcome.solution.throughput).abs() < 1e-6,
            "translated overlay delivers {value} vs repaired {}",
            outcome.solution.throughput
        );
    }

    #[test]
    fn repair_after_all_receivers_depart_is_none() {
        let solver = AcyclicGuardedSolver::default();
        let instance = figure1();
        assert!(repair(&instance, &[1, 2, 3, 4, 5], &solver).is_none());
    }

    #[test]
    #[should_panic(expected = "source cannot depart")]
    fn source_departure_is_rejected() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let _ = residual_throughput(&solution.scheme, &[0]);
        let _ = repair(&figure1(), &[0], &solver);
    }
}
