//! Churn analysis: what happens to a broadcast scheme when participating nodes leave.
//!
//! The paper's conclusion notes that the computed overlays "should be resilient to small
//! variations in the communication performance of nodes. However [they are] probably not
//! resilient to churn." This module quantifies both halves of that remark:
//!
//! * [`residual_throughput`] measures how much of the nominal rate survives when a set of
//!   nodes disappears while the overlay stays unchanged (typically: a large drop — the
//!   static overlay is *not* churn-resilient);
//! * [`repair`] removes the departed nodes from the instance, re-runs the acyclic solver and
//!   reports the new optimum, i.e. the price of a recomputation (typically: small — the
//!   algorithms are fast enough to be re-run on every membership change);
//! * [`degradation_tolerance`] quantifies the *other* half of the remark ("resilient to
//!   small variations in the communication performance of nodes"): the dichotomic search
//!   for the largest fraction by which one node's upload rates can degrade before the
//!   delivered throughput drops below a floor. Its probes re-score the same scheme with
//!   only that node's outgoing rates moving — exactly the access pattern the dirty-edge
//!   journal of [`BroadcastScheme`] accelerates (the evaluation context patches the few
//!   journaled capacities instead of rescanning the O(n²) rate matrix per probe), and
//!   that warm residual reuse ([`EvalCtx::set_incremental`]) accelerates further: the
//!   retained arena keeps its epoch across probes, so each probe's max-flows start from
//!   the previous probe's residual instead of a cold Dinic (bit-identical tolerances,
//!   see `bmp_flow::incremental`).

use crate::acyclic_guarded::{AcyclicGuardedSolver, AcyclicSolution};
use crate::error::CoreError;
use crate::faults::FaultSite;
use crate::scheme::{BroadcastScheme, RATE_EPS};
use crate::solver::{EvalCtx, Solver};
use bmp_platform::{Instance, NodeId};

/// Throughput of `scheme` restricted to the surviving nodes: departed nodes neither send nor
/// receive nor relay, and departed receivers are not counted in the minimum.
///
/// One-shot convenience over [`residual_throughput_with`]; sweeps evaluating many
/// departures should hold an [`EvalCtx`] and call the `_with` variant so the flow
/// workspace (and, for a fixed survivor set, the arena itself) is reused.
///
/// # Panics
///
/// Panics if the source (node 0) is listed among the departed nodes.
#[must_use]
pub fn residual_throughput(scheme: &BroadcastScheme, departed: &[NodeId]) -> f64 {
    residual_throughput_with(scheme, departed, &mut EvalCtx::new())
}

/// [`residual_throughput`] evaluated through an explicit context.
///
/// The survivor overlay is assembled into a context-owned buffer
/// ([`EvalCtx::min_max_flow_with`]), so a sweep evaluating thousands of departure sets
/// performs no per-call edge-list allocation.
///
/// # Panics
///
/// Panics if the source (node 0) is listed among the departed nodes.
#[must_use]
pub fn residual_throughput_with(
    scheme: &BroadcastScheme,
    departed: &[NodeId],
    ctx: &mut EvalCtx,
) -> f64 {
    let instance = scheme.instance();
    let n = instance.num_nodes();
    let mut alive = vec![true; n];
    for &node in departed {
        assert_ne!(node, 0, "the source cannot depart");
        if node < n {
            alive[node] = false;
        }
    }
    let survivors: Vec<NodeId> = instance.receivers().filter(|&r| alive[r]).collect();
    let throughput = ctx.min_max_flow_with(n, 0, &survivors, |edges| {
        edges.extend(
            scheme
                .edges()
                .into_iter()
                .filter(|&(from, to, rate)| alive[from] && alive[to] && rate > RATE_EPS),
        );
    });
    if throughput.is_finite() {
        throughput
    } else {
        0.0
    }
}

/// Dichotomic degradation probe: the largest fraction `d ∈ [0, 1]` by which `node`'s
/// outgoing rates can be uniformly scaled down (to `1 − d` of their nominal value) while
/// the scheme still delivers at least `floor` to every receiver.
///
/// Returns 1.0 when even losing the node's entire upload keeps the floor (the node is
/// not load-bearing) and 0.0 when any degradation at all breaks it. The probes bisect
/// through `ctx` ([`crate::search::DichotomicSearch`] at the context tolerance, probes
/// accounted as [`crate::solver::Telemetry::bisection_iters`]); this function is the
/// in-tree exemplar of the *copy-on-probe* idiom (see the "Copy-on-probe" section of
/// the [`crate::scheme`] module docs): it clones **one** working copy up front and
/// mutates only `node`'s outgoing rates per probe, so every evaluation rides the
/// dirty-edge journal ([`crate::solver::Telemetry::rescans_skipped`]) instead of
/// rescanning the rate matrix — cloning inside the probe loop would hand the context a
/// fresh `eval_id` each time and pay the full scan.
///
/// # Panics
///
/// Panics if `node` is out of range for the scheme's instance.
#[must_use]
pub fn degradation_tolerance(
    scheme: &BroadcastScheme,
    node: NodeId,
    floor: f64,
    ctx: &mut EvalCtx,
) -> f64 {
    let instance = scheme.instance();
    assert!(node < instance.num_nodes(), "node {node} out of range");
    let out_edges: Vec<(NodeId, f64)> = (0..instance.num_nodes())
        .filter_map(|to| {
            let rate = scheme.rate(node, to);
            (to != node && rate > RATE_EPS).then_some((to, rate))
        })
        .collect();
    let mut probe = scheme.clone();
    let search = ctx.search();
    let tol = 1e-9 * floor.max(1.0);
    let outcome = search.maximize(1.0, |degradation| {
        let scale = 1.0 - degradation;
        for &(to, rate) in &out_edges {
            probe.set_rate(node, to, rate * scale);
        }
        ctx.throughput(&probe) + tol >= floor
    });
    ctx.add_bisection_iters(outcome.probes);
    outcome.value
}

/// Fallible variant of [`degradation_tolerance`] for callers that participate in the
/// fault-injection plane: the probe is intercepted at [`FaultSite::Probe`] before any
/// flow evaluation, surfacing an injected timeout as [`CoreError::Timeout`]. Without an
/// installed fault script this is exactly [`degradation_tolerance`].
///
/// # Errors
///
/// [`CoreError::Timeout`] when the context's fault script fails this probe.
///
/// # Panics
///
/// Panics if `node` is out of range for the scheme's instance.
pub fn try_degradation_tolerance(
    scheme: &BroadcastScheme,
    node: NodeId,
    floor: f64,
    ctx: &mut EvalCtx,
) -> Result<f64, CoreError> {
    if ctx.intercept_fault(FaultSite::Probe).is_some() {
        return Err(CoreError::Timeout {
            operation: format!("degradation probe of node {node}"),
        });
    }
    Ok(degradation_tolerance(scheme, node, floor, ctx))
}

/// Result of repairing an overlay after departures.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The reduced instance (departed nodes removed).
    pub instance: Instance,
    /// The freshly computed acyclic solution on the reduced instance.
    pub solution: AcyclicSolution,
    /// Mapping from surviving original node ids to ids in the reduced instance.
    pub id_map: Vec<(NodeId, NodeId)>,
}

impl RepairOutcome {
    /// The repaired scheme's overlay edges translated back to the *original* node ids
    /// (through [`RepairOutcome::id_map`]). This is the hot-swap entry point of the
    /// adaptive session controller in `bmp-sim`: the running data plane still addresses
    /// the full platform (departed nodes stay addressable in case they rejoin), so the
    /// re-solved overlay must be expressed in the original id space before it can
    /// replace the frozen one mid-broadcast.
    #[must_use]
    pub fn edges_in_original_ids(&self) -> Vec<(NodeId, NodeId, f64)> {
        translate_edges(&self.solution.scheme, &self.id_map)
    }
}

/// Translates a reduced-instance scheme's edges back to original node ids through an
/// `(old, new)` id map.
fn translate_edges(
    scheme: &BroadcastScheme,
    id_map: &[(NodeId, NodeId)],
) -> Vec<(NodeId, NodeId, f64)> {
    let slots = id_map.iter().map(|&(_, new)| new).max().unwrap_or(0) + 1;
    let mut new_to_old = vec![0; slots];
    for &(old, new) in id_map {
        new_to_old[new] = old;
    }
    scheme
        .edges()
        .into_iter()
        .map(|(from, to, rate)| (new_to_old[from], new_to_old[to], rate))
        .collect()
}

/// Rebuilds the instance without the departed nodes, returning the reduced instance and
/// the `(old, new)` id map, or `None` when no receiver survives.
///
/// # Panics
///
/// Panics if the source is listed among the departed nodes.
fn reduce_instance(
    instance: &Instance,
    departed: &[NodeId],
) -> Option<(Instance, Vec<(NodeId, NodeId)>)> {
    let mut alive = vec![true; instance.num_nodes()];
    for &node in departed {
        assert_ne!(node, 0, "the source cannot depart");
        if node < instance.num_nodes() {
            alive[node] = false;
        }
    }
    let open: Vec<(NodeId, f64)> = instance
        .open_indices()
        .filter(|&i| alive[i])
        .map(|i| (i, instance.bandwidth(i)))
        .collect();
    let guarded: Vec<(NodeId, f64)> = instance
        .guarded_indices()
        .filter(|&i| alive[i])
        .map(|i| (i, instance.bandwidth(i)))
        .collect();
    if open.is_empty() && guarded.is_empty() {
        return None;
    }
    // The surviving nodes keep their relative (sorted) order within each class, so the
    // reduced instance is already sorted and the id mapping is positional.
    let reduced = Instance::new_presorted(
        instance.source_bandwidth(),
        open.iter().map(|&(_, b)| b).collect(),
        guarded.iter().map(|&(_, b)| b).collect(),
    )
    .ok()?;
    let mut id_map = vec![(0, 0)];
    for (new_index, &(old_id, _)) in open.iter().enumerate() {
        id_map.push((old_id, new_index + 1));
    }
    for (new_index, &(old_id, _)) in guarded.iter().enumerate() {
        id_map.push((old_id, reduced.n() + new_index + 1));
    }
    Some((reduced, id_map))
}

/// A repaired overlay computed by an arbitrary registry solver, already translated back
/// to the original id space — the solver-agnostic counterpart of [`RepairOutcome`] that
/// the fallback-solver chain of the adaptive repair pipeline consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairPlan {
    /// Registry name of the solver that produced the plan.
    pub algorithm: &'static str,
    /// Verified throughput of the repaired overlay on the reduced instance.
    pub throughput: f64,
    /// The repaired overlay's edges in *original* node ids (see
    /// [`RepairOutcome::edges_in_original_ids`]).
    pub edges: Vec<(NodeId, NodeId, f64)>,
}

/// Rebuilds the instance without the departed nodes and re-solves it through any
/// [`Solver`] — the fallible, fallback-capable sibling of [`repair`].
///
/// Returns `Ok(None)` when no receiver survives (nothing to repair). Solver failures —
/// real ([`CoreError::GuardedNodesNotSupported`], [`CoreError::Unsupported`],
/// [`CoreError::VerificationFailed`]) or injected through the context's fault script —
/// propagate so the caller can retry or walk a fallback chain.
///
/// # Errors
///
/// Any error of the underlying [`Solver::solve`] call.
///
/// # Panics
///
/// Panics if the source is listed among the departed nodes.
pub fn repair_with(
    instance: &Instance,
    departed: &[NodeId],
    solver: &dyn Solver,
    ctx: &mut EvalCtx,
) -> Result<Option<RepairPlan>, CoreError> {
    let Some((reduced, id_map)) = reduce_instance(instance, departed) else {
        return Ok(None);
    };
    let solution = solver.solve(&reduced, ctx)?;
    let edges = translate_edges(&solution.scheme, &id_map);
    Ok(Some(RepairPlan {
        algorithm: solution.algorithm,
        throughput: solution.throughput,
        edges,
    }))
}

/// Rebuilds an instance without the departed nodes and re-runs the acyclic solver.
///
/// Returns `None` when no receiver survives.
///
/// # Panics
///
/// Panics if the source is listed among the departed nodes.
#[must_use]
pub fn repair(
    instance: &Instance,
    departed: &[NodeId],
    solver: &AcyclicGuardedSolver,
) -> Option<RepairOutcome> {
    let (reduced, id_map) = reduce_instance(instance, departed)?;
    let solution = solver.solve(&reduced);
    Some(RepairOutcome {
        instance: reduced,
        solution,
        id_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    #[test]
    fn departure_of_a_relay_collapses_the_static_overlay() {
        // In the Figure 1 solution the guarded node C3 relays a large share of the rate: if
        // it leaves and the overlay is not recomputed, the surviving receivers starve.
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let nominal = solution.throughput;
        let residual = residual_throughput(&solution.scheme, &[3]);
        assert!(
            residual < 0.75 * nominal,
            "residual {residual} vs nominal {nominal}"
        );
    }

    #[test]
    fn departure_of_a_leaf_is_harmless() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        // C5 is the last guarded node: it relays little, so removing it barely matters for
        // the others.
        let residual = residual_throughput(&solution.scheme, &[5]);
        assert!(residual + 1e-9 >= 0.9 * solution.throughput);
    }

    #[test]
    fn no_departure_keeps_the_nominal_throughput() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let residual = residual_throughput(&solution.scheme, &[]);
        assert!((residual - solution.scheme.throughput()).abs() < 1e-9);
    }

    #[test]
    fn context_variant_matches_one_shot_across_departures() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        for departed in [&[][..], &[3][..], &[5][..], &[1, 4][..]] {
            assert_eq!(
                residual_throughput_with(&solution.scheme, departed, &mut ctx),
                residual_throughput(&solution.scheme, departed)
            );
        }
        assert!(ctx.flow_solves() > 0);
    }

    #[test]
    fn degradation_tolerance_separates_relays_from_leaves() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        ctx.set_journal_enabled(true); // immune to the CI journal-off matrix
        let floor = 0.9 * solution.throughput;
        // The guarded relay C3 carries a large share of the rate: it cannot degrade far
        // before the floor breaks.
        let relay = degradation_tolerance(&solution.scheme, 3, floor, &mut ctx);
        // The last guarded node relays little: it tolerates much more degradation.
        let leaf = degradation_tolerance(&solution.scheme, 5, floor, &mut ctx);
        assert!(
            relay < leaf,
            "relay tolerance {relay} should be below leaf tolerance {leaf}"
        );
        assert!((0.0..=1.0).contains(&relay));
        assert!((0.0..=1.0).contains(&leaf));
        // The probes bisect and ride the dirty-edge journal.
        assert!(ctx.bisection_iters() > 0);
        assert!(ctx.rescans_skipped() > 0);
    }

    #[test]
    fn degradation_tolerance_honors_trivial_floors() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        // A zero floor survives losing the node entirely.
        assert_eq!(
            degradation_tolerance(&solution.scheme, 3, 0.0, &mut ctx),
            1.0
        );
        // A floor above the nominal throughput fails immediately.
        let t = solution.throughput;
        assert_eq!(
            degradation_tolerance(&solution.scheme, 3, 2.0 * t, &mut ctx),
            0.0
        );
    }

    #[test]
    fn degradation_probe_matches_a_hand_scaled_evaluation() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let mut ctx = EvalCtx::new();
        let floor = 0.8 * solution.throughput;
        let d = degradation_tolerance(&solution.scheme, 0, floor, &mut ctx);
        // Re-scale by hand at the returned tolerance and just below the breaking point:
        // the floor must hold there and fail slightly above.
        let verify = |degradation: f64| {
            let mut scaled = solution.scheme.clone();
            for (from, to, rate) in solution.scheme.edges() {
                if from == 0 {
                    scaled.set_rate(from, to, rate * (1.0 - degradation));
                }
            }
            scaled.throughput()
        };
        assert!(verify(d) + 1e-6 >= floor);
        if d < 1.0 - 1e-6 {
            assert!(verify((d + 0.05).min(1.0)) < floor + 1e-6);
        }
    }

    #[test]
    fn repair_restores_a_feasible_low_degree_overlay() {
        let solver = AcyclicGuardedSolver::default();
        let instance = figure1();
        let outcome = repair(&instance, &[3], &solver).unwrap();
        assert_eq!(outcome.instance.num_receivers(), 4);
        assert_eq!(outcome.instance.m(), 2);
        assert!(outcome.solution.scheme.is_feasible());
        // The repaired throughput is the optimum of the reduced platform and is certified by
        // max-flow.
        assert!(outcome.solution.scheme.throughput() + 1e-6 >= outcome.solution.throughput);
        // The id map covers the source and the four survivors.
        assert_eq!(outcome.id_map.len(), 5);
        assert!(outcome.id_map.iter().all(|&(old, _)| old != 3));
    }

    #[test]
    fn repaired_edges_translate_back_to_original_ids() {
        let solver = AcyclicGuardedSolver::default();
        let instance = figure1();
        let outcome = repair(&instance, &[3], &solver).unwrap();
        let edges = outcome.edges_in_original_ids();
        assert_eq!(edges.len(), outcome.solution.scheme.edges().len());
        for &(from, to, rate) in &edges {
            assert_ne!(from, 3, "departed node reappeared as sender");
            assert_ne!(to, 3, "departed node reappeared as receiver");
            assert!(from < instance.num_nodes() && to < instance.num_nodes());
            assert!(rate > 0.0);
        }
        // The translated overlay delivers the repaired throughput to the survivors.
        let survivors: Vec<NodeId> = (1..instance.num_nodes()).filter(|&v| v != 3).collect();
        let mut ctx = EvalCtx::new();
        let value = ctx.min_max_flow(instance.num_nodes(), &edges, 0, &survivors);
        assert!(
            (value - outcome.solution.throughput).abs() < 1e-6,
            "translated overlay delivers {value} vs repaired {}",
            outcome.solution.throughput
        );
    }

    #[test]
    fn repair_after_all_receivers_depart_is_none() {
        let solver = AcyclicGuardedSolver::default();
        let instance = figure1();
        assert!(repair(&instance, &[1, 2, 3, 4, 5], &solver).is_none());
    }

    #[test]
    fn repair_with_matches_the_legacy_repair() {
        use crate::solver::AcyclicGuardedAlgorithm;
        let instance = figure1();
        let legacy = repair(&instance, &[3], &AcyclicGuardedSolver::default()).unwrap();
        let mut ctx = EvalCtx::new();
        let plan = repair_with(&instance, &[3], &AcyclicGuardedAlgorithm, &mut ctx)
            .unwrap()
            .unwrap();
        assert_eq!(plan.algorithm, "acyclic-guarded");
        assert!((plan.throughput - legacy.solution.throughput).abs() < 1e-9);
        assert_eq!(plan.edges, legacy.edges_in_original_ids());
    }

    #[test]
    fn repair_with_propagates_injected_solver_faults() {
        use crate::faults::InjectedFaults;
        use crate::solver::AcyclicGuardedAlgorithm;
        let instance = figure1();
        let mut ctx = EvalCtx::new();
        ctx.set_injected_faults(Some(InjectedFaults::new(vec![0], vec![], vec![])));
        let err = repair_with(&instance, &[3], &AcyclicGuardedAlgorithm, &mut ctx).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InjectedFault {
                site: "solve",
                occurrence: 0
            }
        ));
        // The script is spent: the next attempt through the same context succeeds.
        let plan = repair_with(&instance, &[3], &AcyclicGuardedAlgorithm, &mut ctx).unwrap();
        assert!(plan.is_some());
    }

    #[test]
    fn repair_with_after_all_receivers_depart_is_none() {
        use crate::solver::AcyclicGuardedAlgorithm;
        let mut ctx = EvalCtx::new();
        let plan = repair_with(
            &figure1(),
            &[1, 2, 3, 4, 5],
            &AcyclicGuardedAlgorithm,
            &mut ctx,
        )
        .unwrap();
        assert!(plan.is_none());
    }

    #[test]
    fn try_degradation_tolerance_matches_and_times_out_on_schedule() {
        use crate::faults::{FaultSite, InjectedFaults};
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let floor = 0.9 * solution.throughput;
        let mut ctx = EvalCtx::new();
        let plain = degradation_tolerance(&solution.scheme, 3, floor, &mut ctx);
        let fallible = try_degradation_tolerance(&solution.scheme, 3, floor, &mut ctx).unwrap();
        assert_eq!(plain, fallible);
        ctx.set_injected_faults(Some(
            InjectedFaults::default().and_fail(FaultSite::Probe, 1),
        ));
        assert!(try_degradation_tolerance(&solution.scheme, 3, floor, &mut ctx).is_ok());
        let err = try_degradation_tolerance(&solution.scheme, 3, floor, &mut ctx).unwrap_err();
        assert!(matches!(err, CoreError::Timeout { .. }));
        assert!(err.to_string().contains("node 3"));
    }

    #[test]
    #[should_panic(expected = "source cannot depart")]
    fn source_departure_is_rejected() {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&figure1());
        let _ = residual_throughput(&solution.scheme, &[0]);
        let _ = repair(&figure1(), &[0], &solver);
    }
}
