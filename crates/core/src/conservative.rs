//! Conservative solutions and per-order throughput (Lemmas 4.2 and 4.3).
//!
//! A solution is *conservative* with respect to an order when open bandwidth is never used to
//! feed an open node while some earlier guarded node still has unused upload capacity.
//! Lemma 4.3 shows conservative solutions dominate, which is why the whole acyclic analysis
//! can be carried out on the `(O, G, W)` bookkeeping of [`crate::word`].
//!
//! This module provides the glue between explicit node orders and coding words, plus a
//! checker for the conservativeness property used by the tests to reproduce the Figure 2 /
//! Figure 4 discussion of the paper.

use crate::error::CoreError;
use crate::scheme::{BroadcastScheme, RATE_EPS};
use crate::word::{optimal_throughput_for_word, CodingWord, Symbol};
use bmp_flow::eps;
use bmp_platform::{Instance, NodeClass, NodeId};

/// Validates that `order` is a permutation of all nodes starting with the source.
///
/// # Errors
///
/// Returns [`CoreError::InvalidOrder`] otherwise.
pub fn validate_order(instance: &Instance, order: &[NodeId]) -> Result<(), CoreError> {
    if order.len() != instance.num_nodes() {
        return Err(CoreError::InvalidOrder(format!(
            "order has {} entries, instance has {} nodes",
            order.len(),
            instance.num_nodes()
        )));
    }
    if order.first() != Some(&0) {
        return Err(CoreError::InvalidOrder(
            "the source must come first".to_string(),
        ));
    }
    let mut seen = vec![false; instance.num_nodes()];
    for &node in order {
        if node >= instance.num_nodes() {
            return Err(CoreError::InvalidOrder(format!("node {node} out of range")));
        }
        if seen[node] {
            return Err(CoreError::InvalidOrder(format!("node {node} repeated")));
        }
        seen[node] = true;
    }
    Ok(())
}

/// Whether `order` is an *increasing* order: inside each class, nodes appear by
/// non-increasing bandwidth, i.e. by increasing index (Lemma 4.2).
///
/// # Errors
///
/// Returns [`CoreError::InvalidOrder`] when `order` is not a valid order at all.
pub fn is_increasing_order(instance: &Instance, order: &[NodeId]) -> Result<bool, CoreError> {
    validate_order(instance, order)?;
    let mut last_open = 0usize;
    let mut last_guarded = instance.n();
    for &node in &order[1..] {
        match instance.class(node) {
            NodeClass::Open => {
                if node < last_open {
                    return Ok(false);
                }
                last_open = node;
            }
            NodeClass::Guarded => {
                if node < last_guarded {
                    return Ok(false);
                }
                last_guarded = node;
            }
            NodeClass::Source => unreachable!("source already consumed"),
        }
    }
    Ok(true)
}

/// Converts an increasing order into its coding word.
///
/// # Errors
///
/// Returns [`CoreError::InvalidOrder`] when the order is malformed or not increasing.
pub fn order_to_word(instance: &Instance, order: &[NodeId]) -> Result<CodingWord, CoreError> {
    if !is_increasing_order(instance, order)? {
        return Err(CoreError::InvalidOrder(
            "order is not increasing (nodes of a class must appear by non-increasing bandwidth)"
                .to_string(),
        ));
    }
    let mut word = CodingWord::empty();
    for &node in &order[1..] {
        match instance.class(node) {
            NodeClass::Open => word.push(Symbol::Open),
            NodeClass::Guarded => word.push(Symbol::Guarded),
            NodeClass::Source => unreachable!("source already consumed"),
        }
    }
    Ok(word)
}

/// Optimal acyclic throughput `T*_ac(σ)` for an increasing order `σ`, computed by the
/// shared dichotomic driver ([`crate::search::DichotomicSearch`], via
/// [`optimal_throughput_for_word`]) on the word-validity conditions.
///
/// # Errors
///
/// Returns [`CoreError::InvalidOrder`] when the order is malformed or not increasing.
pub fn optimal_throughput_for_order(
    instance: &Instance,
    order: &[NodeId],
    tolerance: f64,
) -> Result<f64, CoreError> {
    let word = order_to_word(instance, order)?;
    Ok(optimal_throughput_for_word(instance, &word, tolerance))
}

/// Whether `scheme` is compatible with `order`: every positive rate goes from an earlier node
/// of the order to a later one (this is the acyclicity witness used throughout Section IV).
///
/// # Errors
///
/// Returns [`CoreError::InvalidOrder`] when the order is malformed.
pub fn is_compatible_with_order(
    scheme: &BroadcastScheme,
    order: &[NodeId],
) -> Result<bool, CoreError> {
    let instance = scheme.instance();
    validate_order(instance, order)?;
    let mut position = vec![0usize; instance.num_nodes()];
    for (pos, &node) in order.iter().enumerate() {
        position[node] = pos;
    }
    for (from, to, _) in scheme.edges() {
        if position[from] >= position[to] {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Whether `scheme` is *conservative* with respect to `order` (Section IV-A).
///
/// A violation is a triplet of positions `i < k`, `j < k` such that `σ(i)` is guarded,
/// `σ(j)` and `σ(k)` are open, the open node `σ(j)` sends data to `σ(k)` while the guarded
/// node `σ(i)` still has upload capacity left after serving the nodes up to position `k`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidOrder`] when the order is malformed.
pub fn is_conservative(scheme: &BroadcastScheme, order: &[NodeId]) -> Result<bool, CoreError> {
    let instance = scheme.instance();
    validate_order(instance, order)?;
    let len = order.len();
    for k in 1..len {
        let node_k = order[k];
        if instance.class(node_k) != NodeClass::Open {
            continue;
        }
        for j in 0..k {
            let node_j = order[j];
            if !instance.is_open_like(node_j) || scheme.rate(node_j, node_k) <= RATE_EPS {
                continue;
            }
            // σ(j) (open-like) feeds the open node σ(k): no earlier guarded node may have
            // spare capacity towards the prefix ending at k.
            for i in 0..k {
                let node_i = order[i];
                if instance.class(node_i) != NodeClass::Guarded {
                    continue;
                }
                let used_up_to_k: f64 = order[i + 1..=k]
                    .iter()
                    .map(|&l| scheme.rate(node_i, l))
                    .sum();
                if eps::definitely_lt(used_up_to_k, instance.bandwidth(node_i)) {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    fn figure2_scheme() -> (BroadcastScheme, Vec<NodeId>) {
        // The conservative acyclic scheme of Figure 2, order σ = 0 3 1 2 4 5.
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 3, 4.0);
        s.set_rate(0, 2, 2.0);
        s.set_rate(3, 1, 4.0);
        s.set_rate(1, 2, 2.0);
        s.set_rate(1, 4, 3.0);
        s.set_rate(2, 4, 1.0);
        s.set_rate(2, 5, 4.0);
        (s, vec![0, 3, 1, 2, 4, 5])
    }

    fn figure4_scheme() -> (BroadcastScheme, Vec<NodeId>) {
        // The non-conservative scheme of Figure 4: C1 could be fed entirely by the guarded
        // node C3 but takes 2 units from the source instead.
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 3, 4.0);
        s.set_rate(0, 1, 2.0);
        s.set_rate(3, 1, 2.0);
        s.set_rate(3, 2, 2.0);
        s.set_rate(1, 2, 2.0);
        s.set_rate(1, 4, 3.0);
        s.set_rate(2, 4, 1.0);
        s.set_rate(2, 5, 4.0);
        (s, vec![0, 3, 1, 2, 4, 5])
    }

    #[test]
    fn order_validation() {
        let inst = figure1();
        assert!(validate_order(&inst, &[0, 1, 2, 3, 4, 5]).is_ok());
        assert!(validate_order(&inst, &[1, 0, 2, 3, 4, 5]).is_err());
        assert!(validate_order(&inst, &[0, 1, 2, 3, 4]).is_err());
        assert!(validate_order(&inst, &[0, 1, 1, 3, 4, 5]).is_err());
        assert!(validate_order(&inst, &[0, 1, 2, 3, 4, 9]).is_err());
    }

    #[test]
    fn increasing_orders() {
        let inst = figure1();
        assert!(is_increasing_order(&inst, &[0, 3, 1, 2, 4, 5]).unwrap());
        assert!(is_increasing_order(&inst, &[0, 1, 2, 3, 4, 5]).unwrap());
        // σ = 0 4 1 2 3 5 uses guarded node 4 before guarded node 3: not increasing.
        assert!(!is_increasing_order(&inst, &[0, 4, 1, 2, 3, 5]).unwrap());
        // Swapping the two open nodes is also not increasing.
        assert!(!is_increasing_order(&inst, &[0, 2, 1, 3, 4, 5]).unwrap());
    }

    #[test]
    fn order_word_roundtrip() {
        let inst = figure1();
        let order = vec![0, 3, 1, 2, 4, 5];
        let word = order_to_word(&inst, &order).unwrap();
        assert_eq!(word.to_string(), "googg");
        assert_eq!(word.to_order(&inst).unwrap(), order);
        assert!(order_to_word(&inst, &[0, 4, 1, 2, 3, 5]).is_err());
    }

    #[test]
    fn per_order_optimum_matches_manual_values() {
        let inst = figure1();
        // Both the Figure 2 order and the Figure 5 order reach the optimal acyclic value 4.
        let t = optimal_throughput_for_order(&inst, &[0, 3, 1, 2, 4, 5], 1e-12).unwrap();
        assert!((t - 4.0).abs() < 1e-6);
        let t = optimal_throughput_for_order(&inst, &[0, 3, 1, 4, 2, 5], 1e-12).unwrap();
        assert!((t - 4.0).abs() < 1e-6);
        // Putting both open nodes first wastes open bandwidth: only 3.2 is achievable.
        let t = optimal_throughput_for_order(&inst, &[0, 1, 2, 3, 4, 5], 1e-12).unwrap();
        assert!((t - 3.2).abs() < 1e-6);
    }

    #[test]
    fn figure2_scheme_is_conservative_and_compatible() {
        let (scheme, order) = figure2_scheme();
        assert!(is_compatible_with_order(&scheme, &order).unwrap());
        assert!(is_conservative(&scheme, &order).unwrap());
    }

    #[test]
    fn figure4_scheme_is_not_conservative() {
        let (scheme, order) = figure4_scheme();
        assert!(scheme.is_feasible());
        assert!(is_compatible_with_order(&scheme, &order).unwrap());
        assert!(!is_conservative(&scheme, &order).unwrap());
    }

    #[test]
    fn compatibility_detects_backward_edges() {
        let (mut scheme, order) = figure2_scheme();
        scheme.set_rate(4, 3, 0.0); // still zero: no change
        assert!(is_compatible_with_order(&scheme, &order).unwrap());
        scheme.set_rate(2, 3, 0.5); // node 2 is after node 3 is before... σ places 3 before 2
        assert!(!is_compatible_with_order(&scheme, &order).unwrap());
    }
}
