//! Cyclic broadcast for instances without guarded nodes (Theorem 5.2).
//!
//! The optimal cyclic throughput without guarded nodes is `T* = min(b_0, (b_0+O)/n)`, which
//! can exceed the acyclic optimum because the smallest node's bandwidth no longer has to be
//! wasted. The constructive algorithm of the paper proceeds in two phases:
//!
//! 1. run Algorithm 1 until the first index `i_0` with `S_{i_0−1} < i_0·T` (if there is no
//!    such index the acyclic scheme already reaches `T`);
//! 2. starting from that `(i_0−1)`-partial solution, insert the remaining nodes one by one
//!    with local flow re-routings (the "initial case" inserts `C_{i_0}` and `C_{i_0+1}`
//!    together, the "induction case" inserts each subsequent node), keeping the invariant
//!    that consecutive inserted nodes exchange a total flow of exactly `T`.
//!
//! Every node of the resulting scheme has outdegree at most `max(⌈b_i/T⌉ + 2, 4)`.

use crate::bounds::cyclic_open_optimum;
use crate::error::CoreError;
use crate::scheme::{BroadcastScheme, RATE_EPS};
use bmp_flow::eps;
use bmp_platform::Instance;

/// Builds a cyclic scheme of throughput `throughput` for an instance without guarded nodes.
///
/// # Errors
///
/// * [`CoreError::GuardedNodesNotSupported`] if the instance has guarded nodes,
/// * [`CoreError::InfeasibleThroughput`] if `throughput > min(b_0, (b_0+O)/n)`.
pub fn cyclic_open_scheme(
    instance: &Instance,
    throughput: f64,
) -> Result<BroadcastScheme, CoreError> {
    if instance.has_guarded() {
        return Err(CoreError::GuardedNodesNotSupported {
            algorithm: "cyclic construction (Theorem 5.2)",
        });
    }
    let optimum = cyclic_open_optimum(instance)?;
    if eps::definitely_gt(throughput, optimum) {
        return Err(CoreError::InfeasibleThroughput {
            requested: throughput,
            optimum,
        });
    }
    let t = throughput.min(optimum);
    let n = instance.n();
    let mut scheme = BroadcastScheme::new(instance.clone());
    if t <= 0.0 || n == 0 {
        return Ok(scheme);
    }

    // Phase 1: find i0, the first index whose prefix cannot be served acyclically.
    let i0 = first_deficient_index(instance, t);
    let Some(i0) = i0 else {
        // No deficiency: Algorithm 1 directly yields a (acyclic, hence cyclic) scheme.
        return crate::acyclic_open::acyclic_open_scheme(instance, t);
    };

    // (i0 − 1)-partial solution: receivers 1..i0−1 served at rate T from senders 0..i0−1 in
    // order, the leftover (T − M_{i0}) partially feeding C_{i0}.
    build_partial(instance, t, i0, &mut scheme);

    let missing = |i: usize| -> f64 { i as f64 * t - instance.prefix_sum(i - 1) };

    // Initial case: insert C_{i0} (and C_{i0+1} when it exists).
    let m_i0 = missing(i0);
    debug_assert!(m_i0 > -1e-9 && m_i0 <= t + 1e-9);
    // Donor edge (u, v) with flow at least M_{i0}: the source necessarily sends T ≥ M_{i0} to
    // C_1 in the partial solution.
    let (u, v) = (0usize, 1usize);
    debug_assert!(scheme.rate(u, v) + 1e-9 >= m_i0);

    if i0 == n {
        // Last node: no C_{i0+1}; apply the initial transformation with α = β = 0.
        scheme.add_rate(u, v, -m_i0);
        scheme.add_rate(u, i0, m_i0);
        if m_i0 > RATE_EPS {
            scheme.add_rate(i0, v, m_i0);
        }
        scheme.prune_dust();
        return Ok(scheme);
    }

    let m_next = missing(i0 + 1).max(0.0);
    let alpha = (m_next - m_i0).max(0.0);
    let beta = m_next - alpha;
    let r_i0 = instance.bandwidth(i0) - m_i0;

    // Reroute α of the flow currently entering C_{i0} towards C_{i0+1} (taking it from the
    // largest donors first so that as few nodes as possible gain an edge).
    reroute_incoming(&mut scheme, i0, i0 + 1, alpha);
    // M_{i0} moves from the donor edge (u, v) onto (u, C_{i0}).
    scheme.add_rate(u, v, -m_i0);
    scheme.add_rate(u, i0, m_i0);
    // C_{i0} forwards its whole bandwidth: R + β to C_{i0+1} and M − β back to C_v.
    if r_i0 + beta > RATE_EPS {
        scheme.add_rate(i0, i0 + 1, r_i0 + beta);
    }
    if m_i0 - beta > RATE_EPS {
        scheme.add_rate(i0, v, m_i0 - beta);
    }
    // C_{i0+1} sends β to C_v and α back to C_{i0}.
    if beta > RATE_EPS {
        scheme.add_rate(i0 + 1, v, beta);
    }
    if alpha > RATE_EPS {
        scheme.add_rate(i0 + 1, i0, alpha);
    }

    // Induction: insert C_{i+1} for i = i0+1, …, n−1.
    for i in (i0 + 1)..n {
        let m_next = missing(i + 1).max(0.0);
        let r_i = instance.bandwidth(i) - missing(i);
        let c_back = scheme.rate(i, i - 1);
        let alpha = (m_next - c_back).max(0.0);
        let beta = m_next - alpha;
        debug_assert!(alpha <= scheme.rate(i - 1, i) + 1e-9);
        // Divert part of the exchange between C_{i−1} and C_i through C_{i+1}.
        scheme.add_rate(i, i - 1, -beta);
        scheme.add_rate(i - 1, i, -alpha);
        if alpha > RATE_EPS {
            scheme.add_rate(i - 1, i + 1, alpha);
            scheme.add_rate(i + 1, i, alpha);
        }
        if r_i + beta > RATE_EPS {
            scheme.add_rate(i, i + 1, r_i + beta);
        }
        if beta > RATE_EPS {
            scheme.add_rate(i + 1, i - 1, beta);
        }
    }
    scheme.prune_dust();
    Ok(scheme)
}

/// Builds the optimal cyclic scheme (`T = min(b_0, (b_0+O)/n)`) and returns it with its
/// throughput.
///
/// # Errors
///
/// Returns [`CoreError::GuardedNodesNotSupported`] if the instance has guarded nodes.
pub fn cyclic_open_optimal_scheme(
    instance: &Instance,
) -> Result<(BroadcastScheme, f64), CoreError> {
    let optimum = cyclic_open_optimum(instance)?;
    let scheme = cyclic_open_scheme(instance, optimum)?;
    Ok((scheme, optimum))
}

/// First index `i ∈ 1..=n` with `S_{i−1} < i·T`, or `None` when the acyclic construction
/// already works.
fn first_deficient_index(instance: &Instance, t: f64) -> Option<usize> {
    let n = instance.n();
    let mut prefix = 0.0;
    for i in 1..=n {
        prefix += instance.bandwidth(i - 1);
        if eps::definitely_lt(prefix, i as f64 * t) {
            return Some(i);
        }
    }
    None
}

/// Fills the `(i0 − 1)`-partial solution: receivers `1..i0−1` fully served at rate `t` by the
/// senders `0..i0−1` taken in order, the remainder going to `C_{i0}`.
fn build_partial(instance: &Instance, t: f64, i0: usize, scheme: &mut BroadcastScheme) {
    let tol = 1e-12 * t.max(1.0);
    let mut receiver = 1usize;
    let mut need = t;
    for sender in 0..i0 {
        let mut supply = instance.bandwidth(sender);
        while supply > tol && receiver <= i0 {
            let transfer = need.min(supply);
            if transfer > tol {
                scheme.add_rate(sender, receiver, transfer);
            }
            need -= transfer;
            supply -= transfer;
            if need <= tol {
                receiver += 1;
                need = t;
            }
        }
    }
}

/// Moves `amount` of the flow currently entering `target` so that it enters `new_target`
/// instead, taking it from the largest contributing edges first.
fn reroute_incoming(scheme: &mut BroadcastScheme, target: usize, new_target: usize, amount: f64) {
    if amount <= RATE_EPS {
        return;
    }
    let mut donors: Vec<(usize, f64)> = (0..scheme.instance().num_nodes())
        .filter(|&u| u != target && u != new_target)
        .map(|u| (u, scheme.rate(u, target)))
        .filter(|&(_, r)| r > RATE_EPS)
        .collect();
    donors.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut left = amount;
    for (donor, rate) in donors {
        if left <= RATE_EPS {
            break;
        }
        let moved = rate.min(left);
        scheme.add_rate(donor, target, -moved);
        scheme.add_rate(donor, new_target, moved);
        left -= moved;
    }
    debug_assert!(
        left <= 1e-6,
        "could not reroute {left} of the incoming flow of node {target}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::{figure1, figure11, figure14};

    /// Full feasibility + throughput + degree-bound check of Theorem 5.2.
    fn check(instance: &Instance, t: f64) -> BroadcastScheme {
        let scheme = cyclic_open_scheme(instance, t).expect("feasible");
        assert!(scheme.is_feasible(), "violations: {:?}", scheme.validate());
        let achieved = scheme.throughput();
        assert!(
            achieved + 1e-6 >= t,
            "achieved {achieved} < requested {t} on {:?}",
            instance.bandwidths()
        );
        for node in 0..instance.num_nodes() {
            let degree = scheme.outdegree(node);
            let bound = bmp_platform::node::degree_lower_bound(instance.bandwidth(node), t) + 2;
            assert!(
                degree <= bound.max(4),
                "node {node} has degree {degree} > max({bound}, 4)"
            );
        }
        scheme
    }

    #[test]
    fn figure11_instance_i0_equals_n() {
        // b = [5, 5, 3, 2], T = 5: i0 = 3 = n (Figures 11 and 12 of the paper).
        let inst = figure11();
        let (scheme, t) = cyclic_open_optimal_scheme(&inst).unwrap();
        assert!((t - 5.0).abs() < 1e-12);
        assert!(scheme.is_feasible());
        assert!((scheme.throughput() - 5.0).abs() < 1e-9);
        // The acyclic optimum is strictly smaller: min(5, 13/3) ≈ 4.33.
        let acyclic = crate::bounds::acyclic_open_optimum(&inst).unwrap();
        assert!(acyclic < 5.0 - 1e-9);
        check(&inst, t);
    }

    #[test]
    fn figure14_instance_with_induction_steps() {
        // b = [5, 5, 4, 4, 4, 3], T = 5: i0 = 3 < n = 5 (Figures 14 to 17).
        let inst = figure14();
        let (scheme, t) = cyclic_open_optimal_scheme(&inst).unwrap();
        assert!((t - 5.0).abs() < 1e-12);
        assert!((scheme.throughput() - 5.0).abs() < 1e-9);
        check(&inst, t);
        // The scheme is genuinely cyclic (back edges between consecutive nodes exist).
        assert!(!scheme.is_acyclic());
    }

    #[test]
    fn no_deficiency_falls_back_to_algorithm_1() {
        // Large source: the acyclic construction already reaches the cyclic optimum.
        let inst = Instance::open_only(4.0, vec![4.0, 4.0, 4.0, 4.0]).unwrap();
        let (scheme, t) = cyclic_open_optimal_scheme(&inst).unwrap();
        assert!((t - 4.0).abs() < 1e-12);
        assert!(scheme.is_acyclic());
        assert!((scheme.throughput() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_instances_reach_cyclic_optimum() {
        let cases = vec![
            Instance::open_only(10.0, vec![9.0, 7.0, 3.0, 1.0]).unwrap(),
            Instance::open_only(6.0, vec![6.0, 6.0, 1.0, 1.0, 1.0]).unwrap(),
            Instance::open_only(3.0, vec![3.0, 2.0, 2.0, 2.0, 1.0, 0.5]).unwrap(),
            Instance::open_only(100.0, vec![1.0; 12]).unwrap(),
            Instance::open_only(2.0, vec![5.0, 0.1]).unwrap(),
            // i0 < n: the induction case of Theorem 5.2 runs for two steps.
            Instance::open_only(5.0, vec![5.0, 4.0, 4.0, 4.0, 4.0, 3.0]).unwrap(),
            Instance::open_only(4.9, vec![1.0, 1.0, 1.0, 1.0, 1.0]).unwrap(),
        ];
        for inst in cases {
            let optimum = cyclic_open_optimum(&inst).unwrap();
            check(&inst, optimum);
        }
    }

    #[test]
    fn cyclic_beats_acyclic_when_last_node_matters() {
        // One tiny node: acyclically its bandwidth is wasted, cyclically it is not.
        let inst = Instance::open_only(4.0, vec![4.0, 4.0, 4.0]).unwrap();
        let acyclic = crate::bounds::acyclic_open_optimum(&inst).unwrap();
        let cyclic = cyclic_open_optimum(&inst).unwrap();
        assert!((acyclic - 4.0).abs() < 1e-12);
        assert!((cyclic - 4.0).abs() < 1e-12);
        let inst = Instance::open_only(10.0, vec![4.0, 4.0, 1.0]).unwrap();
        let acyclic = crate::bounds::acyclic_open_optimum(&inst).unwrap();
        let cyclic = cyclic_open_optimum(&inst).unwrap();
        assert!((acyclic - 6.0).abs() < 1e-12);
        assert!(cyclic > acyclic + 0.3);
        check(&inst, cyclic);
    }

    #[test]
    fn sub_optimal_targets_also_work() {
        let inst = figure14();
        for t in [1.0, 2.5, 4.0, 4.9, 5.0] {
            check(&inst, t);
        }
    }

    #[test]
    fn rejects_guarded_instances_and_infeasible_targets() {
        assert!(matches!(
            cyclic_open_scheme(&figure1(), 1.0).unwrap_err(),
            CoreError::GuardedNodesNotSupported { .. }
        ));
        let inst = figure11();
        assert!(matches!(
            cyclic_open_scheme(&inst, 5.1).unwrap_err(),
            CoreError::InfeasibleThroughput { .. }
        ));
    }

    #[test]
    fn theorem_6_1_ratio_on_random_like_instances() {
        // T*_ac / T* ≥ 1 − 1/n for open-only instances.
        let cases = vec![
            Instance::open_only(5.0, vec![4.0, 3.0, 2.0, 1.0]).unwrap(),
            Instance::open_only(2.0, vec![10.0, 1.0, 1.0]).unwrap(),
            Instance::open_only(7.0, vec![6.5, 6.0, 5.5, 0.1]).unwrap(),
        ];
        for inst in cases {
            let acyclic = crate::bounds::acyclic_open_optimum(&inst).unwrap();
            let cyclic = cyclic_open_optimum(&inst).unwrap();
            let bound = crate::bounds::theorem61_ratio_bound(inst.n());
            assert!(acyclic / cyclic + 1e-12 >= bound);
        }
    }

    #[test]
    fn two_node_instance() {
        let inst = Instance::open_only(1.0, vec![3.0, 3.0]).unwrap();
        // Cyclic optimum: min(1, 7/2) = 1.
        let (scheme, t) = cyclic_open_optimal_scheme(&inst).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        assert!((scheme.throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_throughput() {
        let inst = figure11();
        let scheme = cyclic_open_scheme(&inst, 0.0).unwrap();
        assert!(scheme.edges().is_empty());
    }
}
