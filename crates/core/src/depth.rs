//! Depth and delay analysis of broadcast schemes.
//!
//! The conclusion of the paper lists "optimizing the depth of produced schemes in order to
//! minimize delays" as a natural extension of the model: the throughput analysis says nothing
//! about *how many overlay hops* separate a node from the source, yet in live streaming the
//! hop count translates directly into start-up delay. This module provides the measurement
//! side of that extension:
//!
//! * per-node hop depth (fewest overlay hops from the source),
//! * per-node bottleneck-aware delay estimate (along the best min-hop path, the time needed
//!   to forward one chunk over each hop at the edge's allocated rate),
//! * summary statistics used by the depth ablation experiment.

use crate::scheme::{BroadcastScheme, RATE_EPS};
use bmp_platform::NodeId;
use std::collections::VecDeque;

/// Depth / delay profile of a scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthProfile {
    /// Hop depth of every node (0 for the source, `None` for unreachable nodes).
    pub hops: Vec<Option<usize>>,
    /// Chunk-forwarding delay estimate of every node: minimum over paths of the sum of
    /// `1 / rate` along the path (in time units per unit of chunk size).
    pub delay: Vec<Option<f64>>,
}

impl DepthProfile {
    /// Largest hop depth over the receivers (`None` when some receiver is unreachable).
    #[must_use]
    pub fn max_hops(&self) -> Option<usize> {
        self.hops[1..]
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// Mean hop depth over the receivers (`None` when some receiver is unreachable).
    #[must_use]
    pub fn mean_hops(&self) -> Option<f64> {
        let depths: Option<Vec<usize>> = self.hops[1..].iter().copied().collect();
        let depths = depths?;
        if depths.is_empty() {
            return Some(0.0);
        }
        Some(depths.iter().sum::<usize>() as f64 / depths.len() as f64)
    }

    /// Largest delay estimate over the receivers (`None` when some receiver is unreachable).
    #[must_use]
    pub fn max_delay(&self) -> Option<f64> {
        let delays: Option<Vec<f64>> = self.delay[1..].iter().copied().collect();
        delays?.into_iter().reduce(f64::max)
    }

    /// Whether every receiver is reachable from the source through positive-rate edges.
    #[must_use]
    pub fn all_reachable(&self) -> bool {
        self.hops[1..].iter().all(Option::is_some)
    }
}

/// Computes the depth profile of a scheme.
#[must_use]
pub fn depth_profile(scheme: &BroadcastScheme) -> DepthProfile {
    let n = scheme.instance().num_nodes();
    let adjacency: Vec<Vec<NodeId>> = (0..n)
        .map(|from| {
            (0..n)
                .filter(|&to| to != from && scheme.rate(from, to) > RATE_EPS)
                .collect()
        })
        .collect();

    // Hop depth: plain BFS.
    let mut hops: Vec<Option<usize>> = vec![None; n];
    hops[0] = Some(0);
    let mut queue = VecDeque::from([0usize]);
    while let Some(node) = queue.pop_front() {
        let next_depth = hops[node].expect("visited nodes have a depth") + 1;
        for &to in &adjacency[node] {
            if hops[to].is_none() {
                hops[to] = Some(next_depth);
                queue.push_back(to);
            }
        }
    }

    // Delay estimate: Dijkstra with edge weight 1 / rate.
    let mut delay: Vec<Option<f64>> = vec![None; n];
    delay[0] = Some(0.0);
    let mut visited = vec![false; n];
    for _ in 0..n {
        let current = (0..n)
            .filter(|&v| !visited[v] && delay[v].is_some())
            .min_by(|&a, &b| {
                delay[a]
                    .unwrap()
                    .partial_cmp(&delay[b].unwrap())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        let Some(current) = current else { break };
        visited[current] = true;
        let base = delay[current].expect("selected node has a delay");
        for &to in &adjacency[current] {
            let weight = 1.0 / scheme.rate(current, to);
            let candidate = base + weight;
            if delay[to].is_none_or(|existing| candidate < existing) {
                delay[to] = Some(candidate);
            }
        }
    }

    DepthProfile { hops, delay }
}

/// Comparison of the depth profiles of two schemes over the same instance (used by the depth
/// ablation experiment: optimal-acyclic word versus regular ω words versus cyclic schemes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthComparison {
    /// Maximum hop depth of the first scheme.
    pub first_max_hops: usize,
    /// Maximum hop depth of the second scheme.
    pub second_max_hops: usize,
    /// Mean hop depth of the first scheme.
    pub first_mean_hops: f64,
    /// Mean hop depth of the second scheme.
    pub second_mean_hops: f64,
}

/// Compares the depth profiles of two schemes. Returns `None` when either scheme leaves a
/// receiver unreachable.
#[must_use]
pub fn compare_depth(first: &BroadcastScheme, second: &BroadcastScheme) -> Option<DepthComparison> {
    let first_profile = depth_profile(first);
    let second_profile = depth_profile(second);
    Some(DepthComparison {
        first_max_hops: first_profile.max_hops()?,
        second_max_hops: second_profile.max_hops()?,
        first_mean_hops: first_profile.mean_hops()?,
        second_mean_hops: second_profile.mean_hops()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_guarded::AcyclicGuardedSolver;
    use crate::acyclic_open::acyclic_open_optimal_scheme;
    use bmp_platform::paper::figure1;
    use bmp_platform::Instance;

    #[test]
    fn chain_depth() {
        // Source-limited instance: Algorithm 1 builds a relay chain, so depth grows linearly.
        let inst = Instance::open_only(2.0, vec![2.0, 2.0, 2.0, 2.0]).unwrap();
        let (scheme, _) = acyclic_open_optimal_scheme(&inst).unwrap();
        let profile = depth_profile(&scheme);
        assert!(profile.all_reachable());
        assert_eq!(profile.hops[1], Some(1));
        assert_eq!(profile.max_hops(), Some(4));
        assert!((profile.mean_hops().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn star_depth() {
        // Large source: everyone is served directly, depth 1.
        let inst = Instance::open_only(100.0, vec![1.0, 1.0, 1.0]).unwrap();
        let (scheme, _) = acyclic_open_optimal_scheme(&inst).unwrap();
        let profile = depth_profile(&scheme);
        assert_eq!(profile.max_hops(), Some(1));
        assert!((profile.mean_hops().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure1_depth_and_delay() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let profile = depth_profile(&solution.scheme);
        assert!(profile.all_reachable());
        let max_hops = profile.max_hops().unwrap();
        assert!((2..=5).contains(&max_hops), "max hops = {max_hops}");
        // Delays are positive, finite, and monotone with hops along any single chain.
        for node in 1..6 {
            let d = profile.delay[node].unwrap();
            assert!(d.is_finite() && d > 0.0);
        }
        assert!(profile.max_delay().unwrap() > 0.0);
    }

    #[test]
    fn unreachable_nodes_are_reported() {
        let inst = figure1();
        let mut scheme = crate::scheme::BroadcastScheme::new(inst);
        scheme.set_rate(0, 1, 1.0);
        let profile = depth_profile(&scheme);
        assert!(!profile.all_reachable());
        assert_eq!(profile.hops[1], Some(1));
        assert_eq!(profile.hops[2], None);
        assert_eq!(profile.max_hops(), None);
        assert_eq!(profile.mean_hops(), None);
        assert_eq!(profile.max_delay(), None);
    }

    #[test]
    fn comparison_of_two_schemes() {
        let solver = AcyclicGuardedSolver::default();
        let inst = figure1();
        let optimal = solver.solve(&inst);
        let omega_word = crate::omega::omega1(inst.n(), inst.m());
        let t_omega = crate::word::optimal_throughput_for_word(&inst, &omega_word, 1e-10) - 1e-9;
        let omega_scheme = solver
            .scheme_for_word(&inst, t_omega.max(0.0), &omega_word)
            .unwrap();
        let comparison = compare_depth(&optimal.scheme, &omega_scheme).unwrap();
        assert!(comparison.first_max_hops >= 1);
        assert!(comparison.second_max_hops >= 1);
        assert!(comparison.first_mean_hops > 0.0);
        assert!(comparison.second_mean_hops > 0.0);
    }
}
