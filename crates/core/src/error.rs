//! Error type shared by the broadcast algorithms.

use std::fmt;

/// Errors raised by the broadcast scheduling algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The algorithm only supports instances without guarded nodes (`m = 0`).
    GuardedNodesNotSupported {
        /// Name of the algorithm that was invoked.
        algorithm: &'static str,
    },
    /// The requested throughput exceeds the optimum reachable by the algorithm.
    InfeasibleThroughput {
        /// Throughput that was requested.
        requested: f64,
        /// Largest feasible throughput (for the relevant solution class).
        optimum: f64,
    },
    /// A node ordering was malformed (wrong length, duplicates, or the source not first).
    InvalidOrder(String),
    /// A coding word was malformed with respect to the instance (wrong number of open or
    /// guarded symbols).
    InvalidWord(String),
    /// A registered solver cannot handle the given instance for a reason other than
    /// guarded nodes (e.g. the exhaustive oracle refusing an instance too large to
    /// enumerate).
    Unsupported {
        /// Name of the solver that was invoked.
        algorithm: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A solver produced a scheme whose max-flow verification fell short of the
    /// throughput it claimed — an internal invariant violation surfaced instead of
    /// silently returning an infeasible solution.
    VerificationFailed {
        /// Name of the solver that was invoked.
        algorithm: &'static str,
        /// Throughput the solver claimed.
        claimed: f64,
        /// Throughput the scheme actually achieves by max-flow.
        achieved: f64,
    },
    /// A deliberately injected fault from a fault-injection plan (resilience testing):
    /// the nth interception of the named site was scheduled to fail.
    InjectedFault {
        /// The interception site (`"solve"`, `"verify"`, `"probe"`).
        site: &'static str,
        /// Which occurrence of the site fired (0-based).
        occurrence: u64,
    },
    /// An operation exceeded its deadline (real or injected by a fault plan).
    Timeout {
        /// Human-readable description of what timed out.
        operation: String,
    },
    /// An error bubbled up from the LP cross-check oracle.
    Lp(bmp_lp::LpError),
    /// An error bubbled up from the platform layer.
    Platform(bmp_platform::PlatformError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::GuardedNodesNotSupported { algorithm } => {
                write!(
                    f,
                    "{algorithm} only supports instances without guarded nodes"
                )
            }
            CoreError::InfeasibleThroughput { requested, optimum } => write!(
                f,
                "requested throughput {requested} exceeds the optimum {optimum}"
            ),
            CoreError::InvalidOrder(reason) => write!(f, "invalid node ordering: {reason}"),
            CoreError::InvalidWord(reason) => write!(f, "invalid coding word: {reason}"),
            CoreError::Unsupported { algorithm, reason } => {
                write!(f, "{algorithm} does not support this instance: {reason}")
            }
            CoreError::VerificationFailed {
                algorithm,
                claimed,
                achieved,
            } => write!(
                f,
                "{algorithm} claimed throughput {claimed} but its scheme only achieves {achieved}"
            ),
            CoreError::InjectedFault { site, occurrence } => {
                write!(f, "injected fault at {site} (occurrence {occurrence})")
            }
            CoreError::Timeout { operation } => write!(f, "{operation} timed out"),
            CoreError::Lp(e) => write!(f, "LP oracle error: {e}"),
            CoreError::Platform(e) => write!(f, "platform error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<bmp_lp::LpError> for CoreError {
    fn from(e: bmp_lp::LpError) -> Self {
        CoreError::Lp(e)
    }
}

impl From<bmp_platform::PlatformError> for CoreError {
    fn from(e: bmp_platform::PlatformError) -> Self {
        CoreError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::GuardedNodesNotSupported {
            algorithm: "Algorithm 1",
        };
        assert!(e.to_string().contains("Algorithm 1"));
        let e = CoreError::InfeasibleThroughput {
            requested: 5.0,
            optimum: 4.0,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('4'));
        assert!(CoreError::InvalidOrder("dup".into())
            .to_string()
            .contains("dup"));
        assert!(CoreError::InvalidWord("bad".into())
            .to_string()
            .contains("bad"));
        let e = CoreError::Unsupported {
            algorithm: "exhaustive",
            reason: "too large".into(),
        };
        assert!(e.to_string().contains("exhaustive"));
        assert!(e.to_string().contains("too large"));
        let e = CoreError::VerificationFailed {
            algorithm: "acyclic-guarded",
            claimed: 4.0,
            achieved: 3.5,
        };
        assert!(e.to_string().contains("3.5"));
        let e = CoreError::InjectedFault {
            site: "solve",
            occurrence: 2,
        };
        assert!(e.to_string().contains("solve"));
        assert!(e.to_string().contains('2'));
        let e = CoreError::Timeout {
            operation: "degradation probe of node 3".into(),
        };
        assert!(e.to_string().contains("timed out"));
        assert!(e.to_string().contains("node 3"));
    }

    #[test]
    fn conversions() {
        let e: CoreError = bmp_lp::LpError::Infeasible.into();
        assert!(matches!(e, CoreError::Lp(_)));
        let e: CoreError = bmp_platform::PlatformError::EmptyInstance.into();
        assert!(matches!(e, CoreError::Platform(_)));
    }
}
