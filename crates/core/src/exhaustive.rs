//! Exhaustive ground-truth computation of the optimal acyclic throughput on small instances.
//!
//! Lemma 4.2 shows that only *increasing* orders need to be considered, so the optimal
//! acyclic throughput is the maximum of `T*_ac(π)` over the `C(n+m, m)` coding words `π`.
//! Enumerating them is exponential but perfectly fine for the small instances used to
//! validate Algorithm 2 and the dichotomic search.

use crate::search::DichotomicSearch;
use crate::word::{is_valid_word, CodingWord, Symbol};
use bmp_platform::Instance;

/// Generates every coding word with `n` open and `m` guarded letters.
#[must_use]
pub fn all_words(n: usize, m: usize) -> Vec<CodingWord> {
    let mut words = Vec::new();
    let mut current = Vec::with_capacity(n + m);
    generate(n, m, &mut current, &mut words);
    words
}

fn generate(
    open_left: usize,
    guarded_left: usize,
    current: &mut Vec<Symbol>,
    words: &mut Vec<CodingWord>,
) {
    if open_left == 0 && guarded_left == 0 {
        words.push(CodingWord::from_symbols(current.clone()));
        return;
    }
    if open_left > 0 {
        current.push(Symbol::Open);
        generate(open_left - 1, guarded_left, current, words);
        current.pop();
    }
    if guarded_left > 0 {
        current.push(Symbol::Guarded);
        generate(open_left, guarded_left - 1, current, words);
        current.pop();
    }
}

/// Optimal acyclic throughput obtained by enumerating every coding word, together with the
/// best word. Intended for instances with at most ~20 receivers.
#[must_use]
pub fn optimal_acyclic_exhaustive(instance: &Instance, tolerance: f64) -> (f64, CodingWord) {
    let (throughput, word, _) = optimal_acyclic_exhaustive_traced(instance, tolerance);
    (throughput, word)
}

/// Like [`optimal_acyclic_exhaustive`], additionally reporting the total number of
/// dichotomic probes spent across all words (surfaced as telemetry by the solver
/// registry).
#[must_use]
pub fn optimal_acyclic_exhaustive_traced(
    instance: &Instance,
    tolerance: f64,
) -> (f64, CodingWord, u64) {
    let upper = crate::bounds::cyclic_upper_bound(instance);
    let search = DichotomicSearch::with_tolerance(tolerance);
    let mut probes = 0u64;
    let mut best = (0.0_f64, CodingWord::empty());
    for word in all_words(instance.n(), instance.m()) {
        let outcome = search.maximize(upper, |t| is_valid_word(instance, t, &word));
        probes += outcome.probes;
        if outcome.value > best.0 {
            best = (outcome.value, word);
        }
    }
    (best.0, best.1, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_platform::paper::{figure1, figure18, figure18_tight_epsilon};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn word_enumeration_counts() {
        assert_eq!(all_words(0, 0).len(), 1);
        assert_eq!(all_words(2, 0).len(), 1);
        assert_eq!(all_words(2, 3).len(), 10);
        assert_eq!(all_words(3, 3).len(), 20);
        assert_eq!(all_words(4, 2).len(), 15);
        // Every generated word has the requested composition and they are all distinct.
        let words = all_words(3, 2);
        assert!(words
            .iter()
            .all(|w| w.num_open() == 3 && w.num_guarded() == 2));
        let unique: std::collections::HashSet<String> =
            words.iter().map(ToString::to_string).collect();
        assert_eq!(unique.len(), words.len());
    }

    #[test]
    fn exhaustive_matches_dichotomic_on_figure1() {
        let inst = figure1();
        let (exhaustive, _) = optimal_acyclic_exhaustive(&inst, 1e-10);
        let (dichotomic, _) = AcyclicGuardedSolver::default().optimal_throughput(&inst);
        assert!((exhaustive - 4.0).abs() < 1e-6);
        assert!((exhaustive - dichotomic).abs() < 1e-6);
    }

    #[test]
    fn exhaustive_matches_dichotomic_on_figure18() {
        let inst = figure18(figure18_tight_epsilon()).unwrap();
        let (exhaustive, _) = optimal_acyclic_exhaustive(&inst, 1e-10);
        let (dichotomic, _) = AcyclicGuardedSolver::default().optimal_throughput(&inst);
        assert!((exhaustive - dichotomic).abs() < 1e-6);
    }

    #[test]
    fn exhaustive_matches_dichotomic_on_random_small_instances() {
        // The central correctness check for Algorithm 2 + dichotomic search (Lemma 4.5): the
        // greedy feasibility test must agree with brute force over all increasing orders.
        let mut rng = StdRng::seed_from_u64(0xACDC);
        let solver = AcyclicGuardedSolver::default();
        for trial in 0..60 {
            let n = rng.gen_range(0..=4usize);
            let m = rng.gen_range(0..=4usize);
            if n + m == 0 {
                continue;
            }
            let b0 = rng.gen_range(0.5..5.0);
            let open: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..5.0)).collect();
            let guarded: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..5.0)).collect();
            let inst = Instance::new(b0, open, guarded).unwrap();
            let (exhaustive, _) = optimal_acyclic_exhaustive(&inst, 1e-11);
            let (dichotomic, _) = solver.optimal_throughput(&inst);
            assert!(
                (exhaustive - dichotomic).abs() < 1e-5 * exhaustive.max(1.0),
                "trial {trial}: exhaustive {exhaustive} vs dichotomic {dichotomic} on {:?}",
                inst.bandwidths()
            );
        }
    }

    #[test]
    fn best_word_realises_the_optimum() {
        let inst = figure1();
        let (t, word) = optimal_acyclic_exhaustive(&inst, 1e-10);
        let scheme = AcyclicGuardedSolver::default()
            .scheme_for_word(&inst, t - 1e-9, &word)
            .unwrap();
        assert!(scheme.is_feasible());
        assert!(scheme.throughput() + 1e-6 >= t);
    }
}
