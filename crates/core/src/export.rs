//! Exporting broadcast schemes to external formats (Graphviz DOT, CSV).
//!
//! The overlays computed by this crate are meant to be consumed by other systems: a tracker
//! that instructs peers which connections to open, a visualisation, a spreadsheet. This module
//! renders a [`BroadcastScheme`] as
//!
//! * a Graphviz DOT digraph ([`scheme_to_dot`]) — source, open and guarded nodes use distinct
//!   shapes/colors, every edge is labelled with its allocated rate,
//! * a CSV edge list ([`scheme_to_csv`]) with one row per overlay connection,
//! * a CSV node summary ([`degrees_to_csv`]) with the bandwidth, outdegree and degree bound of
//!   every node.

use crate::scheme::BroadcastScheme;
use bmp_platform::node::degree_lower_bound;
use bmp_platform::NodeClass;
use std::fmt::Write as _;

/// Renders the scheme as a Graphviz DOT digraph.
///
/// Node `C0` (the source) is drawn as a double circle, open nodes as circles and guarded nodes
/// as boxes; every edge carries its rate as a label. The output can be piped straight into
/// `dot -Tsvg`.
#[must_use]
pub fn scheme_to_dot(scheme: &BroadcastScheme) -> String {
    let instance = scheme.instance();
    let mut out = String::new();
    out.push_str("digraph broadcast {\n");
    out.push_str("  rankdir=LR;\n");
    out.push_str("  node [fontsize=10];\n");
    for node in instance.nodes() {
        let (shape, fill) = match node.class {
            NodeClass::Source => ("doublecircle", "gold"),
            NodeClass::Open => ("circle", "lightblue"),
            NodeClass::Guarded => ("box", "lightgray"),
        };
        let _ = writeln!(
            out,
            "  C{} [shape={shape}, style=filled, fillcolor={fill}, label=\"C{}\\nb={:.3}\"];",
            node.id, node.id, node.bandwidth
        );
    }
    for (from, to, rate) in scheme.edges() {
        let _ = writeln!(out, "  C{from} -> C{to} [label=\"{rate:.3}\"];");
    }
    out.push_str("}\n");
    out
}

/// Renders the scheme's edges as CSV (`from,to,rate`), one row per overlay connection.
#[must_use]
pub fn scheme_to_csv(scheme: &BroadcastScheme) -> String {
    let mut out = String::from("from,to,rate\n");
    for (from, to, rate) in scheme.edges() {
        let _ = writeln!(out, "{from},{to},{rate}");
    }
    out
}

/// Renders a per-node summary as CSV: class, bandwidth, outdegree in the scheme, the paper's
/// degree lower bound `⌈b_i / T⌉` for the given throughput, and the additive excess.
#[must_use]
pub fn degrees_to_csv(scheme: &BroadcastScheme, throughput: f64) -> String {
    let instance = scheme.instance();
    let mut out = String::from("node,class,bandwidth,outdegree,degree_bound,excess\n");
    for node in instance.nodes() {
        let outdegree = scheme.outdegree(node.id);
        let bound = degree_lower_bound(node.bandwidth, throughput);
        let class = match node.class {
            NodeClass::Source => "source",
            NodeClass::Open => "open",
            NodeClass::Guarded => "guarded",
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            node.id,
            class,
            node.bandwidth,
            outdegree,
            bound,
            outdegree as i64 - bound as i64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn solved() -> (BroadcastScheme, f64) {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        (solution.scheme, solution.throughput)
    }

    #[test]
    fn dot_output_contains_every_node_and_edge() {
        let (scheme, _) = solved();
        let dot = scheme_to_dot(&scheme);
        assert!(dot.starts_with("digraph broadcast {"));
        assert!(dot.trim_end().ends_with('}'));
        for node in 0..6 {
            assert!(
                dot.contains(&format!("C{node} [shape=")),
                "missing node {node}"
            );
        }
        for (from, to, _) in scheme.edges() {
            assert!(
                dot.contains(&format!("C{from} -> C{to} ")),
                "missing edge {from}->{to}"
            );
        }
        // Source is highlighted, guarded nodes are boxes.
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("shape=box"));
    }

    #[test]
    fn dot_of_an_empty_scheme_has_no_edges() {
        let scheme = BroadcastScheme::new(figure1());
        let dot = scheme_to_dot(&scheme);
        assert!(!dot.contains("->"));
        assert!(dot.contains("C5"));
    }

    #[test]
    fn csv_edges_match_scheme_edges() {
        let (scheme, _) = solved();
        let csv = scheme_to_csv(&scheme);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("from,to,rate"));
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), scheme.edges().len());
        for ((from, to, rate), row) in scheme.edges().into_iter().zip(rows) {
            let fields: Vec<&str> = row.split(',').collect();
            assert_eq!(fields[0].parse::<usize>().unwrap(), from);
            assert_eq!(fields[1].parse::<usize>().unwrap(), to);
            assert!((fields[2].parse::<f64>().unwrap() - rate).abs() < 1e-12);
        }
    }

    #[test]
    fn degree_csv_reports_bounds_and_excess() {
        let (scheme, throughput) = solved();
        let csv = degrees_to_csv(&scheme, throughput);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "node,class,bandwidth,outdegree,degree_bound,excess"
        );
        assert_eq!(lines.len(), 7); // header + 6 nodes
        assert!(lines[1].starts_with("0,source,"));
        assert!(lines.iter().any(|l| l.contains(",open,")));
        assert!(lines.iter().any(|l| l.contains(",guarded,")));
        // Theorem 4.1: excess at most 3 for every node.
        for line in &lines[1..] {
            let excess: i64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(excess <= 3, "line {line}");
        }
    }
}
