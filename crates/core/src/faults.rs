//! Deterministic fault-injection hooks for the solver and probe layer.
//!
//! An [`InjectedFaults`] script names, per interception site, which *occurrences* of
//! that site should fail: "the 0th and 2nd solve verifications", "the 1st degradation
//! probe". The script is installed on an [`EvalCtx`](crate::solver::EvalCtx) (an
//! `Option` field that is `None` in production, so the disabled path costs a single
//! branch) and consulted by [`SolveRecorder::finish`](crate::solver::SolveRecorder)
//! and [`churn::try_degradation_tolerance`](crate::churn::try_degradation_tolerance).
//! Because occurrences are counted — not timed — the same script replays identically
//! run after run, which is what lets the repair-hardening tests assert exact retry
//! and fallback sequences.

/// An interception site of the fault plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// [`SolveRecorder::finish`](crate::solver::SolveRecorder::finish): the solve
    /// itself errors with [`CoreError::InjectedFault`](crate::CoreError::InjectedFault)
    /// before verification.
    Solve,
    /// [`SolveRecorder::finish`](crate::solver::SolveRecorder::finish): the max-flow
    /// verification is forced to report failure
    /// ([`CoreError::VerificationFailed`](crate::CoreError::VerificationFailed)).
    Verify,
    /// [`churn::try_degradation_tolerance`](crate::churn::try_degradation_tolerance):
    /// the probe times out ([`CoreError::Timeout`](crate::CoreError::Timeout)).
    Probe,
}

impl FaultSite {
    /// Stable lowercase label, used in error payloads and fault-plan parsing.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Solve => "solve",
            FaultSite::Verify => "verify",
            FaultSite::Probe => "probe",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::Solve => 0,
            FaultSite::Verify => 1,
            FaultSite::Probe => 2,
        }
    }
}

/// A deterministic fault script: per site, the sorted occurrence indices that fail.
///
/// Counting starts at the moment the script is installed; occurrence `k` means the
/// `k`-th time that site is reached afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Occurrence indices that fail, per site (indexed by [`FaultSite::index`]).
    scheduled: [Vec<u64>; 3],
    /// How many times each site has been reached since installation.
    reached: [u64; 3],
    /// How many scheduled faults have actually fired.
    fired: u64,
}

impl InjectedFaults {
    /// A script with explicit occurrence lists per site (indices need not be sorted).
    #[must_use]
    pub fn new(solve: Vec<u64>, verify: Vec<u64>, probe: Vec<u64>) -> Self {
        InjectedFaults {
            scheduled: [solve, verify, probe],
            reached: [0; 3],
            fired: 0,
        }
    }

    /// Schedules occurrence `occurrence` of `site` to fail (builder style).
    #[must_use]
    pub fn and_fail(mut self, site: FaultSite, occurrence: u64) -> Self {
        self.scheduled[site.index()].push(occurrence);
        self
    }

    /// Whether the script schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scheduled.iter().all(Vec::is_empty)
    }

    /// Total number of scheduled faults that have fired so far.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of scheduled faults that have not fired yet (occurrences already passed
    /// without firing are still counted here; the script does not rewind).
    #[must_use]
    pub fn pending(&self) -> u64 {
        let scheduled: u64 = self.scheduled.iter().map(|s| s.len() as u64).sum();
        scheduled - self.fired
    }

    /// The script's cursor: how many times each site has been reached (in
    /// [`FaultSite`] declaration order — solve, verify, probe) and how many scheduled
    /// faults have fired. Together with the schedule this is the script's complete
    /// mutable state, so a supervisor can capture it at a checkpoint and
    /// [`InjectedFaults::restore_progress`] it into a freshly built script when a
    /// session is restarted — replayed occurrences then fire exactly as they did the
    /// first time.
    #[must_use]
    pub fn progress(&self) -> ([u64; 3], u64) {
        (self.reached, self.fired)
    }

    /// Restores a cursor captured by [`InjectedFaults::progress`] onto this script.
    /// The schedule itself is not touched — the caller rebuilds it from the same plan
    /// — so a restored script replays the remaining occurrences identically.
    ///
    /// # Panics
    ///
    /// Panics if `fired` exceeds the total number of scheduled occurrences (the cursor
    /// cannot have fired faults the schedule does not contain).
    pub fn restore_progress(&mut self, reached: [u64; 3], fired: u64) {
        let scheduled: u64 = self.scheduled.iter().map(|s| s.len() as u64).sum();
        assert!(
            fired <= scheduled,
            "fault-script cursor fired {fired} faults but only {scheduled} are scheduled"
        );
        self.reached = reached;
        self.fired = fired;
    }

    /// Records that `site` was reached; returns `Some(occurrence)` when this occurrence
    /// is scheduled to fail.
    pub fn intercept(&mut self, site: FaultSite) -> Option<u64> {
        let i = site.index();
        let occurrence = self.reached[i];
        self.reached[i] += 1;
        if self.scheduled[i].contains(&occurrence) {
            self.fired += 1;
            Some(occurrence)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_scheduled_occurrences() {
        let mut faults = InjectedFaults::new(vec![1, 3], vec![], vec![0]);
        assert!(!faults.is_empty());
        assert_eq!(faults.intercept(FaultSite::Solve), None);
        assert_eq!(faults.intercept(FaultSite::Solve), Some(1));
        assert_eq!(faults.intercept(FaultSite::Solve), None);
        assert_eq!(faults.intercept(FaultSite::Solve), Some(3));
        assert_eq!(faults.intercept(FaultSite::Probe), Some(0));
        assert_eq!(faults.intercept(FaultSite::Probe), None);
        assert_eq!(faults.intercept(FaultSite::Verify), None);
        assert_eq!(faults.fired(), 3);
        assert_eq!(faults.pending(), 0);
    }

    #[test]
    fn sites_count_independently() {
        let mut faults = InjectedFaults::default()
            .and_fail(FaultSite::Solve, 0)
            .and_fail(FaultSite::Verify, 0);
        assert_eq!(faults.intercept(FaultSite::Solve), Some(0));
        assert_eq!(faults.intercept(FaultSite::Verify), Some(0));
        assert_eq!(faults.pending(), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultSite::Solve.label(), "solve");
        assert_eq!(FaultSite::Verify.label(), "verify");
        assert_eq!(FaultSite::Probe.label(), "probe");
    }
}
