//! Algorithm 2 (`GreedyTest`): linear-time feasibility test for the acyclic problem with
//! guarded nodes.
//!
//! Given a target throughput `T`, the algorithm builds a coding word greedily, choosing a
//! guarded node (`■`) whenever possible and falling back to an open node (`©`) when
//!
//! * no open bandwidth remains for a guarded node (`O(π) < T`), or
//! * appending `■` would leave less than `T` total bandwidth for the following step
//!   (`O(π) + G(π) + b_next■ < 2T`), or
//! * a single guarded node remains and the next open node has a larger bandwidth.
//!
//! (The printed listing of Algorithm 2 in the paper repeats the `O(π)+G(π) < T` test on its
//! line 12, which is already performed on line 3; the condition implemented here is the one
//! stated in the running text and used in the proof of Lemma 9.1.)
//!
//! Lemma 4.5 proves the greedy word is valid if and only if `T ≤ T*_ac`, which turns this
//! test into the decision procedure driving the dichotomic search of
//! [`crate::acyclic_guarded`].

use crate::word::{CodingWord, Symbol, WordState};
use bmp_flow::eps;
use bmp_platform::Instance;

/// Result of [`greedy_test`].
#[derive(Debug, Clone, PartialEq)]
pub enum GreedyOutcome {
    /// The throughput is feasible; `word` encodes a valid increasing order and `trace` holds
    /// the `(O, G, W)` states after every letter (the empty prefix first).
    Feasible {
        /// The valid coding word.
        word: CodingWord,
        /// States after each prefix (length `n + m + 1`).
        trace: Vec<WordState>,
    },
    /// The throughput is infeasible; the partial word built before failing is returned for
    /// diagnostics.
    Infeasible {
        /// Number of letters placed before the failure.
        placed: usize,
        /// The partial word.
        partial: CodingWord,
    },
}

impl GreedyOutcome {
    /// Whether the outcome is feasible.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        matches!(self, GreedyOutcome::Feasible { .. })
    }

    /// The word of a feasible outcome, if any.
    #[must_use]
    pub fn word(&self) -> Option<&CodingWord> {
        match self {
            GreedyOutcome::Feasible { word, .. } => Some(word),
            GreedyOutcome::Infeasible { .. } => None,
        }
    }
}

/// Runs Algorithm 2 on `instance` for target throughput `throughput`.
#[must_use]
pub fn greedy_test(instance: &Instance, throughput: f64) -> GreedyOutcome {
    let n = instance.n();
    let m = instance.m();
    let total = n + m;
    let mut word = CodingWord::empty();
    let mut state = WordState::initial(instance);
    let mut trace = Vec::with_capacity(total + 1);
    trace.push(state);

    while word.len() < total {
        // Line 3: not enough bandwidth left for the next node, whatever its class.
        if eps::definitely_lt(state.total_avail(), throughput) {
            return GreedyOutcome::Infeasible {
                placed: word.len(),
                partial: word,
            };
        }
        let i = state.open_used;
        let j = state.guarded_used;
        let mut letter = Symbol::Guarded;
        if i != n {
            if j == m {
                // No guarded node left.
                letter = Symbol::Open;
            } else if j == m - 1 {
                // A single guarded node remains: take the larger of the two candidate nodes,
                // unless the guarded one cannot be fed right now.
                let next_guarded_bw = instance.bandwidth(instance.guarded_id(j + 1));
                let next_open_bw = instance.bandwidth(instance.open_id(i + 1));
                if eps::definitely_lt(state.open_avail, throughput)
                    || eps::definitely_lt(next_guarded_bw, next_open_bw)
                {
                    letter = Symbol::Open;
                }
            } else {
                // General case: prefer the guarded node unless it cannot be fed now or it
                // would make the next step infeasible.
                let next_guarded_bw = instance.bandwidth(instance.guarded_id(j + 1));
                if eps::definitely_lt(state.open_avail, throughput)
                    || eps::definitely_lt(state.total_avail() + next_guarded_bw, 2.0 * throughput)
                {
                    letter = Symbol::Open;
                }
            }
        }
        state = state.step(instance, throughput, letter);
        word.push(letter);
        trace.push(state);
        // Line 17: feeding a guarded node exceeded the available open bandwidth.
        if eps::definitely_lt(state.open_avail, 0.0) {
            return GreedyOutcome::Infeasible {
                placed: word.len(),
                partial: word,
            };
        }
    }
    GreedyOutcome::Feasible { word, trace }
}

/// Convenience wrapper: whether `throughput` is acyclically feasible on `instance`.
#[must_use]
pub fn is_acyclic_feasible(instance: &Instance, throughput: f64) -> bool {
    greedy_test(instance, throughput).is_feasible()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{is_valid_word, optimal_throughput_for_word};
    use bmp_platform::paper::{figure1, figure18, figure18_tight_epsilon};
    use bmp_platform::Instance;

    #[test]
    fn figure1_at_throughput_4_follows_table1() {
        let inst = figure1();
        let outcome = greedy_test(&inst, 4.0);
        let GreedyOutcome::Feasible { word, trace } = outcome else {
            panic!("throughput 4 must be feasible");
        };
        assert_eq!(word.to_string(), "gogog");
        let open: Vec<f64> = trace.iter().map(|s| s.open_avail).collect();
        assert_eq!(open, vec![6.0, 2.0, 7.0, 3.0, 5.0, 1.0]);
        let waste: Vec<f64> = trace.iter().map(|s| s.open_waste).collect();
        assert_eq!(waste.last().copied().unwrap(), 3.0);
    }

    #[test]
    fn figure1_infeasible_above_acyclic_optimum() {
        let inst = figure1();
        assert!(!is_acyclic_feasible(&inst, 4.2));
        assert!(!is_acyclic_feasible(&inst, 4.41));
        assert!(is_acyclic_feasible(&inst, 3.99));
        assert!(is_acyclic_feasible(&inst, 4.0));
    }

    #[test]
    fn greedy_word_is_always_valid_when_feasible() {
        let inst = figure1();
        for t in [0.5, 1.0, 2.0, 3.0, 3.5, 4.0] {
            let outcome = greedy_test(&inst, t);
            let word = outcome.word().expect("feasible");
            assert!(is_valid_word(&inst, t, word), "T = {t}");
        }
    }

    #[test]
    fn infeasible_outcome_reports_partial_word() {
        let inst = figure1();
        let outcome = greedy_test(&inst, 5.0);
        let GreedyOutcome::Infeasible { placed, partial } = outcome else {
            panic!("throughput 5 must be infeasible (cyclic optimum is 4.4)");
        };
        assert_eq!(placed, partial.len());
        assert!(partial.len() < 5);
    }

    #[test]
    fn open_only_instances_reduce_to_algorithm_1_bound() {
        // Without guarded nodes the greedy word is ©…© and feasibility matches the closed
        // form min(b0, S_{n-1}/n).
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        let optimum = crate::bounds::acyclic_open_optimum(&inst).unwrap();
        assert!(is_acyclic_feasible(&inst, optimum - 1e-9));
        assert!(!is_acyclic_feasible(&inst, optimum + 1e-6));
        let word = greedy_test(&inst, optimum - 1e-9).word().cloned().unwrap();
        assert_eq!(word.to_string(), "ooo");
    }

    #[test]
    fn guarded_only_instances() {
        // All receivers guarded: every one must be fed directly by the source.
        let inst = Instance::new(6.0, vec![], vec![1.0, 1.0, 1.0]).unwrap();
        assert!(is_acyclic_feasible(&inst, 2.0));
        assert!(!is_acyclic_feasible(&inst, 2.1));
    }

    #[test]
    fn figure18_acyclic_optimum_is_five_sevenths() {
        let inst = figure18(figure18_tight_epsilon()).unwrap();
        let target = 5.0 / 7.0;
        assert!(is_acyclic_feasible(&inst, target - 1e-9));
        assert!(!is_acyclic_feasible(&inst, target + 1e-6));
    }

    #[test]
    fn greedy_matches_per_word_optimum_on_figure1() {
        // The greedy word at T = 4 attains T*_ac(word) = 4; the dichotomic search in
        // `acyclic_guarded` relies on this agreement.
        let inst = figure1();
        let word = greedy_test(&inst, 4.0).word().cloned().unwrap();
        let t = optimal_throughput_for_word(&inst, &word, 1e-12);
        assert!((t - 4.0).abs() < 1e-6);
    }

    #[test]
    fn last_guarded_node_rule_prefers_larger_bandwidth() {
        // One guarded node of small bandwidth and open nodes of large bandwidth: with a
        // single guarded node left, the algorithm must take the open nodes first when they
        // are larger.
        let inst = Instance::new(4.0, vec![4.0, 4.0], vec![0.5]).unwrap();
        let outcome = greedy_test(&inst, 4.0);
        let word = outcome.word().expect("feasible").to_string();
        assert_eq!(word, "oog");
    }

    #[test]
    fn zero_throughput_is_feasible() {
        let inst = figure1();
        assert!(is_acyclic_feasible(&inst, 0.0));
    }
}
