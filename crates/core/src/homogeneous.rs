//! Tight homogeneous instances (Section VI-A) and the Figure 7 exploration.
//!
//! An instance is *homogeneous* when all open nodes share a bandwidth `o` and all guarded
//! nodes share a bandwidth `g`, and *tight* when `b_0 = (b_0+O+G)/(n+m) = T*` (no bandwidth
//! can be wasted by an optimal cyclic solution). Lemma 11.1 shows the worst acyclic/cyclic
//! ratio is always attained on tight homogeneous instances, which is why Figure 7 of the
//! paper explores exactly this family: for `b_0 = 1` the family is parameterised by
//! `Δ ∈ [0, n]` with `o = (m−1+Δ)/n` and `g = (n−Δ)/m`.

use crate::acyclic_guarded::AcyclicGuardedSolver;
use crate::bounds::cyclic_upper_bound;
use crate::solver::EvalCtx;
use bmp_platform::Instance;

/// Builds the tight homogeneous instance with parameters `(n, m, Δ)` and `b_0 = T* = 1`.
///
/// Conventions for the degenerate cases:
///
/// * `m = 0`: the tight open-only instance has `o = (n−1)/n` (requires `n ≥ 1`),
/// * `n = 0`: a tight instance only exists for `m = 1` (a single guarded node of bandwidth 0).
///
/// Returns `None` when no tight homogeneous instance exists for these parameters (e.g.
/// `n = 0, m ≥ 2`, or `Δ ∉ [0, n]`).
#[must_use]
pub fn tight_homogeneous(n: usize, m: usize, delta: f64) -> Option<Instance> {
    if n + m == 0 || delta < 0.0 || delta > n as f64 {
        return None;
    }
    if n == 0 {
        // Guarded nodes can only be fed by the source: tightness (T* = b0 = 1) forces m = 1.
        if m == 1 {
            return Instance::new(1.0, vec![], vec![0.0]).ok();
        }
        return None;
    }
    if m == 0 {
        let o = (n as f64 - 1.0) / n as f64;
        return Instance::new(1.0, vec![o; n], vec![]).ok();
    }
    let o = (m as f64 - 1.0 + delta) / n as f64;
    let g = (n as f64 - delta) / m as f64;
    if o < 0.0 || g < 0.0 {
        return None;
    }
    Instance::new(1.0, vec![o; n], vec![g; m]).ok()
}

/// The admissible range of `Δ` for `(n, m)`, i.e. `[0, n]` (present for symmetry with the
/// experiment harness; returns `None` when no tight instance exists at all).
#[must_use]
pub fn delta_range(n: usize, m: usize) -> Option<(f64, f64)> {
    if n == 0 && m != 1 {
        return None;
    }
    if n + m == 0 {
        return None;
    }
    Some((0.0, n as f64))
}

/// Result of the Figure 7 worst-`Δ` exploration for one `(n, m)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomogeneousRatio {
    /// Number of open nodes.
    pub n: usize,
    /// Number of guarded nodes.
    pub m: usize,
    /// The `Δ` value achieving the worst ratio on the explored grid.
    pub worst_delta: f64,
    /// The worst ratio `T*_ac / T*` over the explored `Δ` grid.
    pub worst_ratio: f64,
}

/// Explores `Δ` on a regular grid of `delta_steps + 1` points and returns the worst
/// acyclic/cyclic ratio for the `(n, m)` cell of Figure 7.
///
/// Returns `None` when no tight homogeneous instance exists for `(n, m)`.
#[must_use]
pub fn worst_ratio_over_delta(
    n: usize,
    m: usize,
    delta_steps: usize,
    solver: &AcyclicGuardedSolver,
) -> Option<HomogeneousRatio> {
    delta_range(n, m)?;
    let steps = delta_steps.max(1);
    let mut worst_ratio = f64::INFINITY;
    let mut worst_delta = 0.0;
    for k in 0..=steps {
        let delta = n as f64 * k as f64 / steps as f64;
        let Some(instance) = tight_homogeneous(n, m, delta) else {
            continue;
        };
        let t_star = cyclic_upper_bound(&instance);
        if t_star <= 0.0 {
            continue;
        }
        let (acyclic, _) = solver.optimal_throughput(&instance);
        let ratio = acyclic / t_star;
        if ratio < worst_ratio {
            worst_ratio = ratio;
            worst_delta = delta;
        }
        if n == 0 || m == 0 {
            break; // Δ is irrelevant in the degenerate cases.
        }
    }
    if worst_ratio.is_finite() {
        Some(HomogeneousRatio {
            n,
            m,
            worst_delta,
            worst_ratio,
        })
    } else {
        None
    }
}

/// [`worst_ratio_over_delta`], additionally *certifying* the worst cell through an
/// explicit evaluation context: the scheme realising the worst ratio is rebuilt from its
/// coding word and re-scored by max-flow through `ctx` (no hidden thread-local), so the
/// dichotomic value the figure reports is backed by an explicit overlay. This is the
/// entry point the Figure 7 sweep threads its per-worker [`EvalCtx`] through.
///
/// # Panics
///
/// Panics when the certification fails — a constructed scheme under-delivering its
/// dichotomic throughput is a solver bug, not a data point.
#[must_use]
pub fn worst_ratio_over_delta_with(
    n: usize,
    m: usize,
    delta_steps: usize,
    solver: &AcyclicGuardedSolver,
    ctx: &mut EvalCtx,
) -> Option<HomogeneousRatio> {
    let cell = worst_ratio_over_delta(n, m, delta_steps, solver)?;
    if let Some(instance) = tight_homogeneous(cell.n, cell.m, cell.worst_delta) {
        let (throughput, word) = solver.optimal_throughput(&instance);
        if throughput > 0.0 {
            let scheme = solver
                .scheme_for_word(&instance, throughput, &word)
                .expect("the dichotomic word is valid at its own throughput");
            crate::solver::certify_throughput(ctx, &scheme, throughput);
        }
    }
    Some(cell)
}

/// The six extreme homogeneous cases used in the proof of Theorem 6.2 (cases A1/A2, B1/B2,
/// C1/C2), all with `b_0 = 1`.
#[must_use]
pub fn theorem62_case_instance(case: Theorem62Case, n: usize, m: usize) -> Option<Instance> {
    if n == 0 || m == 0 {
        return None;
    }
    let (o, g) = match case {
        Theorem62Case::A1 | Theorem62Case::C1 => ((m as f64 - 1.0) / n as f64, n as f64 / m as f64),
        Theorem62Case::A2 | Theorem62Case::B2 => ((n as f64 + m as f64 - 1.0) / n as f64, 0.0),
        Theorem62Case::B1 | Theorem62Case::C2 => (1.0, (m as f64 - 1.0) / m as f64),
    };
    Instance::new(1.0, vec![o; n], vec![g; m]).ok()
}

/// Labels for the six extreme cases of the Theorem 6.2 proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Theorem62Case {
    /// `m ≥ n+1`, `o = (m−1)/n`, `g = n/m`.
    A1,
    /// `m ≥ n+1`, `o = (n+m−1)/n`, `g = 0`.
    A2,
    /// `m ≤ n`, `o = 1`, `g = (m−1)/m`.
    B1,
    /// `m ≤ n`, `o = (n+m−1)/n`, `g = 0`.
    B2,
    /// `m ≤ n`, `o = (m−1)/n`, `g = n/m`.
    C1,
    /// `m ≤ n`, `o = 1`, `g = (m−1)/m`.
    C2,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::five_sevenths;
    use crate::omega::best_omega_throughput;

    #[test]
    fn tight_instances_are_tight() {
        for (n, m) in [(1usize, 2usize), (3, 3), (5, 2), (2, 5), (10, 4)] {
            for k in 0..=4 {
                let delta = n as f64 * k as f64 / 4.0;
                let inst = tight_homogeneous(n, m, delta).unwrap();
                let t_star = cyclic_upper_bound(&inst);
                assert!(
                    (t_star - 1.0).abs() < 1e-9,
                    "({n},{m},Δ={delta}): T* = {t_star}"
                );
                // Total bandwidth equals (n+m)·T*: nothing can be wasted.
                assert!((inst.total_bandwidth() - (n + m) as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn degenerate_cases() {
        assert!(tight_homogeneous(0, 0, 0.0).is_none());
        assert!(tight_homogeneous(0, 2, 0.0).is_none());
        assert!(tight_homogeneous(0, 1, 0.0).is_some());
        assert!(tight_homogeneous(2, 3, -0.5).is_none());
        assert!(tight_homogeneous(2, 3, 2.5).is_none());
        let open_only = tight_homogeneous(4, 0, 0.0).unwrap();
        assert!((cyclic_upper_bound(&open_only) - 1.0).abs() < 1e-12);
        assert_eq!(delta_range(0, 3), None);
        assert_eq!(delta_range(3, 2), Some((0.0, 3.0)));
    }

    #[test]
    fn ratio_never_below_five_sevenths() {
        let solver = AcyclicGuardedSolver::default();
        for n in 1..=6 {
            for m in 0..=6 {
                if let Some(result) = worst_ratio_over_delta(n, m, 4, &solver) {
                    assert!(
                        result.worst_ratio >= five_sevenths() - 1e-6,
                        "({n},{m}): ratio {} below 5/7",
                        result.worst_ratio
                    );
                    assert!(result.worst_ratio <= 1.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn five_sevenths_attained_near_figure18_shape() {
        // n = 1, m = 2: the Figure 18 instance is tight homogeneous with Δ = n·(2ε·…);
        // the worst Δ must bring the ratio down to exactly 5/7.
        let solver = AcyclicGuardedSolver::default();
        let result = worst_ratio_over_delta(1, 2, 64, &solver).unwrap();
        assert!(
            (result.worst_ratio - five_sevenths()).abs() < 5e-3,
            "worst ratio = {}",
            result.worst_ratio
        );
    }

    #[test]
    fn open_only_cells_approach_one() {
        // Without guarded nodes the ratio is 1 − o·…/… ≥ 1 − 1/n and tends to 1.
        let solver = AcyclicGuardedSolver::default();
        let r5 = worst_ratio_over_delta(5, 0, 1, &solver).unwrap();
        let r50 = worst_ratio_over_delta(50, 0, 1, &solver).unwrap();
        assert!(r50.worst_ratio > r5.worst_ratio);
        assert!(r50.worst_ratio > 0.97);
    }

    #[test]
    fn theorem63_diagonal_stays_below_093() {
        // Along m ≈ ((√41−3)/8)·n the ratio stays bounded away from 1 (Theorem 6.3).
        let solver = AcyclicGuardedSolver::default();
        let alpha = bmp_platform::paper::theorem63_alpha();
        for n in [40usize, 80] {
            let m = (alpha * n as f64).round() as usize;
            // Integer Δ grid, as in the exhaustive exploration of Figure 7.
            let result = worst_ratio_over_delta(n, m, n, &solver).unwrap();
            assert!(
                result.worst_ratio < 0.95,
                "(n={n}, m={m}): ratio {} not bounded away from 1",
                result.worst_ratio
            );
            assert!(result.worst_ratio >= five_sevenths() - 1e-9);
        }
    }

    #[test]
    fn omega_words_honour_five_sevenths_on_tight_homogeneous() {
        // The constructive statement behind Theorem 6.2: on tight homogeneous instances the
        // better of ω1/ω2 reaches at least 5/7 of the cyclic optimum.
        for n in 1..=6 {
            for m in 1..=6 {
                for k in 0..=3 {
                    let delta = n as f64 * k as f64 / 3.0;
                    let inst = tight_homogeneous(n, m, delta).unwrap();
                    let (best, _) = best_omega_throughput(&inst, 1e-10);
                    assert!(
                        best >= five_sevenths() - 1e-6,
                        "(n={n}, m={m}, Δ={delta}): best omega word reaches only {best}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem62_case_instances_have_unit_cyclic_optimum() {
        for case in [
            Theorem62Case::A1,
            Theorem62Case::A2,
            Theorem62Case::B1,
            Theorem62Case::B2,
            Theorem62Case::C1,
            Theorem62Case::C2,
        ] {
            let inst = theorem62_case_instance(case, 4, 3).unwrap();
            let t = cyclic_upper_bound(&inst);
            assert!(t <= 1.0 + 1e-9, "{case:?}: T* = {t}");
        }
        assert!(theorem62_case_instance(Theorem62Case::A1, 0, 3).is_none());
    }
}
