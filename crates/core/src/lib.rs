//! Broadcast scheduling under the bounded multi-port model with open and guarded nodes.
//!
//! This crate implements the algorithmic contribution of *"Broadcasting on Large Scale
//! Heterogeneous Platforms under the Bounded Multi-Port Model"* (Beaumont, Bonichon,
//! Eyraud-Dubois, Uznański, Agrawal):
//!
//! | Problem | Module | Result |
//! |---|---|---|
//! | Acyclic, open nodes only | [`acyclic_open`] | optimal throughput `min(b₀, S_{n−1}/n)`, degree `⌈bᵢ/T⌉ + 1` (Algorithm 1) |
//! | Acyclic, with guarded nodes | [`greedy`], [`acyclic_guarded`] | linear-time feasibility test (Algorithm 2), dichotomic search, degrees `+1`/`+2`/`+3` (Theorem 4.1) |
//! | Cyclic, open nodes only | [`cyclic_open`] | optimal throughput `min(b₀, (b₀+O)/n)`, degree `max(⌈bᵢ/T⌉+2, 4)` (Theorem 5.2) |
//! | Cyclic, with guarded nodes | [`bounds`], [`worst_case`] | closed-form optimum (Lemma 5.1), unbounded-degree family (Figure 6) |
//! | Cyclic/acyclic comparison | [`omega`], [`homogeneous`], [`worst_case`] | tight 5/7 bound (Theorem 6.2), `(1+√41)/8` family (Theorem 6.3) |
//! | Complexity | [`reduction`] | 3-PARTITION reduction of Theorem 3.1 |
//!
//! Ground-truth oracles for the tests and experiments live in [`exhaustive`] (enumeration of
//! increasing orders) and [`lp_check`] (linear programming via `bmp-lp`). Broadcast schemes
//! themselves, and their throughput evaluation by max-flow (`bmp-flow`), live in [`scheme`].
//!
//! # Architecture: the unified solver API
//!
//! The algorithms above are uniformly exposed through the [`solver`] module, which is the
//! entry point every layer (CLI, experiments, benchmarks) programs against:
//!
//! * [`solver::Solver`] — the trait every algorithm implements: `name()`, `describe()`,
//!   `solve(&Instance, &mut EvalCtx) -> Result<Solution, CoreError>`.
//! * [`solver::Solution`] — the uniform result: scheme, claimed (and verified) throughput,
//!   optional coding word, algorithm label, and [`solver::Telemetry`] (flow solves,
//!   bisection probes, wall time).
//! * [`solver::EvalCtx`] — the *explicit* evaluation context owning the flow arena and
//!   solver workspace. It is the primary throughput-evaluation path (the thread-local in
//!   [`scheme`] remains only as a convenience fallback for ad-hoc calls) and it makes
//!   re-evaluation incremental end-to-end: every scheme mutation is journaled
//!   ([`scheme`]'s dirty-edge journal), so re-scoring a scheme whose edge set is
//!   unchanged patches only the journaled capacities into the retained arena — no O(n²)
//!   rate-matrix rescan, no CSR rebuild — observable as
//!   [`solver::Telemetry::rescans_skipped`].
//! * [`solver::registry`] — enumerates the built-in solvers (`acyclic-guarded`,
//!   `acyclic-open`, `cyclic-open`, `exhaustive`, `omega-word`, `auto`); downstream
//!   crates append their own implementations (`bmp-trees` ships a tree-decomposition
//!   adapter, assembled into the full list by the CLI).
//! * [`search::DichotomicSearch`] — the one shared bisection driver behind every
//!   dichotomic search in the crate, reporting its probe count for telemetry.
//!
//! The pre-existing free functions and builder types ([`AcyclicGuardedSolver`],
//! [`acyclic_open::acyclic_open_scheme`], [`cyclic_open::cyclic_open_scheme`], …) remain
//! supported thin entry points; the trait implementations delegate to them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic_guarded;
pub mod acyclic_open;
pub mod bounds;
pub mod churn;
pub mod conservative;
pub mod cyclic_open;
pub mod depth;
pub mod error;
pub mod exhaustive;
pub mod export;
pub mod faults;
pub mod greedy;
pub mod homogeneous;
pub mod lp_check;
pub mod omega;
pub mod reduction;
pub mod scheme;
pub mod search;
pub mod solver;
pub mod word;
pub mod worst_case;

pub use acyclic_guarded::{AcyclicGuardedSolver, AcyclicSolution};
pub use acyclic_open::{acyclic_open_optimal_scheme, acyclic_open_scheme};
pub use bounds::Bounds;
pub use cyclic_open::{cyclic_open_optimal_scheme, cyclic_open_scheme};
pub use error::CoreError;
pub use faults::{FaultSite, InjectedFaults};
pub use scheme::BroadcastScheme;
pub use search::DichotomicSearch;
pub use solver::{registry, EvalCtx, Solution, Solver, Telemetry};
pub use word::CodingWord;
