//! Linear-programming ground-truth oracle for small instances.
//!
//! The broadcast throughput of a capacitated digraph equals the minimum over receivers of the
//! max-flow from the source (Edmonds' tree-packing theorem, as used in Section II-D of the
//! paper). Maximising the throughput over all feasible rate matrices `c` is therefore the LP
//!
//! ```text
//! maximize   T
//! subject to Σ_j c_{i,j} ≤ b_i                            (bandwidth)
//!            c_{i,j} = 0 for guarded → guarded pairs       (firewall)
//!            for every receiver k: a flow f^k ≤ c of value ≥ T from C0 to Ck
//! ```
//!
//! which this module builds and solves with [`bmp_lp`]. Restricting the support of `c` to the
//! pairs allowed by a fixed order yields the optimal *acyclic* throughput for that order.
//! These oracles are exponential in nothing but huge in variables, so they are reserved for
//! cross-checking the closed-form bounds and the combinatorial algorithms on small instances
//! (≲ 8 nodes) in tests and experiments.

use crate::error::CoreError;
use bmp_lp::{ConstraintOp, LpProblem};
use bmp_platform::{Instance, NodeId};

/// Directed pairs `(i, j)` that may carry traffic: `i ≠ j`, `j` is a receiver, and the pair
/// is not guarded → guarded. When `order` is given, only pairs where `i` precedes `j` are
/// kept (acyclic restriction).
fn allowed_pairs(instance: &Instance, order: Option<&[NodeId]>) -> Vec<(NodeId, NodeId)> {
    let position: Option<Vec<usize>> = order.map(|order| {
        let mut position = vec![0usize; instance.num_nodes()];
        for (pos, &node) in order.iter().enumerate() {
            position[node] = pos;
        }
        position
    });
    let mut pairs = Vec::new();
    for i in 0..instance.num_nodes() {
        for j in 1..instance.num_nodes() {
            if i == j || !instance.can_send(i, j) {
                continue;
            }
            if let Some(position) = &position {
                if position[i] >= position[j] {
                    continue;
                }
            }
            pairs.push((i, j));
        }
    }
    pairs
}

/// Solves the throughput-maximisation LP described in the module documentation.
///
/// `order = None` gives the optimal cyclic throughput; `order = Some(σ)` the optimal acyclic
/// throughput compatible with `σ`.
fn solve_throughput_lp(instance: &Instance, order: Option<&[NodeId]>) -> Result<f64, CoreError> {
    let pairs = allowed_pairs(instance, order);
    let num_pairs = pairs.len();
    let receivers: Vec<NodeId> = instance.receivers().collect();
    let num_receivers = receivers.len();
    // Variable layout: [T | c (num_pairs) | f^k for each receiver k (num_pairs each)].
    let t_var = 0usize;
    let c_var = |pair: usize| 1 + pair;
    let f_var = |k: usize, pair: usize| 1 + num_pairs + k * num_pairs + pair;
    let num_vars = 1 + num_pairs * (1 + num_receivers);
    let mut lp = LpProblem::new(num_vars);
    lp.set_objective(t_var, 1.0);

    // Bandwidth constraints on c.
    for node in 0..instance.num_nodes() {
        let terms: Vec<(usize, f64)> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(i, _))| i == node)
            .map(|(p, _)| (c_var(p), 1.0))
            .collect();
        if !terms.is_empty() {
            lp.add_sparse_constraint(&terms, ConstraintOp::Le, instance.bandwidth(node))?;
        }
    }

    for (k, &receiver) in receivers.iter().enumerate() {
        // Flow capacity: f^k_{i,j} ≤ c_{i,j}.
        for p in 0..num_pairs {
            lp.add_sparse_constraint(
                &[(f_var(k, p), 1.0), (c_var(p), -1.0)],
                ConstraintOp::Le,
                0.0,
            )?;
        }
        // Flow conservation at every node other than the source and the receiver.
        for node in 1..instance.num_nodes() {
            if node == receiver {
                continue;
            }
            let mut terms = Vec::new();
            for (p, &(i, j)) in pairs.iter().enumerate() {
                if j == node {
                    terms.push((f_var(k, p), 1.0));
                }
                if i == node {
                    terms.push((f_var(k, p), -1.0));
                }
            }
            if !terms.is_empty() {
                lp.add_sparse_constraint(&terms, ConstraintOp::Eq, 0.0)?;
            }
        }
        // Net inflow at the receiver is at least T.
        let mut terms: Vec<(usize, f64)> = vec![(t_var, -1.0)];
        for (p, &(i, j)) in pairs.iter().enumerate() {
            if j == receiver {
                terms.push((f_var(k, p), 1.0));
            }
            if i == receiver {
                terms.push((f_var(k, p), -1.0));
            }
        }
        lp.add_sparse_constraint(&terms, ConstraintOp::Ge, 0.0)?;
    }

    let solution = bmp_lp::solve(&lp)?;
    Ok(solution.objective)
}

/// Optimal cyclic throughput obtained from the LP oracle (ground truth for Lemma 5.1).
///
/// # Errors
///
/// Propagates LP solver failures.
pub fn optimal_cyclic_lp(instance: &Instance) -> Result<f64, CoreError> {
    solve_throughput_lp(instance, None)
}

/// Optimal acyclic throughput compatible with `order`, obtained from the LP oracle (ground
/// truth for `T*_ac(σ)` and hence for the word-validity characterisation of Lemma 4.4).
///
/// # Errors
///
/// Returns [`CoreError::InvalidOrder`] for malformed orders and propagates LP failures.
pub fn optimal_acyclic_lp_for_order(
    instance: &Instance,
    order: &[NodeId],
) -> Result<f64, CoreError> {
    crate::conservative::validate_order(instance, order)?;
    solve_throughput_lp(instance, Some(order))
}

/// Optimal acyclic throughput obtained by combining the LP per-order oracle with the
/// exhaustive enumeration of increasing orders. Exponential; small instances only.
///
/// # Errors
///
/// Propagates LP solver failures.
pub fn optimal_acyclic_lp_exhaustive(instance: &Instance) -> Result<f64, CoreError> {
    let words = crate::exhaustive::all_words(instance.n(), instance.m());
    let mut best = 0.0_f64;
    for word in words {
        let order = word.to_order(instance)?;
        let value = optimal_acyclic_lp_for_order(instance, &order)?;
        if value > best {
            best = value;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_guarded::AcyclicGuardedSolver;
    use crate::bounds::{acyclic_open_optimum, cyclic_upper_bound};
    use crate::word::optimal_throughput_for_word;
    use bmp_platform::paper::{figure1, figure18, figure18_tight_epsilon};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lp_confirms_lemma_5_1_on_figure1() {
        let inst = figure1();
        let lp = optimal_cyclic_lp(&inst).unwrap();
        assert!((lp - 4.4).abs() < 1e-6, "LP cyclic optimum = {lp}");
        assert!((lp - cyclic_upper_bound(&inst)).abs() < 1e-6);
    }

    #[test]
    fn lp_confirms_lemma_5_1_on_figure18() {
        let inst = figure18(figure18_tight_epsilon()).unwrap();
        let lp = optimal_cyclic_lp(&inst).unwrap();
        assert!((lp - 1.0).abs() < 1e-6, "LP cyclic optimum = {lp}");
    }

    #[test]
    fn lp_confirms_closed_form_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..12 {
            let n = rng.gen_range(1..=3usize);
            let m = rng.gen_range(0..=3usize);
            let b0 = rng.gen_range(0.5..4.0);
            let open: Vec<f64> = (0..n).map(|_| rng.gen_range(0.2..4.0)).collect();
            let guarded: Vec<f64> = (0..m).map(|_| rng.gen_range(0.2..4.0)).collect();
            let inst = Instance::new(b0, open, guarded).unwrap();
            let lp = optimal_cyclic_lp(&inst).unwrap();
            let closed_form = cyclic_upper_bound(&inst);
            assert!(
                (lp - closed_form).abs() < 1e-5 * closed_form.max(1.0),
                "LP {lp} vs closed form {closed_form} on {:?}",
                inst.bandwidths()
            );
        }
    }

    #[test]
    fn per_order_lp_matches_word_validity_on_figure1() {
        let inst = figure1();
        for (order, expected) in [
            (vec![0, 3, 1, 2, 4, 5], 4.0),
            (vec![0, 3, 1, 4, 2, 5], 4.0),
            (vec![0, 1, 2, 3, 4, 5], 3.2),
        ] {
            let lp = optimal_acyclic_lp_for_order(&inst, &order).unwrap();
            assert!(
                (lp - expected).abs() < 1e-6,
                "order {order:?}: LP {lp}, expected {expected}"
            );
            let word = crate::conservative::order_to_word(&inst, &order).unwrap();
            let combinatorial = optimal_throughput_for_word(&inst, &word, 1e-11);
            assert!((lp - combinatorial).abs() < 1e-5);
        }
    }

    #[test]
    fn per_order_lp_matches_word_validity_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for _ in 0..8 {
            let n = rng.gen_range(1..=2usize);
            let m = rng.gen_range(1..=2usize);
            let b0 = rng.gen_range(0.5..3.0);
            let open: Vec<f64> = (0..n).map(|_| rng.gen_range(0.2..3.0)).collect();
            let guarded: Vec<f64> = (0..m).map(|_| rng.gen_range(0.2..3.0)).collect();
            let inst = Instance::new(b0, open, guarded).unwrap();
            for word in crate::exhaustive::all_words(n, m) {
                let order = word.to_order(&inst).unwrap();
                let lp = optimal_acyclic_lp_for_order(&inst, &order).unwrap();
                let combinatorial = optimal_throughput_for_word(&inst, &word, 1e-11);
                assert!(
                    (lp - combinatorial).abs() < 1e-5 * lp.max(1.0),
                    "word {word}: LP {lp} vs combinatorial {combinatorial} on {:?}",
                    inst.bandwidths()
                );
            }
        }
    }

    #[test]
    fn lp_exhaustive_acyclic_matches_dichotomic_search() {
        let inst = figure1();
        let lp = optimal_acyclic_lp_exhaustive(&inst).unwrap();
        let (dichotomic, _) = AcyclicGuardedSolver::default().optimal_throughput(&inst);
        assert!((lp - dichotomic).abs() < 1e-5);
    }

    #[test]
    fn open_only_acyclic_lp_matches_closed_form() {
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        let order = vec![0, 1, 2, 3];
        let lp = optimal_acyclic_lp_for_order(&inst, &order).unwrap();
        assert!((lp - acyclic_open_optimum(&inst).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn malformed_order_is_rejected() {
        let inst = figure1();
        assert!(optimal_acyclic_lp_for_order(&inst, &[0, 1]).is_err());
    }
}
