//! The regular interleaving words `ω1(n, m)` and `ω2(n, m)` of Theorem 6.2.
//!
//! These two words spread the guarded nodes as evenly as possible among the open nodes:
//!
//! * `ω1(n, m) = © ■^{α_1} © ■^{α_2} … © ■^{α_n}` with
//!   `α_i = ⌊i·m/n⌋ − ⌊(i−1)·m/n⌋`,
//! * `ω2(n, m) = ■ ©^{β_1} ■ ©^{β_2} … ■ ©^{β_m}` with
//!   `β_i = ⌈i·n/m⌉ − ⌈(i−1)·n/m⌉`.
//!
//! The proof of the 5/7 bound only needs the better of the two, and the average-case study
//! (Figure 19) compares three curves: the optimal acyclic throughput, the best of
//! `ω1`/`ω2`, and the single word that the case analysis of the proof would pick
//! ("theorem word"). This module builds all three.

use crate::bounds::cyclic_upper_bound;
use crate::word::{optimal_throughput_for_word, CodingWord, Symbol};
use bmp_platform::Instance;

/// Which of the two regular words is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmegaChoice {
    /// `ω1(n, m)`: starts with an open node.
    Omega1,
    /// `ω2(n, m)`: starts with a guarded node.
    Omega2,
}

/// Builds `ω1(n, m)`.
///
/// When `n = 0` the word degenerates to `■^m`.
#[must_use]
pub fn omega1(n: usize, m: usize) -> CodingWord {
    let mut word = CodingWord::empty();
    if n == 0 {
        for _ in 0..m {
            word.push(Symbol::Guarded);
        }
        return word;
    }
    for i in 1..=n {
        word.push(Symbol::Open);
        let alpha = (i * m) / n - ((i - 1) * m) / n;
        for _ in 0..alpha {
            word.push(Symbol::Guarded);
        }
    }
    word
}

/// Builds `ω2(n, m)`.
///
/// When `m = 0` the word degenerates to `©^n`.
#[must_use]
pub fn omega2(n: usize, m: usize) -> CodingWord {
    let mut word = CodingWord::empty();
    if m == 0 {
        for _ in 0..n {
            word.push(Symbol::Open);
        }
        return word;
    }
    for i in 1..=m {
        word.push(Symbol::Guarded);
        let beta = (i * n).div_ceil(m) - ((i - 1) * n).div_ceil(m);
        for _ in 0..beta {
            word.push(Symbol::Open);
        }
    }
    word
}

/// The regular word for `instance` designated by `choice`.
#[must_use]
pub fn omega_word(instance: &Instance, choice: OmegaChoice) -> CodingWord {
    match choice {
        OmegaChoice::Omega1 => omega1(instance.n(), instance.m()),
        OmegaChoice::Omega2 => omega2(instance.n(), instance.m()),
    }
}

/// Throughput of the *better* of `ω1` and `ω2` on `instance` (the blue curve of Figure 19).
#[must_use]
pub fn best_omega_throughput(instance: &Instance, tolerance: f64) -> (f64, OmegaChoice) {
    let t1 = optimal_throughput_for_word(instance, &omega1(instance.n(), instance.m()), tolerance);
    let t2 = optimal_throughput_for_word(instance, &omega2(instance.n(), instance.m()), tolerance);
    if t1 >= t2 {
        (t1, OmegaChoice::Omega1)
    } else {
        (t2, OmegaChoice::Omega2)
    }
}

/// The single word used by the case analysis of Theorem 6.2 (the red curve of Figure 19).
///
/// The proof works on tight homogeneous instances and picks `ω1` when the open-node bandwidth
/// `o` satisfies `o ≥ T*` (cases A and B) and `ω2` otherwise (case C). For general instances
/// we apply the same rule to the *mean* open-node bandwidth, normalised by the cyclic optimum
/// of Lemma 5.1.
#[must_use]
pub fn theorem_word_choice(instance: &Instance) -> OmegaChoice {
    if instance.n() == 0 {
        return OmegaChoice::Omega2;
    }
    if instance.m() == 0 {
        return OmegaChoice::Omega1;
    }
    let mean_open = instance.open_sum() / instance.n() as f64;
    let t_star = cyclic_upper_bound(instance);
    if mean_open >= t_star {
        OmegaChoice::Omega1
    } else {
        OmegaChoice::Omega2
    }
}

/// Throughput of the theorem word on `instance`.
#[must_use]
pub fn theorem_word_throughput(instance: &Instance, tolerance: f64) -> f64 {
    let choice = theorem_word_choice(instance);
    optimal_throughput_for_word(instance, &omega_word(instance, choice), tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_guarded::AcyclicGuardedSolver;
    use crate::bounds::five_sevenths;
    use bmp_platform::paper::{figure1, figure18, figure18_tight_epsilon};

    #[test]
    fn omega1_structure() {
        assert_eq!(omega1(3, 3).to_string(), "ogogog");
        assert_eq!(omega1(2, 4).to_string(), "oggogg");
        assert_eq!(omega1(4, 2).to_string(), "oogoog");
        assert_eq!(omega1(1, 3).to_string(), "oggg");
        assert_eq!(omega1(3, 0).to_string(), "ooo");
        assert_eq!(omega1(0, 2).to_string(), "gg");
        assert_eq!(omega1(5, 3).to_string(), "oogoogog");
    }

    #[test]
    fn omega2_structure() {
        assert_eq!(omega2(3, 3).to_string(), "gogogo");
        assert_eq!(omega2(4, 2).to_string(), "googoo");
        assert_eq!(omega2(2, 4).to_string(), "goggog");
        assert_eq!(omega2(0, 3).to_string(), "ggg");
        assert_eq!(omega2(3, 0).to_string(), "ooo");
        assert_eq!(omega2(5, 2).to_string(), "gooogoo");
    }

    #[test]
    fn words_have_correct_counts() {
        for n in 0..8 {
            for m in 0..8 {
                if n + m == 0 {
                    continue;
                }
                let w1 = omega1(n, m);
                assert_eq!(w1.num_open(), n, "omega1({n},{m})");
                assert_eq!(w1.num_guarded(), m, "omega1({n},{m})");
                let w2 = omega2(n, m);
                assert_eq!(w2.num_open(), n, "omega2({n},{m})");
                assert_eq!(w2.num_guarded(), m, "omega2({n},{m})");
            }
        }
    }

    #[test]
    fn omega_words_on_figure1() {
        let inst = figure1();
        let (t, _) = best_omega_throughput(&inst, 1e-12);
        // The optimal acyclic throughput of Figure 1 is 4; the regular words may be slightly
        // worse but never better.
        let (opt, _) = AcyclicGuardedSolver::default().optimal_throughput(&inst);
        assert!(t <= opt + 1e-6);
        assert!(t >= five_sevenths() * crate::bounds::cyclic_upper_bound(&inst) - 1e-9);
    }

    #[test]
    fn omega_reaches_five_sevenths_on_worst_case() {
        let inst = figure18(figure18_tight_epsilon()).unwrap();
        let (t, _) = best_omega_throughput(&inst, 1e-12);
        assert!((t - five_sevenths()).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn theorem_word_never_beats_best_omega() {
        let instances = vec![
            figure1(),
            figure18(figure18_tight_epsilon()).unwrap(),
            Instance::new(2.0, vec![3.0, 1.0], vec![2.0, 0.5]).unwrap(),
            Instance::new(4.0, vec![1.0; 6], vec![5.0; 3]).unwrap(),
        ];
        let solver = AcyclicGuardedSolver::default();
        for inst in instances {
            let (best, _) = best_omega_throughput(&inst, 1e-10);
            let theorem = theorem_word_throughput(&inst, 1e-10);
            assert!(theorem <= best + 1e-6);
            // Neither regular word can beat the optimal acyclic throughput.
            let (optimal, _) = solver.optimal_throughput(&inst);
            assert!(best <= optimal + 1e-6);
        }
    }

    #[test]
    fn theorem_word_choice_extremes() {
        let open_only = Instance::open_only(2.0, vec![1.0, 1.0]).unwrap();
        assert_eq!(theorem_word_choice(&open_only), OmegaChoice::Omega1);
        let guarded_only = Instance::new(2.0, vec![], vec![1.0, 1.0]).unwrap();
        assert_eq!(theorem_word_choice(&guarded_only), OmegaChoice::Omega2);
        // Rich open nodes: ω1; poor open nodes: ω2.
        let rich = Instance::new(1.0, vec![5.0, 5.0], vec![0.5, 0.5]).unwrap();
        assert_eq!(theorem_word_choice(&rich), OmegaChoice::Omega1);
        let poor = Instance::new(1.0, vec![0.2, 0.2], vec![3.0, 3.0]).unwrap();
        assert_eq!(theorem_word_choice(&poor), OmegaChoice::Omega2);
    }

    #[test]
    fn omega_choice_reported_correctly() {
        // All open: ω1 and ω2 coincide, ties go to ω1.
        let inst = Instance::open_only(2.0, vec![1.0, 1.0]).unwrap();
        let (_, choice) = best_omega_throughput(&inst, 1e-10);
        assert_eq!(choice, OmegaChoice::Omega1);
    }
}
