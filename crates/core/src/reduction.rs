//! The 3-PARTITION reduction of Theorem 3.1 (NP-completeness of the degree-constrained
//! problem), together with a brute-force 3-PARTITION solver used to exercise both directions
//! of the reduction on small instances.

use crate::error::CoreError;
use crate::scheme::BroadcastScheme;
use bmp_platform::paper::figure8_gadget;
use bmp_platform::Instance;

/// A 3-PARTITION instance: `3p` positive integers summing to `p·target`, each in
/// `(target/4, target/2)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreePartitionInstance {
    /// The items.
    pub items: Vec<u64>,
    /// The per-triple target sum.
    pub target: u64,
}

impl ThreePartitionInstance {
    /// Creates and validates a 3-PARTITION instance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Platform`] when the items violate the 3-PARTITION preconditions
    /// (the validation is shared with the gadget construction).
    pub fn new(items: Vec<u64>, target: u64) -> Result<Self, CoreError> {
        // Reuse the gadget validation (multiple of 3, correct sum, quarter/half window).
        figure8_gadget(&items, target)?;
        Ok(ThreePartitionInstance { items, target })
    }

    /// Number of triples `p`.
    #[must_use]
    pub fn num_triples(&self) -> usize {
        self.items.len() / 3
    }

    /// Builds the broadcast gadget of Figure 8: an open-only instance on which throughput
    /// `target` is reachable under the degree constraints `o_i ≤ ⌈b_i/T⌉` iff this
    /// 3-PARTITION instance is solvable.
    #[must_use]
    pub fn to_broadcast_instance(&self) -> (Instance, f64) {
        figure8_gadget(&self.items, self.target).expect("validated at construction")
    }

    /// Brute-force solver: returns a partition into triples each summing to `target`, if one
    /// exists. Exponential; intended for `p ≤ 4`.
    #[must_use]
    pub fn solve(&self) -> Option<Vec<[usize; 3]>> {
        let mut used = vec![false; self.items.len()];
        let mut triples = Vec::with_capacity(self.num_triples());
        if self.backtrack(&mut used, &mut triples) {
            Some(triples)
        } else {
            None
        }
    }

    fn backtrack(&self, used: &mut [bool], triples: &mut Vec<[usize; 3]>) -> bool {
        let Some(first) = used.iter().position(|&u| !u) else {
            return true;
        };
        used[first] = true;
        for second in first + 1..self.items.len() {
            if used[second] {
                continue;
            }
            used[second] = true;
            for third in second + 1..self.items.len() {
                if used[third] {
                    continue;
                }
                if self.items[first] + self.items[second] + self.items[third] == self.target {
                    used[third] = true;
                    triples.push([first, second, third]);
                    if self.backtrack(used, triples) {
                        return true;
                    }
                    triples.pop();
                    used[third] = false;
                }
            }
            used[second] = false;
        }
        used[first] = false;
        false
    }

    /// Builds the degree-constrained broadcast scheme of Figure 8 from a solution of the
    /// 3-PARTITION instance: the source serves every intermediate node at rate `T` and the
    /// three intermediate nodes of each triple serve one final node at their full rate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidOrder`] if `triples` is not a valid solution.
    pub fn scheme_from_solution(
        &self,
        triples: &[[usize; 3]],
    ) -> Result<BroadcastScheme, CoreError> {
        let p = self.num_triples();
        if triples.len() != p {
            return Err(CoreError::InvalidOrder(format!(
                "expected {p} triples, got {}",
                triples.len()
            )));
        }
        for triple in triples {
            let sum: u64 = triple.iter().map(|&i| self.items[i]).sum();
            if sum != self.target {
                return Err(CoreError::InvalidOrder(format!(
                    "triple {triple:?} sums to {sum}, expected {}",
                    self.target
                )));
            }
        }
        let (instance, t) = self.to_broadcast_instance();
        // Node layout in the gadget after sorting: the source is node 0, the 3p intermediate
        // nodes keep their relative (sorted) order, the p final nodes (bandwidth 0) are last.
        // Map original item indices to sorted positions.
        let mut order: Vec<usize> = (0..self.items.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.items[i]));
        let mut position = vec![0usize; self.items.len()];
        for (rank, &item) in order.iter().enumerate() {
            position[item] = rank + 1; // +1 for the source
        }
        let first_final = 1 + self.items.len();
        let mut scheme = BroadcastScheme::new(instance);
        for &item_position in &position {
            scheme.set_rate(0, item_position, t);
        }
        for (triple_index, triple) in triples.iter().enumerate() {
            let final_node = first_final + triple_index;
            for &item in triple {
                scheme.set_rate(position[item], final_node, self.items[item] as f64);
            }
        }
        Ok(scheme)
    }
}

/// Whether the degree-constrained broadcast problem on the Figure 8 gadget is feasible, i.e.
/// whether the underlying 3-PARTITION instance is solvable (the equivalence proven by
/// Theorem 3.1). Uses the brute-force solver, so only suitable for small `p`.
#[must_use]
pub fn degree_constrained_gadget_feasible(instance: &ThreePartitionInstance) -> bool {
    instance.solve().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::node::degree_lower_bound;

    fn solvable_instance() -> ThreePartitionInstance {
        // p = 2, T = 100: {30, 33, 37} and {26, 35, 39}.
        ThreePartitionInstance::new(vec![30, 33, 37, 26, 35, 39], 100).unwrap()
    }

    fn unsolvable_instance() -> ThreePartitionInstance {
        // p = 2, T = 100, all preconditions met but no partition into two triples of sum 100:
        // items {26, 26, 30, 34, 42, 42} — the two 42s cannot be together (42+42+x=100 needs
        // x=16 < T/4) and separating them forces sums 42+26+30=98 or 42+26+34=102, never 100.
        ThreePartitionInstance::new(vec![26, 26, 30, 34, 42, 42], 100).unwrap()
    }

    #[test]
    fn validation_rejects_bad_instances() {
        assert!(ThreePartitionInstance::new(vec![30, 33], 100).is_err());
        assert!(ThreePartitionInstance::new(vec![10, 45, 45], 100).is_err());
        assert!(ThreePartitionInstance::new(vec![30, 30, 30], 100).is_err());
    }

    #[test]
    fn brute_force_finds_a_partition() {
        let inst = solvable_instance();
        let solution = inst.solve().expect("solvable");
        assert_eq!(solution.len(), 2);
        for triple in &solution {
            let sum: u64 = triple.iter().map(|&i| inst.items[i]).sum();
            assert_eq!(sum, 100);
        }
        assert!(degree_constrained_gadget_feasible(&inst));
    }

    #[test]
    fn brute_force_detects_unsolvable() {
        let inst = unsolvable_instance();
        assert!(inst.solve().is_none());
        assert!(!degree_constrained_gadget_feasible(&inst));
    }

    #[test]
    fn forward_reduction_builds_a_degree_tight_scheme() {
        // A yes-instance of 3-PARTITION maps to a broadcast scheme of throughput T in which
        // every node has outdegree exactly ⌈b_i/T⌉ (no additive slack at all).
        let inst = solvable_instance();
        let solution = inst.solve().unwrap();
        let scheme = inst.scheme_from_solution(&solution).unwrap();
        assert!(scheme.is_feasible(), "violations: {:?}", scheme.validate());
        let (gadget, t) = inst.to_broadcast_instance();
        assert!((scheme.throughput() - t).abs() < 1e-9);
        for node in 0..gadget.num_nodes() {
            let bound = degree_lower_bound(gadget.bandwidth(node), t);
            assert!(
                scheme.outdegree(node) <= bound,
                "node {node}: degree {} exceeds the hard bound {bound}",
                scheme.outdegree(node)
            );
        }
        // The scheme is also acyclic, as noted in the NP-completeness discussion.
        assert!(scheme.is_acyclic());
    }

    #[test]
    fn scheme_from_solution_rejects_bad_triples() {
        let inst = solvable_instance();
        assert!(inst.scheme_from_solution(&[]).is_err());
        assert!(inst.scheme_from_solution(&[[0, 1, 3], [2, 4, 5]]).is_err());
    }

    #[test]
    fn gadget_has_no_wasted_bandwidth() {
        let inst = solvable_instance();
        let (gadget, t) = inst.to_broadcast_instance();
        // Total outgoing bandwidth is exactly (number of receivers)·T: every unit must be
        // used, which is what makes the reduction work.
        let receivers = gadget.num_receivers() as f64;
        assert!((gadget.total_bandwidth() - receivers * t).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_throughput_is_always_reachable() {
        // Without the degree constraint the gadget instance always admits throughput T
        // (Algorithm 1), even for the unsolvable 3-PARTITION instance: the hardness comes
        // from the degree bound alone.
        let inst = unsolvable_instance();
        let (gadget, t) = inst.to_broadcast_instance();
        let scheme = crate::acyclic_open::acyclic_open_scheme(&gadget, t).unwrap();
        assert!(scheme.throughput() + 1e-6 >= t);
        // But Algorithm 1 needs more than ⌈b_i/T⌉ connections at some node.
        let excess = scheme.max_degree_excess(t);
        assert!(excess >= 1);
    }
}
