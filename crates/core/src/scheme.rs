//! Broadcast schemes: the output of every algorithm in this crate.
//!
//! A broadcast scheme assigns a transfer rate `c_{i,j}` to every ordered pair of nodes.
//! Following Section II-D of the paper, a scheme is feasible when every node respects its
//! outgoing-bandwidth budget and no guarded node sends to another guarded node, and its
//! throughput is the minimum over all receivers of the maximum flow from the source in the
//! weighted digraph `c`.
//!
//! # The dirty-edge journal
//!
//! Search loops (the dichotomic drivers, the churn degradation probes, the benchmarks)
//! evaluate long runs of near-identical schemes. Rediscovering *which* rates moved used
//! to cost a full O(n²) rate-matrix scan per evaluation, so every mutation now maintains
//! a journal that [`crate::solver::EvalCtx`] consumes to skip the scan entirely:
//!
//! * every scheme object carries a process-unique [`BroadcastScheme::eval_id`] (fresh on
//!   construction, clone and deserialization — two objects never share an id, so a cached
//!   arena can be associated with exactly one scheme);
//! * [`BroadcastScheme::set_rate`] / [`BroadcastScheme::add_rate`] compare the old and
//!   new value against [`RATE_EPS`]: a mutation that creates or removes an *edge* bumps
//!   [`BroadcastScheme::edge_epoch`] (the edge set changed — evaluators must rebuild),
//!   while a capacity-only change on an existing edge appends the touched `(from, to)`
//!   pair to the journal;
//! * the journal is addressed by *absolute* cursors ([`BroadcastScheme::journal_bounds`]
//!   / [`BroadcastScheme::journal_since`]) and compacts itself once it exceeds a few
//!   entries per node: a caught-up evaluator keeps patching after compaction, a stale one
//!   falls back to the full scan — never to a wrong answer;
//! * [`BroadcastScheme::prune_dust`] only zeroes rates that are already below
//!   [`RATE_EPS`], i.e. values that were never edges, so it touches neither the epoch nor
//!   the journal.
//!
//! The journal is pure bookkeeping: it is excluded from equality, serialization and the
//! serialized document format (a deserialized scheme starts with a fresh id and an empty
//! journal).
//!
//! # Copy-on-probe: how to write a search loop that stays fast
//!
//! The journal fast path keys on *object identity*: a [`BroadcastScheme::eval_id`] is
//! fresh on every construction, clone and deserialization, so an evaluation context can
//! associate its cached arena with exactly one object. The flip side: a search that
//! clones the scheme *inside* its probe loop hands the context a brand-new identity on
//! every probe and silently pays the full O(n²) rate-matrix scan each time. The intended
//! idiom — used by `churn::degradation_tolerance` and every dichotomic driver — is
//! **copy-on-probe**: clone **one working copy** before the loop, then mutate that same
//! object in place per probe, so every mutation lands in its journal and every
//! re-evaluation patches a handful of capacities instead of rescanning the matrix:
//!
//! ```
//! use bmp_core::scheme::BroadcastScheme;
//! use bmp_core::solver::EvalCtx;
//! use bmp_platform::Instance;
//!
//! let instance = Instance::open_only(4.0, vec![2.0, 1.0]).unwrap();
//! let mut nominal = BroadcastScheme::new(instance);
//! nominal.set_rate(0, 1, 2.0);
//! nominal.set_rate(0, 2, 1.0);
//! nominal.set_rate(1, 2, 1.0);
//!
//! let mut ctx = EvalCtx::new();
//! # ctx.set_journal_enabled(true); // the CI matrix exports BMP_DISABLE_JOURNAL=1
//! // ONE clone for the whole search, made before the loop. (A clone per probe would
//! // carry a fresh `eval_id` each time — full rescan on every evaluation.)
//! let mut probe = nominal.clone();
//! let baseline = ctx.throughput(&probe); // first evaluation builds + caches the arena
//! for step in 1..=4 {
//!     let scale = 1.0 - 0.1 * f64::from(step);
//!     probe.set_rate(0, 1, 2.0 * scale); // capacity-only change: journaled
//!     let degraded = ctx.throughput(&probe); // patches 1 capacity, skips the rescan
//!     assert!(degraded <= baseline);
//! }
//! assert_eq!(ctx.rescans_skipped(), 4);
//! assert_eq!(ctx.arena_builds(), 1);
//! ```

use bmp_flow::{eps, FlowArena, FlowNetwork, FlowSolver};
use bmp_platform::node::degree_lower_bound;
use bmp_platform::{Instance, NodeClass, NodeId};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Convenience fallback workspace for the inherent evaluation methods below.
    ///
    /// The *primary* evaluation path is an explicit [`crate::solver::EvalCtx`], which owns
    /// its own arena + solver, retains the arena across near-identical evaluations, and
    /// counts flow solves for telemetry; hot paths (the solver registry, experiment
    /// sweeps, benchmarks) thread one through explicitly. The thread-local only keeps the
    /// ad-hoc calls (`scheme.throughput()` in tests, examples and one-shot tooling)
    /// allocation-free without forcing every caller to carry a context.
    static FLOW_SOLVER: RefCell<FlowSolver> = RefCell::new(FlowSolver::new());
}

/// Rates below this threshold are treated as "no connection" when counting outdegrees and
/// building flow networks; they only arise from floating-point dust.
pub const RATE_EPS: f64 = 1e-7;

/// A feasibility violation detected by [`BroadcastScheme::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeViolation {
    /// Node `node` sends more than its outgoing bandwidth.
    BandwidthExceeded {
        /// Offending node.
        node: NodeId,
        /// Total outgoing rate of the node.
        sent: f64,
        /// Outgoing bandwidth of the node.
        bandwidth: f64,
    },
    /// A guarded → guarded transfer has a positive rate.
    FirewallViolated {
        /// Sending guarded node.
        from: NodeId,
        /// Receiving guarded node.
        to: NodeId,
    },
    /// A rate is negative or not finite.
    InvalidRate {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// The offending value.
        rate: f64,
    },
}

/// Source of process-unique scheme identities (never reused, so an evaluation context can
/// safely key its cached arena by id).
static NEXT_EVAL_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_eval_id() -> u64 {
    NEXT_EVAL_ID.fetch_add(1, Ordering::Relaxed)
}

/// A broadcast scheme over a given instance.
#[derive(Debug)]
pub struct BroadcastScheme {
    instance: Instance,
    /// Row-major rate matrix `c[i * num_nodes + j]`.
    rates: Vec<f64>,
    /// Process-unique identity of this object (see the module docs).
    eval_id: u64,
    /// Incremented whenever a mutation creates or removes an edge.
    edge_epoch: u64,
    /// Absolute cursor of `journal[0]` (grows on compaction; see the module docs).
    journal_base: u64,
    /// Touched `(from, to)` pairs of capacity-only mutations since the last epoch bump or
    /// compaction, oldest first.
    journal: Vec<(NodeId, NodeId)>,
}

impl Clone for BroadcastScheme {
    /// Clones the instance and the rates; the clone is a *new* evaluation identity with a
    /// fresh [`BroadcastScheme::eval_id`] and an empty journal (the original and the clone
    /// may diverge independently, so they must not share journal state).
    fn clone(&self) -> Self {
        BroadcastScheme {
            instance: self.instance.clone(),
            rates: self.rates.clone(),
            eval_id: fresh_eval_id(),
            edge_epoch: 0,
            journal_base: 0,
            journal: Vec::new(),
        }
    }
}

impl PartialEq for BroadcastScheme {
    /// Equality is semantic: same instance, same rate matrix. The journal bookkeeping is
    /// per-object state and does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.instance == other.instance && self.rates == other.rates
    }
}

impl serde::Serialize for BroadcastScheme {
    /// Serializes the semantic fields only (`instance`, `rates`), exactly like the
    /// pre-journal derived implementation, so documents stay interchangeable.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "instance".to_string(),
                serde::Serialize::to_value(&self.instance),
            ),
            ("rates".to_string(), serde::Serialize::to_value(&self.rates)),
        ])
    }
}

impl serde::Deserialize for BroadcastScheme {
    /// Rebuilds the scheme with a fresh evaluation identity and an empty journal (a
    /// document knows nothing about the mutation history of the object it came from).
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::DeError::expected("map", "BroadcastScheme"))?;
        Ok(BroadcastScheme {
            instance: serde::Deserialize::from_value(serde::field(
                obj,
                "instance",
                "BroadcastScheme",
            )?)?,
            rates: serde::Deserialize::from_value(serde::field(obj, "rates", "BroadcastScheme")?)?,
            eval_id: fresh_eval_id(),
            edge_epoch: 0,
            journal_base: 0,
            journal: Vec::new(),
        })
    }
}

impl BroadcastScheme {
    /// Creates an all-zero scheme for `instance`.
    #[must_use]
    pub fn new(instance: Instance) -> Self {
        let n = instance.num_nodes();
        BroadcastScheme {
            instance,
            rates: vec![0.0; n * n],
            eval_id: fresh_eval_id(),
            edge_epoch: 0,
            journal_base: 0,
            journal: Vec::new(),
        }
    }

    /// The underlying instance.
    #[must_use]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    #[inline]
    fn index(&self, from: NodeId, to: NodeId) -> usize {
        from * self.instance.num_nodes() + to
    }

    /// Transfer rate `c_{from,to}`.
    #[must_use]
    pub fn rate(&self, from: NodeId, to: NodeId) -> f64 {
        self.rates[self.index(from, to)]
    }

    /// Sets the transfer rate `c_{from,to}`, journaling the change (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `from == to`.
    pub fn set_rate(&mut self, from: NodeId, to: NodeId, rate: f64) {
        assert_ne!(from, to, "a node cannot send to itself");
        let idx = self.index(from, to);
        let old = self.rates[idx];
        self.rates[idx] = rate;
        self.record_rate_change(from, to, old, rate);
    }

    /// Adds `delta` to the transfer rate `c_{from,to}` (clamping tiny negative results to 0),
    /// journaling the change (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `from == to`.
    pub fn add_rate(&mut self, from: NodeId, to: NodeId, delta: f64) {
        assert_ne!(from, to, "a node cannot send to itself");
        let idx = self.index(from, to);
        let old = self.rates[idx];
        let new = eps::clamp_nonnegative(old + delta);
        self.rates[idx] = new;
        self.record_rate_change(from, to, old, new);
    }

    /// Journal capacity before compaction: a few entries per node, with a floor so tiny
    /// instances can still buffer a whole search round.
    fn journal_capacity(&self) -> usize {
        (4 * self.instance.num_nodes()).max(256)
    }

    /// Maintains the dirty-edge journal for one rate write (see the module docs): an
    /// edge-set change bumps the epoch, a capacity change on an existing edge is appended
    /// to the journal, and a dust-level change (never an edge either way) is ignored.
    fn record_rate_change(&mut self, from: NodeId, to: NodeId, old: f64, new: f64) {
        if old == new {
            return;
        }
        let was_edge = old > RATE_EPS;
        let is_edge = new > RATE_EPS;
        if was_edge != is_edge {
            self.edge_epoch += 1;
            self.journal_base += self.journal.len() as u64;
            self.journal.clear();
        } else if is_edge {
            if self.journal.len() >= self.journal_capacity() {
                // Compaction: drop the buffered entries but keep the absolute cursor
                // space monotone. Evaluators that already consumed everything up to the
                // new base keep patching; stale ones fall back to a full scan.
                self.journal_base += self.journal.len() as u64;
                self.journal.clear();
            }
            self.journal.push((from, to));
        }
    }

    /// Process-unique identity of this scheme object (see the module docs).
    #[must_use]
    pub fn eval_id(&self) -> u64 {
        self.eval_id
    }

    /// Number of edge-set-changing mutations this object has seen. Two evaluations of the
    /// same object with equal epochs are guaranteed to see the same edge *set* (only
    /// capacities may differ, and every difference is journaled).
    #[must_use]
    pub fn edge_epoch(&self) -> u64 {
        self.edge_epoch
    }

    /// Absolute `(base, end)` cursor range of the currently buffered journal entries.
    ///
    /// An evaluator that consumed the journal up to cursor `c` can later patch
    /// incrementally iff `base <= c` (no compaction swallowed unseen entries) and the
    /// epoch is unchanged; the entries to apply are [`BroadcastScheme::journal_since`]`(c)`.
    #[must_use]
    pub fn journal_bounds(&self) -> (u64, u64) {
        (
            self.journal_base,
            self.journal_base + self.journal.len() as u64,
        )
    }

    /// The journaled `(from, to)` pairs from absolute cursor `cursor` onwards, oldest
    /// first. Pairs may repeat; each is an edge of the current edge set whose rate
    /// changed since `cursor`.
    ///
    /// # Panics
    ///
    /// Panics if `cursor` lies outside [`BroadcastScheme::journal_bounds`].
    #[must_use]
    pub fn journal_since(&self, cursor: u64) -> &[(NodeId, NodeId)] {
        let (base, end) = self.journal_bounds();
        assert!(
            (base..=end).contains(&cursor),
            "journal cursor {cursor} outside the buffered range {base}..={end}"
        );
        &self.journal[(cursor - base) as usize..]
    }

    /// Total rate sent by `node`.
    #[must_use]
    pub fn sent(&self, node: NodeId) -> f64 {
        (0..self.instance.num_nodes())
            .map(|j| self.rate(node, j))
            .sum()
    }

    /// Total rate received by `node`.
    #[must_use]
    pub fn received(&self, node: NodeId) -> f64 {
        (0..self.instance.num_nodes())
            .map(|i| self.rate(i, node))
            .sum()
    }

    /// Remaining outgoing bandwidth of `node` (can be slightly negative due to rounding).
    #[must_use]
    pub fn remaining(&self, node: NodeId) -> f64 {
        self.instance.bandwidth(node) - self.sent(node)
    }

    /// Outdegree of `node`: number of receivers it sends a meaningful rate to.
    #[must_use]
    pub fn outdegree(&self, node: NodeId) -> usize {
        (0..self.instance.num_nodes())
            .filter(|&j| self.rate(node, j) > RATE_EPS)
            .count()
    }

    /// The *busiest relay*: the receiver with the largest outdegree (ties broken by the
    /// highest id), or `None` when the instance has no receivers. This is the adversarial
    /// churn victim used throughout the churn analysis, the experiments and the CLI's
    /// `--churn "T:busiest"` token — removing it severs the most subtrees.
    #[must_use]
    pub fn busiest_receiver(&self) -> Option<NodeId> {
        (1..self.instance.num_nodes()).max_by_key(|&node| self.outdegree(node))
    }

    /// Outdegrees of every node, source first.
    #[must_use]
    pub fn outdegrees(&self) -> Vec<usize> {
        (0..self.instance.num_nodes())
            .map(|i| self.outdegree(i))
            .collect()
    }

    /// Slack of `node`'s outdegree over the lower bound `⌈b_i / T⌉` for throughput `T`.
    ///
    /// The paper measures the quality of a scheme by this additive excess (`+1`, `+2`, `+3`
    /// depending on the algorithm).
    #[must_use]
    pub fn degree_excess(&self, node: NodeId, throughput: f64) -> i64 {
        self.outdegree(node) as i64
            - degree_lower_bound(self.instance.bandwidth(node), throughput) as i64
    }

    /// Maximum degree excess over all nodes.
    #[must_use]
    pub fn max_degree_excess(&self, throughput: f64) -> i64 {
        (0..self.instance.num_nodes())
            .map(|i| self.degree_excess(i, throughput))
            .max()
            .unwrap_or(0)
    }

    /// Checks bandwidth, firewall and rate-validity constraints. Returns all violations.
    ///
    /// # Panics
    ///
    /// Panics when the rate matrix does not have `num_nodes²` entries — possible only for a
    /// scheme deserialized from a malformed document, which must not validate silently.
    #[must_use]
    pub fn validate(&self) -> Vec<SchemeViolation> {
        let mut violations = Vec::new();
        let n = self.instance.num_nodes();
        assert_eq!(
            self.rates.len(),
            n * n,
            "rate matrix has {} entries, expected {n}×{n} (malformed scheme document?)",
            self.rates.len()
        );
        // Single pass over the rate matrix: per-row totals are accumulated inline instead
        // of re-scanning each row through `sent`.
        for (from, row) in self.rates.chunks_exact(n).enumerate() {
            let from_guarded = self.instance.class(from) == NodeClass::Guarded;
            let mut sent = 0.0;
            for (to, &rate) in row.iter().enumerate() {
                sent += rate;
                if from == to {
                    // The setters forbid self-loops, but a deserialized matrix can carry
                    // one; it still consumes bandwidth (summed above) and is invalid.
                    if rate != 0.0 {
                        violations.push(SchemeViolation::InvalidRate { from, to, rate });
                    }
                    continue;
                }
                if !rate.is_finite() || rate < -RATE_EPS {
                    violations.push(SchemeViolation::InvalidRate { from, to, rate });
                }
                if rate > RATE_EPS && from_guarded && self.instance.class(to) == NodeClass::Guarded
                {
                    violations.push(SchemeViolation::FirewallViolated { from, to });
                }
            }
            let bandwidth = self.instance.bandwidth(from);
            if !eps::approx_le(sent, bandwidth) {
                violations.push(SchemeViolation::BandwidthExceeded {
                    node: from,
                    sent,
                    bandwidth,
                });
            }
        }
        violations
    }

    /// Whether the scheme satisfies all feasibility constraints.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.validate().is_empty()
    }

    /// The nonzero rates as `(from, to, rate)` triples, skipping dust and the diagonal —
    /// the single definition of "which edges exist" shared by every graph view below.
    fn nonzero_rates(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        let n = self.instance.num_nodes();
        self.rates
            .iter()
            .enumerate()
            .filter_map(move |(idx, &rate)| {
                let (from, to) = (idx / n, idx % n);
                (rate > RATE_EPS && from != to).then_some((from, to, rate))
            })
    }

    /// Converts the scheme into a flow network (one edge per meaningful rate).
    #[must_use]
    pub fn to_flow_network(&self) -> FlowNetwork {
        let n = self.instance.num_nodes();
        let mut network = FlowNetwork::with_capacity(n, n * n / 2);
        for (from, to, rate) in self.nonzero_rates() {
            network.add_edge(from, to, rate);
        }
        network
    }

    /// Converts the scheme into the flat CSR arena the flow solvers operate on (one pass
    /// over the nonzero rates).
    #[must_use]
    pub fn to_flow_arena(&self) -> FlowArena {
        let edges: Vec<(NodeId, NodeId, f64)> = self.nonzero_rates().collect();
        FlowArena::from_edges(self.instance.num_nodes(), &edges)
    }

    /// Maximum flow from the source to `receiver` in the scheme's weighted digraph.
    #[must_use]
    pub fn max_flow_to(&self, receiver: NodeId) -> f64 {
        let arena = self.to_flow_arena();
        FLOW_SOLVER.with(|solver| solver.borrow_mut().max_flow(&arena, 0, receiver))
    }

    /// Throughput of the scheme: `min_k maxflow(C0 → Ck)` over all receivers (Section II-D).
    ///
    /// Evaluated with the batched CSR kernel: one arena build, then per-receiver max-flows
    /// in ascending in-capacity order, each capped at the running minimum
    /// ([`FlowSolver::min_max_flow`]). The result is exactly the minimum of the individual
    /// max-flows.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let arena = self.to_flow_arena();
        let receivers: Vec<NodeId> = self.instance.receivers().collect();
        FLOW_SOLVER.with(|solver| solver.borrow_mut().min_max_flow(&arena, 0, &receivers))
    }

    /// Like [`BroadcastScheme::throughput`], but fanning the receivers out across the
    /// persistent worker pool ([`bmp_flow::FlowPool::global`]) with up to `threads`
    /// concurrent lanes (long-lived workers with warm solver workspaces; this thread
    /// works a share itself).
    ///
    /// Worth it for large instances only; the sequential batched evaluator wins below a
    /// few hundred nodes. The pool is shared and capped, so calls from inside an
    /// already-parallel sweep stay bounded — but such callers should still prefer
    /// [`BroadcastScheme::throughput`], as the outer fan-out owns the cores. Searches
    /// re-evaluating near-identical schemes should use an
    /// [`crate::solver::EvalCtx`] with [`crate::solver::EvalCtx::set_parallelism`]
    /// instead: it retains the arena across probes, which this convenience method
    /// rebuilds per call.
    #[must_use]
    pub fn throughput_parallel(&self, threads: usize) -> f64 {
        let receivers: Vec<NodeId> = self.instance.receivers().collect();
        if threads.min(receivers.len()) <= 1 {
            return self.throughput();
        }
        let arena = std::sync::Arc::new(self.to_flow_arena());
        bmp_flow::FlowPool::global().min_max_flow(&arena, 0, &receivers, threads)
    }

    /// [`BroadcastScheme::throughput`] with the worker count picked by
    /// [`bmp_flow::suggested_flow_threads`]: sequential below the fan-out break-even
    /// (small instances), scoped-thread parallel above it (n ≥ 1000 overlays).
    #[must_use]
    pub fn throughput_auto(&self) -> f64 {
        let threads = bmp_flow::suggested_flow_threads(
            self.instance.num_nodes(),
            self.instance.receivers().count(),
        );
        if threads <= 1 {
            self.throughput()
        } else {
            self.throughput_parallel(threads)
        }
    }

    /// Topological order of the scheme's digraph if it is acyclic, `None` otherwise.
    ///
    /// The returned order always starts with the source when the source has no incoming
    /// edges (which is the case for every scheme built by this crate).
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.instance.num_nodes();
        // One pass over the nonzero rates builds the adjacency lists and indegrees; the
        // Kahn loop below then touches only actual edges instead of rescanning the matrix.
        let mut indegree = vec![0usize; n];
        let mut successors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (from, to, _) in self.nonzero_rates() {
            indegree[to] += 1;
            successors[from].push(to);
        }
        // Kahn's algorithm, preferring smaller indices for determinism.
        let mut order = Vec::with_capacity(n);
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&v| indegree[v] == 0)
            .map(std::cmp::Reverse)
            .collect();
        while let Some(std::cmp::Reverse(v)) = ready.pop() {
            order.push(v);
            for &to in &successors[v] {
                indegree[to] -= 1;
                if indegree[to] == 0 {
                    ready.push(std::cmp::Reverse(to));
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Whether the scheme's digraph is acyclic.
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Removes rates below [`RATE_EPS`] (floating-point dust) from the matrix.
    ///
    /// Dust is never an edge ([`BroadcastScheme::edges`] and the flow views share the
    /// strict `> RATE_EPS` threshold), so zeroing it changes neither the edge set nor any
    /// edge capacity: the journal and the epoch are deliberately left untouched, and a
    /// journal-patching evaluator remains exact across a prune.
    pub fn prune_dust(&mut self) {
        for rate in &mut self.rates {
            if *rate <= RATE_EPS {
                *rate = 0.0;
            }
        }
    }

    /// Edges of the scheme as `(from, to, rate)` triples, skipping dust (one pass over the
    /// nonzero rates).
    #[must_use]
    pub fn edges(&self) -> Vec<(NodeId, NodeId, f64)> {
        self.nonzero_rates().collect()
    }

    /// Like [`BroadcastScheme::edges`], but writing into `buf` (cleared first) so repeat
    /// callers — the incremental arena cache of [`crate::solver::EvalCtx`] — reuse one
    /// allocation across evaluations.
    pub fn edges_into(&self, buf: &mut Vec<(NodeId, NodeId, f64)>) {
        buf.clear();
        buf.extend(self.nonzero_rates());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    /// An optimal cyclic scheme of throughput 4.4 for the Figure 1 instance (the rates differ
    /// from the paper's drawing but saturate the same bound of Lemma 5.1: every node receives
    /// exactly 4.4 and every unit of outgoing bandwidth is used).
    fn figure1_optimal_scheme() -> BroadcastScheme {
        let mut s = BroadcastScheme::new(figure1());
        // Source (b0 = 6).
        s.set_rate(0, 1, 0.2);
        s.set_rate(0, 3, 3.4);
        s.set_rate(0, 4, 1.2);
        s.set_rate(0, 5, 1.2);
        // Open node C1 (b1 = 5).
        s.set_rate(1, 2, 0.8);
        s.set_rate(1, 3, 1.0);
        s.set_rate(1, 4, 1.6);
        s.set_rate(1, 5, 1.6);
        // Open node C2 (b2 = 5).
        s.set_rate(2, 1, 1.8);
        s.set_rate(2, 4, 1.6);
        s.set_rate(2, 5, 1.6);
        // Guarded nodes relay towards the open nodes.
        s.set_rate(3, 1, 2.4);
        s.set_rate(3, 2, 1.6);
        s.set_rate(4, 2, 1.0);
        s.set_rate(5, 2, 1.0);
        s
    }

    #[test]
    fn rates_and_sums() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 1, 2.0);
        s.set_rate(0, 2, 3.0);
        s.add_rate(0, 1, 1.0);
        assert_eq!(s.rate(0, 1), 3.0);
        assert_eq!(s.sent(0), 6.0);
        assert_eq!(s.received(1), 3.0);
        assert_eq!(s.remaining(0), 0.0);
        assert_eq!(s.outdegree(0), 2);
        assert_eq!(s.outdegrees(), vec![2, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "cannot send to itself")]
    fn self_loop_rejected() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(1, 1, 1.0);
    }

    #[test]
    fn validation_catches_bandwidth_excess() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(4, 1, 2.0); // node 4 has bandwidth 1
        let violations = s.validate();
        assert!(violations
            .iter()
            .any(|v| matches!(v, SchemeViolation::BandwidthExceeded { node: 4, .. })));
        assert!(!s.is_feasible());
    }

    #[test]
    fn validation_catches_firewall_violation() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(3, 4, 0.5); // both guarded
        assert!(s
            .validate()
            .iter()
            .any(|v| matches!(v, SchemeViolation::FirewallViolated { from: 3, to: 4 })));
    }

    #[test]
    fn validation_catches_negative_rate() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 1, -1.0);
        assert!(s
            .validate()
            .iter()
            .any(|v| matches!(v, SchemeViolation::InvalidRate { .. })));
    }

    #[test]
    fn empty_scheme_is_feasible_with_zero_throughput() {
        let s = BroadcastScheme::new(figure1());
        assert!(s.is_feasible());
        assert_eq!(s.throughput(), 0.0);
        assert!(s.is_acyclic());
    }

    #[test]
    fn figure1_scheme_reaches_announced_throughput() {
        let s = figure1_optimal_scheme();
        assert!(s.is_feasible(), "violations: {:?}", s.validate());
        let throughput = s.throughput();
        assert!(
            (throughput - 4.4).abs() < 1e-9,
            "throughput = {throughput}, expected 4.4"
        );
        // The scheme of Figure 1 is cyclic (e.g. C1 → C2 and C2 → C1).
        assert!(!s.is_acyclic());
    }

    #[test]
    fn figure2_acyclic_scheme() {
        // An acyclic scheme following the order 0 3 1 2 4 5 of Figure 2, throughput 4.
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 3, 4.0);
        s.set_rate(0, 2, 2.0);
        s.set_rate(3, 1, 4.0);
        s.set_rate(1, 2, 2.0);
        s.set_rate(1, 4, 3.0);
        s.set_rate(2, 4, 1.0);
        s.set_rate(2, 5, 4.0);
        assert!(s.is_feasible(), "violations: {:?}", s.validate());
        assert!(s.is_acyclic());
        let throughput = s.throughput();
        assert!(
            (throughput - 4.0).abs() < 1e-9,
            "throughput = {throughput}, expected 4"
        );
        let order = s.topological_order().unwrap();
        assert_eq!(order[0], 0);
        // Node 3 must appear before node 1 because it feeds it.
        let pos3 = order.iter().position(|&v| v == 3).unwrap();
        let pos1 = order.iter().position(|&v| v == 1).unwrap();
        assert!(pos3 < pos1);
    }

    #[test]
    fn degree_excess_matches_definition() {
        let s = figure1_optimal_scheme();
        // Source: bandwidth 6, T = 4.4 → ⌈6/4.4⌉ = 2; it serves 4 nodes in this scheme.
        assert_eq!(s.outdegree(0), 4);
        assert_eq!(s.degree_excess(0, 4.4), 4 - 2);
        // Guarded node C4 has bandwidth 1 → ⌈1/4.4⌉ = 1; it serves exactly one node.
        assert_eq!(s.degree_excess(4, 4.4), 0);
        assert!(s.max_degree_excess(4.4) >= 2);
    }

    #[test]
    fn prune_dust_removes_tiny_rates() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 1, 1e-12);
        s.set_rate(0, 2, 2.0);
        s.prune_dust();
        assert_eq!(s.rate(0, 1), 0.0);
        assert_eq!(s.rate(0, 2), 2.0);
        assert_eq!(s.edges(), vec![(0, 2, 2.0)]);
    }

    /// Acceptance check for the batched evaluator: on the paper's Figure 1 (throughput
    /// 4.4) and Figure 2 (throughput 4.0) schemes, the batched multi-sink evaluation must
    /// equal the naive per-receiver minimum bit-for-bit.
    #[test]
    fn batched_throughput_equals_naive_on_paper_schemes() {
        let figure2_scheme = {
            let mut s = BroadcastScheme::new(figure1());
            s.set_rate(0, 3, 4.0);
            s.set_rate(0, 2, 2.0);
            s.set_rate(3, 1, 4.0);
            s.set_rate(1, 2, 2.0);
            s.set_rate(1, 4, 3.0);
            s.set_rate(2, 4, 1.0);
            s.set_rate(2, 5, 4.0);
            s
        };
        for (scheme, expected) in [(figure1_optimal_scheme(), 4.4), (figure2_scheme, 4.0)] {
            let naive = scheme
                .instance()
                .receivers()
                .map(|k| scheme.max_flow_to(k))
                .fold(f64::INFINITY, f64::min);
            let batched = scheme.throughput();
            assert_eq!(batched, naive, "batched {batched} vs naive {naive}");
            let parallel = scheme.throughput_parallel(4);
            assert_eq!(parallel, naive, "parallel {parallel} vs naive {naive}");
            assert!(
                (batched - expected).abs() < 1e-9,
                "expected {expected}, got {batched}"
            );
        }
    }

    #[test]
    fn max_flow_to_individual_receiver() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 1, 3.0);
        s.set_rate(1, 2, 2.0);
        assert!((s.max_flow_to(1) - 3.0).abs() < 1e-9);
        assert!((s.max_flow_to(2) - 2.0).abs() < 1e-9);
        assert_eq!(s.max_flow_to(5), 0.0);
    }

    /// Mutates the serialized form of `scheme` through the JSON value model and
    /// deserializes it back, bypassing the setters' invariants like a hand-edited file.
    fn rebuild_with_rates(
        scheme: &BroadcastScheme,
        edit: impl FnOnce(&mut Vec<serde::Value>),
    ) -> BroadcastScheme {
        let json = serde_json::to_string(scheme).unwrap();
        let mut value: serde::Value = serde_json::from_str(&json).unwrap();
        let serde::Value::Object(fields) = &mut value else {
            panic!("scheme serializes as an object");
        };
        let rates = fields
            .iter_mut()
            .find(|(key, _)| key == "rates")
            .map(|(_, value)| value)
            .unwrap();
        let serde::Value::Array(items) = rates else {
            panic!("rates serialize as an array");
        };
        edit(items);
        serde_json::from_str(&serde_json::to_string(&value).unwrap()).unwrap()
    }

    #[test]
    fn validate_rejects_deserialized_self_loop() {
        // A hand-edited document can put rate mass on the diagonal, which the setters
        // forbid; validation must flag it (and count it against the sender's bandwidth).
        let tampered = rebuild_with_rates(&BroadcastScheme::new(figure1()), |rates| {
            rates[0] = serde::Value::F64(1000.0); // c_{0,0}
        });
        let violations = tampered.validate();
        assert!(violations
            .iter()
            .any(|v| matches!(v, SchemeViolation::InvalidRate { from: 0, to: 0, .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, SchemeViolation::BandwidthExceeded { node: 0, .. })));
    }

    #[test]
    #[should_panic(expected = "malformed scheme document")]
    fn validate_rejects_truncated_rate_matrix() {
        let truncated = rebuild_with_rates(&figure1_optimal_scheme(), |rates| {
            rates.pop();
        });
        let _ = truncated.validate();
    }

    #[test]
    fn serde_roundtrip() {
        let s = figure1_optimal_scheme();
        let json = serde_json::to_string(&s).unwrap();
        let back: BroadcastScheme = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn journal_records_capacity_changes_and_epochs_edge_set_changes() {
        let mut s = BroadcastScheme::new(figure1());
        let epoch0 = s.edge_epoch();
        assert_eq!(s.journal_bounds(), (0, 0));
        // Creating an edge is an edge-set change: epoch bump, no journal entry.
        s.set_rate(0, 1, 2.0);
        assert_eq!(s.edge_epoch(), epoch0 + 1);
        assert_eq!(s.journal_bounds(), (0, 0));
        // Moving an existing edge's rate is journaled.
        s.set_rate(0, 1, 3.0);
        s.add_rate(0, 1, 0.5);
        assert_eq!(s.edge_epoch(), epoch0 + 1);
        let (base, end) = s.journal_bounds();
        assert_eq!(end - base, 2);
        assert_eq!(s.journal_since(base), &[(0, 1), (0, 1)]);
        // Writing the identical value is not a change at all.
        s.set_rate(0, 1, 3.5);
        assert_eq!(s.journal_bounds(), (base, end));
        // Removing the edge bumps the epoch and flushes the journal.
        s.set_rate(0, 1, 0.0);
        assert_eq!(s.edge_epoch(), epoch0 + 2);
        let (base2, end2) = s.journal_bounds();
        assert_eq!(base2, end2);
        // Dust-to-dust writes are invisible to the journal.
        s.set_rate(0, 2, RATE_EPS / 2.0);
        assert_eq!(s.edge_epoch(), epoch0 + 2);
        assert_eq!(s.journal_bounds(), (base2, end2));
    }

    #[test]
    fn journal_compaction_keeps_absolute_cursors_monotone() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 1, 1.0);
        let capacity = (4 * s.instance().num_nodes()).max(256);
        for k in 0..capacity {
            s.set_rate(0, 1, 2.0 + k as f64);
        }
        let (_, end) = s.journal_bounds();
        assert_eq!(end, capacity as u64);
        // The next journaled write exceeds the capacity: the buffer compacts, the
        // absolute end keeps growing, and a cursor inside the dropped range is rejected.
        s.set_rate(0, 1, 1.5);
        let (base, end) = s.journal_bounds();
        assert_eq!(base, capacity as u64);
        assert_eq!(end, capacity as u64 + 1);
        assert_eq!(s.journal_since(base).len(), 1);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.journal_since(base - 1)
        }))
        .is_err());
    }

    #[test]
    fn clone_and_deserialization_reset_the_evaluation_identity() {
        let mut s = figure1_optimal_scheme();
        s.set_rate(0, 1, 0.3);
        let clone = s.clone();
        assert_eq!(clone, s);
        assert_ne!(clone.eval_id(), s.eval_id());
        assert_eq!(clone.edge_epoch(), 0);
        assert_eq!(clone.journal_bounds(), (0, 0));
        let back: BroadcastScheme =
            serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_ne!(back.eval_id(), s.eval_id());
        assert_eq!(back.journal_bounds(), (0, 0));
    }

    #[test]
    fn prune_dust_leaves_the_journal_untouched() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(0, 2, 2.0);
        s.set_rate(0, 2, 2.5); // journaled
        s.set_rate(0, 1, 1e-12); // dust, invisible
        let epoch = s.edge_epoch();
        let bounds = s.journal_bounds();
        s.prune_dust();
        assert_eq!(s.edge_epoch(), epoch);
        assert_eq!(s.journal_bounds(), bounds);
        assert_eq!(s.rate(0, 1), 0.0);
    }

    #[test]
    fn throughput_auto_matches_sequential_evaluation() {
        let s = figure1_optimal_scheme();
        assert_eq!(s.throughput_auto(), s.throughput());
    }

    #[test]
    fn cyclic_scheme_detected() {
        let mut s = BroadcastScheme::new(figure1());
        s.set_rate(1, 2, 1.0);
        s.set_rate(2, 1, 1.0);
        assert!(!s.is_acyclic());
        assert!(s.topological_order().is_none());
    }
}
