//! The shared incremental dichotomic driver behind every bisection in the crate.
//!
//! Three call sites used to carry their own copy of the same loop — the Theorem 4.1
//! solver ([`crate::acyclic_guarded`]), the per-word optimum
//! ([`crate::word::optimal_throughput_for_word`], which also serves the per-order search
//! of [`crate::conservative`]), and the exhaustive oracle ([`crate::exhaustive`]). They
//! now all drive [`DichotomicSearch::maximize`], which fixes the bracketing convention
//! (`lo` feasible, `hi` infeasible), the relative stopping rule, and the defensive
//! iteration cap in one place, and reports how many probes were spent so callers can
//! surface it as telemetry ([`crate::solver::Telemetry::bisection_iters`]).

/// Dichotomic search over a monotone feasibility predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DichotomicSearch {
    /// Relative precision of the search: the loop stops once the bracket width drops
    /// below `tolerance * hi.max(1.0)`.
    pub tolerance: f64,
    /// Maximum number of bisection iterations (defensive cap; 200 halvings exhaust an
    /// `f64` bracket long before this triggers).
    pub max_iterations: usize,
}

impl Default for DichotomicSearch {
    fn default() -> Self {
        DichotomicSearch {
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Result of a [`DichotomicSearch::maximize`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOutcome {
    /// Largest value found feasible (a lower bound on the true supremum, within the
    /// search tolerance).
    pub value: f64,
    /// Number of predicate probes spent, including the initial probe of `upper`.
    pub probes: u64,
}

impl DichotomicSearch {
    /// Creates a driver with a custom relative tolerance and the default iteration cap.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        DichotomicSearch {
            tolerance,
            ..Self::default()
        }
    }

    /// Largest `t ∈ [0, upper]` with `feasible(t)`, assuming `feasible` is monotone
    /// (feasible on an interval starting at 0) and `feasible(0)` holds.
    ///
    /// When `upper <= 0` the search returns 0 without probing. When `upper` itself is
    /// feasible it is returned after a single probe. Otherwise the invariant `lo`
    /// feasible / `hi` infeasible is maintained until the bracket is narrower than
    /// `tolerance * hi.max(1.0)` and the feasible end is returned.
    pub fn maximize(&self, upper: f64, feasible: impl FnMut(f64) -> bool) -> SearchOutcome {
        self.maximize_from(0.0, upper, feasible)
    }

    /// [`DichotomicSearch::maximize`] warm-started from a caller-supplied bracket hint:
    /// a value the caller believes to be feasible (e.g. the verified residual throughput
    /// of an already-deployed overlay, in the incremental repair path).
    ///
    /// The hint is advisory, never trusted: when `0 < lower_hint < upper` it is probed
    /// once after the initial `upper` probe, and the bracket starts at `[hint, upper]`
    /// when the probe confirms it or `[0, hint]` when it refutes it — the feasible-lo /
    /// infeasible-hi invariant holds either way, so a hint that overshoots the true
    /// optimum (a cyclic residual above the acyclic optimum, say) only narrows the
    /// bracket from the other side. A hint outside `(0, upper)` is ignored and the
    /// search is exactly [`DichotomicSearch::maximize`], probe for probe.
    pub fn maximize_from(
        &self,
        lower_hint: f64,
        upper: f64,
        mut feasible: impl FnMut(f64) -> bool,
    ) -> SearchOutcome {
        if upper <= 0.0 {
            return SearchOutcome {
                value: 0.0,
                probes: 0,
            };
        }
        let mut probes = 1;
        if feasible(upper) {
            return SearchOutcome {
                value: upper,
                probes,
            };
        }
        let mut lo = 0.0_f64;
        let mut hi = upper;
        if lower_hint > 0.0 && lower_hint < upper {
            probes += 1;
            if feasible(lower_hint) {
                lo = lower_hint;
            } else {
                hi = lower_hint;
            }
        }
        for _ in 0..self.max_iterations {
            if hi - lo <= self.tolerance * hi.max(1.0) {
                break;
            }
            let mid = 0.5 * (lo + hi);
            probes += 1;
            if feasible(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        SearchOutcome { value: lo, probes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold_of_a_step_predicate() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(10.0, |t| t <= std::f64::consts::PI);
        assert!((outcome.value - std::f64::consts::PI).abs() < 1e-9);
        assert!(outcome.probes > 10);
    }

    #[test]
    fn feasible_upper_returns_immediately() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(4.0, |_| true);
        assert_eq!(outcome.value, 4.0);
        assert_eq!(outcome.probes, 1);
    }

    #[test]
    fn non_positive_upper_skips_probing() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(0.0, |_| panic!("must not probe"));
        assert_eq!(outcome.value, 0.0);
        assert_eq!(outcome.probes, 0);
        assert_eq!(search.maximize(-3.0, |_| panic!()).value, 0.0);
    }

    #[test]
    fn tolerance_controls_probe_count() {
        let coarse = DichotomicSearch::with_tolerance(1e-3);
        let fine = DichotomicSearch::with_tolerance(1e-12);
        let coarse_probes = coarse.maximize(8.0, |t| t <= 5.5).probes;
        let fine_probes = fine.maximize(8.0, |t| t <= 5.5).probes;
        assert!(coarse_probes < fine_probes);
        // Both brackets still contain the threshold from below.
        assert!(coarse.maximize(8.0, |t| t <= 5.5).value <= 5.5);
    }

    #[test]
    fn feasible_hint_narrows_the_bracket_without_changing_the_answer() {
        // The repair scenario: the residual hint sits close to the upper bound, so the
        // initial bracket [hint, upper] is much narrower than [0, upper] and the probe
        // spent confirming the hint pays for itself several times over.
        let search = DichotomicSearch::default();
        let threshold = 9.0;
        let cold = search.maximize(10.0, |t| t <= threshold);
        let warm = search.maximize_from(8.9, 10.0, |t| t <= threshold);
        assert!((warm.value - threshold).abs() < 1e-8);
        assert!(
            warm.value >= 8.9,
            "the confirmed hint is a floor on the answer"
        );
        assert!(
            warm.probes < cold.probes,
            "warm {} vs cold {}",
            warm.probes,
            cold.probes
        );
    }

    #[test]
    fn infeasible_hint_is_refuted_and_still_brackets_the_threshold() {
        // The hint overshoots the true optimum (the cyclic-residual case): the probe
        // refutes it and the bracket collapses to [0, hint] — correct answer anyway.
        let search = DichotomicSearch::default();
        let outcome = search.maximize_from(7.0, 10.0, |t| t <= 2.5);
        assert!((outcome.value - 2.5).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_hints_degenerate_to_the_cold_search() {
        let search = DichotomicSearch::default();
        let cold = search.maximize(8.0, |t| t <= 5.5);
        for hint in [0.0, -1.0, 8.0, 9.5] {
            let warm = search.maximize_from(hint, 8.0, |t| t <= 5.5);
            assert_eq!(warm, cold, "hint {hint} must be ignored");
        }
        // A feasible upper short-circuits before the hint is ever probed.
        let outcome = search.maximize_from(2.0, 4.0, |_| true);
        assert_eq!(outcome.probes, 1);
        assert_eq!(outcome.value, 4.0);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let search = DichotomicSearch {
            tolerance: 0.0,
            max_iterations: 7,
        };
        let outcome = search.maximize(1.0, |t| t <= 0.3);
        // One probe of the upper bound plus at most seven bisection probes.
        assert!(outcome.probes <= 8);
        assert!(outcome.value <= 0.3);
    }
}
