//! The shared incremental dichotomic driver behind every bisection in the crate.
//!
//! Three call sites used to carry their own copy of the same loop — the Theorem 4.1
//! solver ([`crate::acyclic_guarded`]), the per-word optimum
//! ([`crate::word::optimal_throughput_for_word`], which also serves the per-order search
//! of [`crate::conservative`]), and the exhaustive oracle ([`crate::exhaustive`]). They
//! now all drive [`DichotomicSearch::maximize`], which fixes the bracketing convention
//! (`lo` feasible, `hi` infeasible), the relative stopping rule, and the defensive
//! iteration cap in one place, and reports how many probes were spent so callers can
//! surface it as telemetry ([`crate::solver::Telemetry::bisection_iters`]).

/// Dichotomic search over a monotone feasibility predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DichotomicSearch {
    /// Relative precision of the search: the loop stops once the bracket width drops
    /// below `tolerance * hi.max(1.0)`.
    pub tolerance: f64,
    /// Maximum number of bisection iterations (defensive cap; 200 halvings exhaust an
    /// `f64` bracket long before this triggers).
    pub max_iterations: usize,
}

impl Default for DichotomicSearch {
    fn default() -> Self {
        DichotomicSearch {
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Result of a [`DichotomicSearch::maximize`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOutcome {
    /// Largest value found feasible (a lower bound on the true supremum, within the
    /// search tolerance).
    pub value: f64,
    /// Number of predicate probes spent, including the initial probe of `upper`.
    pub probes: u64,
}

impl DichotomicSearch {
    /// Creates a driver with a custom relative tolerance and the default iteration cap.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        DichotomicSearch {
            tolerance,
            ..Self::default()
        }
    }

    /// Largest `t ∈ [0, upper]` with `feasible(t)`, assuming `feasible` is monotone
    /// (feasible on an interval starting at 0) and `feasible(0)` holds.
    ///
    /// When `upper <= 0` the search returns 0 without probing. When `upper` itself is
    /// feasible it is returned after a single probe. Otherwise the invariant `lo`
    /// feasible / `hi` infeasible is maintained until the bracket is narrower than
    /// `tolerance * hi.max(1.0)` and the feasible end is returned.
    pub fn maximize(&self, upper: f64, mut feasible: impl FnMut(f64) -> bool) -> SearchOutcome {
        if upper <= 0.0 {
            return SearchOutcome {
                value: 0.0,
                probes: 0,
            };
        }
        let mut probes = 1;
        if feasible(upper) {
            return SearchOutcome {
                value: upper,
                probes,
            };
        }
        let mut lo = 0.0_f64;
        let mut hi = upper;
        for _ in 0..self.max_iterations {
            if hi - lo <= self.tolerance * hi.max(1.0) {
                break;
            }
            let mid = 0.5 * (lo + hi);
            probes += 1;
            if feasible(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        SearchOutcome { value: lo, probes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold_of_a_step_predicate() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(10.0, |t| t <= std::f64::consts::PI);
        assert!((outcome.value - std::f64::consts::PI).abs() < 1e-9);
        assert!(outcome.probes > 10);
    }

    #[test]
    fn feasible_upper_returns_immediately() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(4.0, |_| true);
        assert_eq!(outcome.value, 4.0);
        assert_eq!(outcome.probes, 1);
    }

    #[test]
    fn non_positive_upper_skips_probing() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(0.0, |_| panic!("must not probe"));
        assert_eq!(outcome.value, 0.0);
        assert_eq!(outcome.probes, 0);
        assert_eq!(search.maximize(-3.0, |_| panic!()).value, 0.0);
    }

    #[test]
    fn tolerance_controls_probe_count() {
        let coarse = DichotomicSearch::with_tolerance(1e-3);
        let fine = DichotomicSearch::with_tolerance(1e-12);
        let coarse_probes = coarse.maximize(8.0, |t| t <= 5.5).probes;
        let fine_probes = fine.maximize(8.0, |t| t <= 5.5).probes;
        assert!(coarse_probes < fine_probes);
        // Both brackets still contain the threshold from below.
        assert!(coarse.maximize(8.0, |t| t <= 5.5).value <= 5.5);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let search = DichotomicSearch {
            tolerance: 0.0,
            max_iterations: 7,
        };
        let outcome = search.maximize(1.0, |t| t <= 0.3);
        // One probe of the upper bound plus at most seven bisection probes.
        assert!(outcome.probes <= 8);
        assert!(outcome.value <= 0.3);
    }
}
