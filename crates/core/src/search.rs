//! The shared incremental dichotomic driver behind every bisection in the crate.
//!
//! Three call sites used to carry their own copy of the same loop — the Theorem 4.1
//! solver ([`crate::acyclic_guarded`]), the per-word optimum
//! ([`crate::word::optimal_throughput_for_word`], which also serves the per-order search
//! of [`crate::conservative`]), and the exhaustive oracle ([`crate::exhaustive`]). They
//! now all drive [`DichotomicSearch::maximize`], which fixes the bracketing convention
//! (`lo` feasible, `hi` infeasible), the relative stopping rule, and the defensive
//! iteration cap in one place, and reports how many probes were spent so callers can
//! surface it as telemetry ([`crate::solver::Telemetry::bisection_iters`]).
//!
//! # Speculative mode: the state machine and its determinism contract
//!
//! [`DichotomicSearch::maximize_speculative_from`] runs the *same* search with the
//! probes regrouped into concurrent batches. Each round it materialises the bracket's
//! candidate tree of depth `d`: a heap-indexed array of `2^(d+1) - 1` midpoints where
//! node `k` holds the midpoint of its bracket, child `2k + 1` the follow-up midpoint
//! should `k` probe infeasible (bracket `[lo, mid]`), and child `2k + 2` the follow-up
//! should it probe feasible (`[mid, hi]`). The whole tree is handed to the batch
//! evaluator in one call — on a pooled evaluator, `2^(d+1) - 1` concurrent lanes —
//! and the driver then *walks* the tree exactly as the serial loop would: consume the
//! root, let the real verdict pick a child, repeat, re-checking the stopping rule and
//! the iteration cap before every consumed step. Consumed nodes advance the bracket;
//! evaluated-but-unconsumed nodes are the price of speculation.
//!
//! The determinism contract: **every speculative run is bit-identical to the serial
//! search** — same bracket sequence, same final value, same `probes` count — because
//! each tree node's midpoint is computed by the very expression (`0.5 * (lo + hi)`)
//! on the very values the serial loop would use, verdicts come from the same pure
//! predicate, and the walk consumes them in serial order under the serial stopping
//! rule. Speculation changes only *when* probes are evaluated, never *which* bracket
//! path is taken. The extra work is accounted separately:
//! [`SearchOutcome::probes_speculated`] counts the non-root candidates evaluated per
//! round and [`SearchOutcome::probes_wasted`] the evaluated candidates the walk never
//! consumed, so telemetry can report the wager's cost without perturbing the serial
//! `probes` accounting. The preamble (the `upper` probe and the optional warm-start
//! hint probe) is never speculated: each is a batch of one.
//!
//! [`BatchedSearch`] is the cross-*instance* counterpart: many independent searches
//! advanced in lockstep, one pending probe per unfinished cell per round, all of a
//! round's probes interleaved into one shared batch. Each cell's probe sequence is
//! exactly its own serial search, so results and per-cell probe counts are
//! bit-identical to running the cells one by one; only the grouping changes.
//! Batching and speculation are orthogonal and composable in principle, but the
//! drivers here keep them separate: a batched round already fills the pool with one
//! probe per cell, so speculating inside it would only displace fair-share work.
//!
//! Both drivers compose with warm residual reuse (`EvalCtx::set_incremental` /
//! `bmp_flow::incremental`): the search itself only sees verdicts, but the flow-backed
//! predicates it drives evaluate near-identical capacity vectors probe after probe, so
//! each probe's max-flows can start from the previous probe's retained residual. The
//! warm path is constructed so every verdict, bracket and final value stays
//! bit-identical to cold evaluation — the same contract speculation holds.

/// Dichotomic search over a monotone feasibility predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DichotomicSearch {
    /// Relative precision of the search: the loop stops once the bracket width drops
    /// below `tolerance * hi.max(1.0)`.
    pub tolerance: f64,
    /// Maximum number of bisection iterations (defensive cap; 200 halvings exhaust an
    /// `f64` bracket long before this triggers).
    pub max_iterations: usize,
}

impl Default for DichotomicSearch {
    fn default() -> Self {
        DichotomicSearch {
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Depth cap for speculative search: depth 6 already means 127 candidates per round,
/// far past the lane count of any pool this crate drives (the global flow pool caps at
/// 8 workers), so deeper requests are clamped rather than allowed to build
/// exponentially useless trees.
pub const MAX_SPECULATION_DEPTH: usize = 6;

/// Default speculation depth when a caller enables speculation without choosing one:
/// one step of lookahead (3 candidates per round), the break-even sweet spot on 2–4
/// free pool lanes (see the "when speculation wins" note in `bmp-flow`'s crate docs).
pub const DEFAULT_SPECULATION_DEPTH: usize = 1;

/// Result of a [`DichotomicSearch::maximize`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOutcome {
    /// Largest value found feasible (a lower bound on the true supremum, within the
    /// search tolerance).
    pub value: f64,
    /// Number of predicate probes spent, including the initial probe of `upper`.
    /// Identical between the serial and speculative drivers: speculative extras are
    /// accounted in [`SearchOutcome::probes_speculated`], never here.
    pub probes: u64,
    /// Speculative candidates evaluated beyond each round's root (zero for the serial
    /// driver). `probes + probes_speculated` is the total predicate work performed.
    pub probes_speculated: u64,
    /// Evaluated speculative candidates the bracket walk never consumed — the sunk
    /// cost of losing wagers. Always at most [`SearchOutcome::probes_speculated`].
    pub probes_wasted: u64,
}

impl DichotomicSearch {
    /// Creates a driver with a custom relative tolerance and the default iteration cap.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        DichotomicSearch {
            tolerance,
            ..Self::default()
        }
    }

    /// Largest `t ∈ [0, upper]` with `feasible(t)`, assuming `feasible` is monotone
    /// (feasible on an interval starting at 0) and `feasible(0)` holds.
    ///
    /// When `upper <= 0` the search returns 0 without probing. When `upper` itself is
    /// feasible it is returned after a single probe. Otherwise the invariant `lo`
    /// feasible / `hi` infeasible is maintained until the bracket is narrower than
    /// `tolerance * hi.max(1.0)` and the feasible end is returned.
    pub fn maximize(&self, upper: f64, feasible: impl FnMut(f64) -> bool) -> SearchOutcome {
        self.maximize_from(0.0, upper, feasible)
    }

    /// [`DichotomicSearch::maximize`] warm-started from a caller-supplied bracket hint:
    /// a value the caller believes to be feasible (e.g. the verified residual throughput
    /// of an already-deployed overlay, in the incremental repair path).
    ///
    /// The hint is advisory, never trusted: when `0 < lower_hint < upper` it is probed
    /// once after the initial `upper` probe, and the bracket starts at `[hint, upper]`
    /// when the probe confirms it or `[0, hint]` when it refutes it — the feasible-lo /
    /// infeasible-hi invariant holds either way, so a hint that overshoots the true
    /// optimum (a cyclic residual above the acyclic optimum, say) only narrows the
    /// bracket from the other side. A hint outside `(0, upper)` is ignored and the
    /// search is exactly [`DichotomicSearch::maximize`], probe for probe.
    pub fn maximize_from(
        &self,
        lower_hint: f64,
        upper: f64,
        mut feasible: impl FnMut(f64) -> bool,
    ) -> SearchOutcome {
        if upper <= 0.0 {
            return SearchOutcome::serial(0.0, 0);
        }
        let mut probes = 1;
        if feasible(upper) {
            return SearchOutcome::serial(upper, probes);
        }
        let mut lo = 0.0_f64;
        let mut hi = upper;
        if lower_hint > 0.0 && lower_hint < upper {
            probes += 1;
            if feasible(lower_hint) {
                lo = lower_hint;
            } else {
                hi = lower_hint;
            }
        }
        for _ in 0..self.max_iterations {
            if hi - lo <= self.tolerance * hi.max(1.0) {
                break;
            }
            let mid = 0.5 * (lo + hi);
            probes += 1;
            if feasible(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        SearchOutcome::serial(lo, probes)
    }

    /// [`DichotomicSearch::maximize_speculative_from`] without a warm-start hint.
    pub fn maximize_speculative(
        &self,
        upper: f64,
        depth: usize,
        batch: impl FnMut(&[f64], &mut Vec<bool>),
    ) -> SearchOutcome {
        self.maximize_speculative_from(0.0, upper, depth, batch)
    }

    /// The speculative variant of [`DichotomicSearch::maximize_from`]: same search,
    /// same result, with each round's probes regrouped into one batch of the
    /// bracket's candidate tree of depth `depth` (clamped to
    /// [`MAX_SPECULATION_DEPTH`]; `depth == 0` degenerates to a batch of one per
    /// step, probe-for-probe the serial search). See the module docs for the state
    /// machine and the determinism contract.
    ///
    /// `batch` receives the candidate values and must fill `verdicts` with exactly
    /// one boolean per candidate, in candidate order, computed by a pure monotone
    /// predicate — [`bmp_flow::FlowPool::probe_batch`] upholds this contract when
    /// handed a pure probe. The driver may call `batch` with a single candidate (the
    /// preamble probes of `upper` and the hint are never speculated).
    ///
    /// [`bmp_flow::FlowPool::probe_batch`]: ../../bmp_flow/pool/struct.FlowPool.html#method.probe_batch
    pub fn maximize_speculative_from(
        &self,
        lower_hint: f64,
        upper: f64,
        depth: usize,
        mut batch: impl FnMut(&[f64], &mut Vec<bool>),
    ) -> SearchOutcome {
        let depth = depth.min(MAX_SPECULATION_DEPTH);
        let mut verdicts: Vec<bool> = Vec::new();
        if upper <= 0.0 {
            return SearchOutcome::serial(0.0, 0);
        }
        let mut probes = 1u64;
        batch(&[upper], &mut verdicts);
        debug_assert_eq!(verdicts.len(), 1, "batch evaluator broke its contract");
        if verdicts[0] {
            return SearchOutcome::serial(upper, probes);
        }
        let mut lo = 0.0_f64;
        let mut hi = upper;
        if lower_hint > 0.0 && lower_hint < upper {
            probes += 1;
            batch(&[lower_hint], &mut verdicts);
            debug_assert_eq!(verdicts.len(), 1, "batch evaluator broke its contract");
            if verdicts[0] {
                lo = lower_hint;
            } else {
                hi = lower_hint;
            }
        }
        let nodes = (1usize << (depth + 1)) - 1;
        let mut candidates = vec![0.0_f64; nodes];
        let mut speculated = 0u64;
        let mut wasted = 0u64;
        let mut iterations = 0usize;
        while iterations < self.max_iterations && hi - lo > self.tolerance * hi.max(1.0) {
            // One speculative round: evaluate the whole candidate tree of the current
            // bracket concurrently, then walk it in serial probe order.
            fill_candidate_tree(&mut candidates, 0, lo, hi);
            batch(&candidates, &mut verdicts);
            debug_assert_eq!(verdicts.len(), nodes, "batch evaluator broke its contract");
            speculated += (nodes - 1) as u64;
            let mut consumed = 0usize;
            let mut node = 0;
            while node < nodes
                && iterations < self.max_iterations
                && hi - lo > self.tolerance * hi.max(1.0)
            {
                let mid = candidates[node];
                probes += 1;
                iterations += 1;
                consumed += 1;
                if verdicts[node] {
                    lo = mid;
                    node = 2 * node + 2;
                } else {
                    hi = mid;
                    node = 2 * node + 1;
                }
            }
            wasted += (nodes - consumed) as u64;
        }
        SearchOutcome {
            value: lo,
            probes,
            probes_speculated: speculated,
            probes_wasted: wasted,
        }
    }
}

/// Fills the heap-indexed candidate tree of bracket `[lo, hi]`: node `k` holds the
/// bracket's midpoint, child `2k + 1` speculates on the infeasible verdict
/// (`[lo, mid]`), child `2k + 2` on the feasible one (`[mid, hi]`). Every midpoint is
/// computed by the serial loop's exact expression on the exact values it would see,
/// which is what makes the speculative walk bit-identical to the serial search.
fn fill_candidate_tree(candidates: &mut [f64], node: usize, lo: f64, hi: f64) {
    if node >= candidates.len() {
        return;
    }
    let mid = 0.5 * (lo + hi);
    candidates[node] = mid;
    fill_candidate_tree(candidates, 2 * node + 1, lo, mid);
    fill_candidate_tree(candidates, 2 * node + 2, mid, hi);
}

impl SearchOutcome {
    /// An outcome of the serial driver: no speculation performed.
    const fn serial(value: f64, probes: u64) -> Self {
        SearchOutcome {
            value,
            probes,
            probes_speculated: 0,
            probes_wasted: 0,
        }
    }
}

/// Many independent dichotomic searches advanced in lockstep, their probes
/// interleaved into shared batches — the cross-instance counterpart of speculation
/// for sweeps over many cells (see the module docs). Each cell's probe sequence,
/// outcome and probe count are bit-identical to running
/// [`DichotomicSearch::maximize`] on it alone.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchedSearch {
    /// The per-cell search driver (tolerance and iteration cap shared by all cells).
    pub search: DichotomicSearch,
}

/// Per-cell progress of a [`BatchedSearch`] round.
enum CellPhase {
    /// The initial probe of the cell's upper bound is pending.
    Upper,
    /// Bracketed; bisecting `[lo, hi]`.
    Bisect,
    /// Finished; the outcome is final.
    Done,
}

struct CellState {
    lo: f64,
    hi: f64,
    upper: f64,
    probes: u64,
    iterations: usize,
    phase: CellPhase,
    value: f64,
}

impl BatchedSearch {
    /// Creates a batched driver sharing `search` across every cell.
    #[must_use]
    pub fn new(search: DichotomicSearch) -> Self {
        BatchedSearch { search }
    }

    /// Runs one search per entry of `uppers` — cell `i` maximizes over
    /// `[0, uppers[i]]` — advancing all unfinished cells one probe per round.
    ///
    /// `batch` receives one `(cell, candidate)` pair per unfinished cell and must
    /// fill `verdicts` with one boolean per pair, in pair order, computed by the
    /// cell's pure monotone predicate. On a pooled evaluator every round becomes one
    /// shared pool pass, so `n` cells bisecting `k` steps cost `~k` batched rounds
    /// instead of `n * k` serial probe latencies.
    pub fn maximize_many(
        &self,
        uppers: &[f64],
        mut batch: impl FnMut(&[(u64, f64)], &mut Vec<bool>),
    ) -> Vec<SearchOutcome> {
        let mut cells: Vec<CellState> = uppers
            .iter()
            .map(|&upper| {
                if upper <= 0.0 {
                    CellState {
                        lo: 0.0,
                        hi: 0.0,
                        upper,
                        probes: 0,
                        iterations: 0,
                        phase: CellPhase::Done,
                        value: 0.0,
                    }
                } else {
                    CellState {
                        lo: 0.0,
                        hi: upper,
                        upper,
                        probes: 0,
                        iterations: 0,
                        phase: CellPhase::Upper,
                        value: 0.0,
                    }
                }
            })
            .collect();
        let mut requests: Vec<(u64, f64)> = Vec::new();
        let mut verdicts: Vec<bool> = Vec::new();
        loop {
            requests.clear();
            for (index, cell) in cells.iter_mut().enumerate() {
                match cell.phase {
                    CellPhase::Done => {}
                    CellPhase::Upper => requests.push((index as u64, cell.upper)),
                    CellPhase::Bisect => {
                        // The serial loop checks the stopping rule before probing;
                        // so must the lockstep driver, or probe counts would drift.
                        if cell.iterations >= self.search.max_iterations
                            || cell.hi - cell.lo <= self.search.tolerance * cell.hi.max(1.0)
                        {
                            cell.phase = CellPhase::Done;
                            cell.value = cell.lo;
                        } else {
                            requests.push((index as u64, 0.5 * (cell.lo + cell.hi)));
                        }
                    }
                }
            }
            if requests.is_empty() {
                break;
            }
            batch(&requests, &mut verdicts);
            debug_assert_eq!(
                verdicts.len(),
                requests.len(),
                "batch evaluator broke its contract"
            );
            for (&(index, candidate), &feasible) in requests.iter().zip(&verdicts) {
                let cell = &mut cells[index as usize];
                cell.probes += 1;
                match cell.phase {
                    CellPhase::Upper => {
                        if feasible {
                            cell.phase = CellPhase::Done;
                            cell.value = cell.upper;
                        } else {
                            cell.phase = CellPhase::Bisect;
                        }
                    }
                    CellPhase::Bisect => {
                        cell.iterations += 1;
                        if feasible {
                            cell.lo = candidate;
                        } else {
                            cell.hi = candidate;
                        }
                    }
                    CellPhase::Done => unreachable!("finished cells are never probed"),
                }
            }
        }
        cells
            .into_iter()
            .map(|cell| SearchOutcome::serial(cell.value, cell.probes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold_of_a_step_predicate() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(10.0, |t| t <= std::f64::consts::PI);
        assert!((outcome.value - std::f64::consts::PI).abs() < 1e-9);
        assert!(outcome.probes > 10);
    }

    #[test]
    fn feasible_upper_returns_immediately() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(4.0, |_| true);
        assert_eq!(outcome.value, 4.0);
        assert_eq!(outcome.probes, 1);
    }

    #[test]
    fn non_positive_upper_skips_probing() {
        let search = DichotomicSearch::default();
        let outcome = search.maximize(0.0, |_| panic!("must not probe"));
        assert_eq!(outcome.value, 0.0);
        assert_eq!(outcome.probes, 0);
        assert_eq!(search.maximize(-3.0, |_| panic!()).value, 0.0);
    }

    #[test]
    fn tolerance_controls_probe_count() {
        let coarse = DichotomicSearch::with_tolerance(1e-3);
        let fine = DichotomicSearch::with_tolerance(1e-12);
        let coarse_probes = coarse.maximize(8.0, |t| t <= 5.5).probes;
        let fine_probes = fine.maximize(8.0, |t| t <= 5.5).probes;
        assert!(coarse_probes < fine_probes);
        // Both brackets still contain the threshold from below.
        assert!(coarse.maximize(8.0, |t| t <= 5.5).value <= 5.5);
    }

    #[test]
    fn feasible_hint_narrows_the_bracket_without_changing_the_answer() {
        // The repair scenario: the residual hint sits close to the upper bound, so the
        // initial bracket [hint, upper] is much narrower than [0, upper] and the probe
        // spent confirming the hint pays for itself several times over.
        let search = DichotomicSearch::default();
        let threshold = 9.0;
        let cold = search.maximize(10.0, |t| t <= threshold);
        let warm = search.maximize_from(8.9, 10.0, |t| t <= threshold);
        assert!((warm.value - threshold).abs() < 1e-8);
        assert!(
            warm.value >= 8.9,
            "the confirmed hint is a floor on the answer"
        );
        assert!(
            warm.probes < cold.probes,
            "warm {} vs cold {}",
            warm.probes,
            cold.probes
        );
    }

    #[test]
    fn infeasible_hint_is_refuted_and_still_brackets_the_threshold() {
        // The hint overshoots the true optimum (the cyclic-residual case): the probe
        // refutes it and the bracket collapses to [0, hint] — correct answer anyway.
        let search = DichotomicSearch::default();
        let outcome = search.maximize_from(7.0, 10.0, |t| t <= 2.5);
        assert!((outcome.value - 2.5).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_hints_degenerate_to_the_cold_search() {
        let search = DichotomicSearch::default();
        let cold = search.maximize(8.0, |t| t <= 5.5);
        for hint in [0.0, -1.0, 8.0, 9.5] {
            let warm = search.maximize_from(hint, 8.0, |t| t <= 5.5);
            assert_eq!(warm, cold, "hint {hint} must be ignored");
        }
        // A feasible upper short-circuits before the hint is ever probed.
        let outcome = search.maximize_from(2.0, 4.0, |_| true);
        assert_eq!(outcome.probes, 1);
        assert_eq!(outcome.value, 4.0);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let search = DichotomicSearch {
            tolerance: 0.0,
            max_iterations: 7,
        };
        let outcome = search.maximize(1.0, |t| t <= 0.3);
        // One probe of the upper bound plus at most seven bisection probes.
        assert!(outcome.probes <= 8);
        assert!(outcome.value <= 0.3);
    }

    /// Adapts a plain predicate into the batch-evaluator shape, mimicking what a
    /// pooled evaluator does sequentially.
    fn batch_of(feasible: impl Fn(f64) -> bool) -> impl FnMut(&[f64], &mut Vec<bool>) {
        move |candidates: &[f64], verdicts: &mut Vec<bool>| {
            verdicts.clear();
            verdicts.extend(candidates.iter().map(|&t| feasible(t)));
        }
    }

    #[test]
    fn speculative_depths_match_serial_bit_for_bit() {
        let search = DichotomicSearch::default();
        for threshold in [0.1, 2.5, std::f64::consts::PI, 9.999] {
            let serial = search.maximize(10.0, |t| t <= threshold);
            for depth in 0..=3 {
                let spec = search.maximize_speculative(10.0, depth, batch_of(|t| t <= threshold));
                assert_eq!(spec.value.to_bits(), serial.value.to_bits());
                assert_eq!(spec.probes, serial.probes);
                assert!(spec.probes_wasted <= spec.probes_speculated);
                if depth == 0 {
                    assert_eq!(spec.probes_speculated, 0);
                    assert_eq!(spec.probes_wasted, 0);
                } else {
                    assert!(spec.probes_speculated > 0);
                }
            }
        }
    }

    #[test]
    fn speculative_warm_starts_match_serial_bit_for_bit() {
        let search = DichotomicSearch::default();
        for hint in [-1.0, 0.0, 2.0, 8.9, 9.5, 10.0, 11.0] {
            let serial = search.maximize_from(hint, 10.0, |t| t <= 9.0);
            for depth in 1..=3 {
                let spec =
                    search.maximize_speculative_from(hint, 10.0, depth, batch_of(|t| t <= 9.0));
                assert_eq!(spec.value.to_bits(), serial.value.to_bits(), "hint {hint}");
                assert_eq!(spec.probes, serial.probes, "hint {hint}");
            }
        }
    }

    #[test]
    fn speculative_edge_cases_match_serial() {
        let search = DichotomicSearch::default();
        // Non-positive upper: no probe at all.
        let outcome = search.maximize_speculative(0.0, 2, |_: &[f64], _: &mut Vec<bool>| {
            panic!("must not probe")
        });
        assert_eq!(outcome, search.maximize(0.0, |_| panic!("must not probe")));
        // Feasible upper: one probe, no speculation charged.
        let outcome = search.maximize_speculative(4.0, 2, batch_of(|_| true));
        assert_eq!(outcome.value, 4.0);
        assert_eq!(outcome.probes, 1);
        assert_eq!(outcome.probes_speculated, 0);
    }

    #[test]
    fn speculative_iteration_cap_matches_serial() {
        let search = DichotomicSearch {
            tolerance: 0.0,
            max_iterations: 7,
        };
        let serial = search.maximize(1.0, |t| t <= 0.3);
        for depth in 1..=3 {
            let spec = search.maximize_speculative(1.0, depth, batch_of(|t| t <= 0.3));
            assert_eq!(spec.value.to_bits(), serial.value.to_bits());
            assert_eq!(spec.probes, serial.probes);
        }
    }

    #[test]
    fn requested_depth_is_clamped() {
        let search = DichotomicSearch::default();
        let mut largest_batch = 0usize;
        let _ = search.maximize_speculative(10.0, 64, |candidates, verdicts: &mut Vec<bool>| {
            largest_batch = largest_batch.max(candidates.len());
            verdicts.clear();
            verdicts.extend(candidates.iter().map(|&t| t <= 3.0));
        });
        assert_eq!(largest_batch, (1 << (MAX_SPECULATION_DEPTH + 1)) - 1);
    }

    #[test]
    fn batched_search_matches_per_cell_serial() {
        let search = DichotomicSearch::default();
        let thresholds = [0.5, 3.25, 7.0, 0.0, 12.0];
        // Cell 3 has a non-positive upper (skipped without probing); cell 4's upper is
        // below its threshold (feasible upper, one probe).
        let uppers = [2.0, 8.0, 7.5, 0.0, 10.0];
        let batched = BatchedSearch::new(search);
        let mut rounds = 0u64;
        let outcomes = batched.maximize_many(&uppers, |requests, verdicts| {
            rounds += 1;
            verdicts.clear();
            verdicts.extend(
                requests
                    .iter()
                    .map(|&(cell, t)| t <= thresholds[cell as usize]),
            );
        });
        let mut total_probes = 0;
        for (cell, outcome) in outcomes.iter().enumerate() {
            let serial = search.maximize(uppers[cell], |t| t <= thresholds[cell]);
            assert_eq!(
                outcome.value.to_bits(),
                serial.value.to_bits(),
                "cell {cell}"
            );
            assert_eq!(outcome.probes, serial.probes, "cell {cell}");
            total_probes += serial.probes;
        }
        // The whole point: a round carries one probe from every unfinished cell, so
        // there are far fewer rounds than total probes.
        assert!(
            rounds < total_probes,
            "rounds {rounds} vs probes {total_probes}"
        );
    }
}
