//! The unified solver API: one trait, one solution type, one evaluation context.
//!
//! Every scheduling algorithm of the crate is exposed through the [`Solver`] trait and
//! enumerated by [`registry`], so the CLI, the experiment runners and the benchmarks all
//! dispatch uniformly instead of hand-rolling per-algorithm branches:
//!
//! * [`Solver`] — `name()` / `describe()` / `solve(&Instance, &mut EvalCtx)`,
//! * [`Solution`] — scheme + claimed throughput + optional coding word + algorithm label
//!   \+ [`Telemetry`] (flow solves, bisection probes, wall time),
//! * [`EvalCtx`] — an *explicit* flow-evaluation workspace owning the
//!   [`FlowArena`] and [`FlowSolver`]. It replaces the hidden thread-local in
//!   [`crate::scheme`] as the primary evaluation path and retains the arena across
//!   evaluations. Scheme evaluations are incremental end-to-end: the context consumes
//!   the dirty-edge journal of [`BroadcastScheme`] (see the `scheme` module docs), so a
//!   re-evaluation of a scheme whose edge *set* is unchanged skips the O(n²) rate-matrix
//!   scan entirely and patches only the journaled capacities into the cached arena
//!   ([`FlowArena::patch_edge_capacities`], resolved through a CSR edge-index map the
//!   context maintains). An edge-set change (epoch bump), a different scheme object, or
//!   a stale journal cursor falls back to the scan-plus-rewrite path
//!   ([`FlowArena::set_edge_capacities`]), and a changed edge list rebuilds the arena.
//!   The journal fast path is observable as [`Telemetry::rescans_skipped`] /
//!   [`Telemetry::edges_patched`] and can be disabled per context
//!   ([`EvalCtx::set_journal_enabled`]) for A/B measurement — or process-wide by
//!   exporting `BMP_DISABLE_JOURNAL=1` (read once per [`EvalCtx::new`]; the CI matrix
//!   uses it to keep the scan path covered).
//!
//! # Parallel evaluation
//!
//! [`EvalCtx::set_parallelism`] switches `throughput` evaluations onto the process-wide
//! persistent worker pool ([`bmp_flow::FlowPool::global`]): the journaled (or scanned)
//! capacities are patched into the retained arena exactly as in the sequential path,
//! then the per-receiver max-flows fan out across long-lived workers, the submitting
//! thread working a share on the context's own solver. Values **and** the
//! [`Telemetry`] counters (`flow_solves`, `rescans_skipped`, `edges_patched`) are
//! bit-for-bit identical to sequential evaluation — the fan-out only changes wall time —
//! which the conformance suite asserts for every registry solver. `0` selects the
//! [`bmp_flow::suggested_flow_threads`] heuristic per evaluation; the default of `1`
//! stays sequential, which is also the right setting inside already-parallel sweeps
//! (the pool is shared and capped, but the outer fan-out owns the cores — see
//! `bmp_experiments::parallel::eval_parallelism`).
//!
//! # Copy-on-probe
//!
//! The journal fast path keys on *object identity* ([`BroadcastScheme::eval_id`]): a
//! search that clones the scheme per probe hands the context a fresh, journal-less
//! object every time and silently pays the full O(n²) rescan. Clone **one working
//! copy** before the loop and mutate it in place per probe instead — see the
//! "Copy-on-probe" section of the [`crate::scheme`] module docs for the doctest'd
//! pattern (`churn::degradation_tolerance` is the in-tree exemplar).
//!
//! Every solver verifies its own output before returning: the constructed scheme is
//! re-scored by max-flow through the context and a shortfall against the claimed
//! throughput surfaces as [`CoreError::VerificationFailed`] instead of a silently wrong
//! `Solution`.
//!
//! The registry contains the core algorithms (`acyclic-guarded`, `acyclic-open`,
//! `cyclic-open`, `exhaustive`, `omega-word`, `auto`). Downstream crates implement
//! [`Solver`] for their own algorithms and append them — `bmp-trees` ships a
//! tree-decomposition adapter, and the CLI assembles the full list (core + trees) for
//! `solve --algorithm` dispatch. (The adapter cannot live in this crate's registry
//! because `bmp-trees` depends on `bmp-core`, not the other way around.)

use crate::acyclic_guarded::AcyclicGuardedSolver;
use crate::acyclic_open::acyclic_open_optimal_scheme;
use crate::bounds::cyclic_upper_bound;
use crate::cyclic_open::cyclic_open_optimal_scheme;
use crate::error::CoreError;
use crate::exhaustive::optimal_acyclic_exhaustive_traced;
use crate::faults::{FaultSite, InjectedFaults};
use crate::omega::{omega1, omega2};
use crate::scheme::BroadcastScheme;
use crate::search::{BatchedSearch, DichotomicSearch};
use crate::word::{is_valid_word, CodingWord, Symbol};
use bmp_flow::{suggested_flow_threads, FlowArena, FlowPool, FlowSolver};
use bmp_platform::{Instance, NodeId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Relative tolerance of the post-solve max-flow verification.
const VERIFY_TOL: f64 = 1e-6;

/// Cost counters and timing of one [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Telemetry {
    /// Number of per-sink max-flow evaluations requested through the context (batched
    /// evaluations count one per sink, even when the early-exit cap truncates a solve).
    pub flow_solves: u64,
    /// Number of feasibility probes spent by dichotomic searches. Bit-identical
    /// between serial and speculative solves: speculative extras are accounted in
    /// [`Telemetry::probes_speculated`], never here.
    pub bisection_iters: u64,
    /// Speculative dichotomic candidates evaluated beyond each round's root (zero on
    /// serial solves — see [`crate::search::SearchOutcome::probes_speculated`]).
    pub probes_speculated: u64,
    /// Evaluated speculative candidates the bracket walk never consumed (the sunk
    /// cost of losing wagers; at most [`Telemetry::probes_speculated`]).
    pub probes_wasted: u64,
    /// Number of scheme evaluations that skipped the O(n²) rate-matrix rescan by
    /// consuming the scheme's dirty-edge journal instead.
    pub rescans_skipped: u64,
    /// Total edge capacities patched into the cached arena by journaled evaluations.
    pub edges_patched: u64,
    /// Per-sink solves that warm-started from a retained residual state instead of
    /// `load_caps` + Dinic from scratch (zero unless incremental mode is enabled).
    pub flows_warm_started: u64,
    /// Warm-started solves answered by the retained flow value alone — no augmentation
    /// at all (at most [`Telemetry::flows_warm_started`]).
    pub augment_saved: u64,
    /// Drain operations performed while applying capacity deltas to warm states
    /// (committed flow pushed back along reverse residual paths).
    pub excess_drained: u64,
    /// Wall-clock time of the solve, including verification.
    pub wall_time: Duration,
}

/// Uniform result of every registered solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Registry name of the algorithm that actually ran (e.g. `"acyclic-guarded"`).
    pub algorithm: &'static str,
    /// Throughput the algorithm claims; verified against the scheme by max-flow before
    /// the solution is returned.
    pub throughput: f64,
    /// The scheme's throughput as measured by max-flow during verification (within the
    /// verification tolerance of `throughput`, and free for callers to display — the
    /// evaluation already happened).
    pub verified_throughput: f64,
    /// The coding word / increasing order realising the scheme, for the algorithms that
    /// have one.
    pub word: Option<CodingWord>,
    /// The explicit broadcast scheme.
    pub scheme: BroadcastScheme,
    /// Cost counters of this solve.
    pub telemetry: Telemetry,
}

/// Whether `BMP_DISABLE_JOURNAL` requests the scan-based evaluation path (any non-empty
/// value other than `0`). Read once per context construction.
fn journal_disabled_by_env() -> bool {
    std::env::var("BMP_DISABLE_JOURNAL")
        .map(|value| !value.is_empty() && value != "0")
        .unwrap_or(false)
}

/// Speculation depth requested by the `BMP_SPECULATE` environment variable (the same
/// process-wide override pattern as `BMP_DISABLE_JOURNAL`, read once): unset, empty,
/// `0` or `off` mean serial search; a positive integer is the depth; any other
/// non-empty value enables the default depth.
fn speculation_from_env() -> usize {
    match std::env::var("BMP_SPECULATE") {
        Err(_) => 0,
        Ok(value) => {
            let value = value.trim().to_ascii_lowercase();
            if value.is_empty() || value == "0" || value == "off" {
                0
            } else {
                value
                    .parse::<usize>()
                    .unwrap_or(crate::search::DEFAULT_SPECULATION_DEPTH)
            }
        }
    }
}

/// The cell holding the process-wide default speculation depth, initialised from
/// `BMP_SPECULATE` on first use.
fn default_speculation_cell() -> &'static std::sync::atomic::AtomicUsize {
    static CELL: std::sync::OnceLock<std::sync::atomic::AtomicUsize> = std::sync::OnceLock::new();
    CELL.get_or_init(|| std::sync::atomic::AtomicUsize::new(speculation_from_env()))
}

/// The process-wide default speculation depth new contexts start from: the
/// `BMP_SPECULATE` environment override unless [`set_default_speculation`] replaced it.
#[must_use]
pub fn default_speculation() -> usize {
    default_speculation_cell().load(std::sync::atomic::Ordering::Relaxed)
}

/// Replaces the process-wide default speculation depth (returning the previous one) —
/// the programmatic counterpart of `BMP_SPECULATE` behind the CLI's `--speculate N`
/// flag. Affects contexts constructed *after* the call, which is how one flag reaches
/// every internally-constructed context (repair controllers, sweep workers, fleet
/// shards) without threading a parameter through each layer; already-built contexts
/// keep their depth ([`EvalCtx::set_speculation`] adjusts those).
pub fn set_default_speculation(depth: usize) -> usize {
    default_speculation_cell().swap(depth, std::sync::atomic::Ordering::Relaxed)
}

/// Whether the `BMP_INCREMENTAL` environment variable requests warm residual reuse
/// (same pattern as `BMP_SPECULATE`, read once): unset, empty, `0` or `off` mean cold
/// evaluation; any other value enables incremental mode.
fn incremental_from_env() -> bool {
    match std::env::var("BMP_INCREMENTAL") {
        Err(_) => false,
        Ok(value) => {
            let value = value.trim().to_ascii_lowercase();
            !(value.is_empty() || value == "0" || value == "off")
        }
    }
}

/// The cell holding the process-wide default incremental-mode flag, initialised from
/// `BMP_INCREMENTAL` on first use.
fn default_incremental_cell() -> &'static std::sync::atomic::AtomicBool {
    static CELL: std::sync::OnceLock<std::sync::atomic::AtomicBool> = std::sync::OnceLock::new();
    CELL.get_or_init(|| std::sync::atomic::AtomicBool::new(incremental_from_env()))
}

/// The process-wide default incremental-evaluation flag new contexts start from: the
/// `BMP_INCREMENTAL` environment override unless [`set_default_incremental`] replaced it.
#[must_use]
pub fn default_incremental() -> bool {
    default_incremental_cell().load(std::sync::atomic::Ordering::Relaxed)
}

/// Replaces the process-wide default incremental-evaluation flag (returning the
/// previous one) — the programmatic counterpart of `BMP_INCREMENTAL` behind the CLI's
/// `--incremental` flag, reaching every internally-constructed context (repair
/// controllers, sweep workers, fleet shards) the same way
/// [`set_default_speculation`] does. Already-built contexts keep their setting
/// ([`EvalCtx::set_incremental`] adjusts those).
pub fn set_default_incremental(enabled: bool) -> bool {
    default_incremental_cell().swap(enabled, std::sync::atomic::Ordering::Relaxed)
}

/// Association between the cached arena and the scheme object it was last pointed at:
/// the scheme's identity, its edge epoch, and how far into its dirty-edge journal the
/// arena's capacities are current.
#[derive(Debug, Clone, Copy)]
struct JournalAssoc {
    scheme_id: u64,
    epoch: u64,
    cursor: u64,
}

/// Explicit flow-evaluation workspace: owns the arena and the solver buffers, retains
/// the arena across evaluations, and counts work for [`Telemetry`].
///
/// In steady state (re-probing the same scheme object with an unchanged edge set — the
/// access pattern of every dichotomic search loop) an evaluation performs no O(n²)
/// rate-matrix scan, no CSR construction and no allocation: the journaled capacities are
/// patched into the cached arena and the reusable [`FlowSolver`] buffers are refilled.
#[derive(Debug, Clone)]
pub struct EvalCtx {
    solver: FlowSolver,
    /// Retained arena. Behind an [`Arc`] so parallel evaluations can hand it to the
    /// persistent worker pool without copying; in steady state the context is the sole
    /// owner (workers drop their clones before an evaluation returns), so
    /// [`Arc::make_mut`] patches it in place exactly like a plain field.
    arena: Option<Arc<FlowArena>>,
    arena_nodes: usize,
    /// Endpoints of the cached arena's edges, in edge order.
    arena_edges: Vec<(NodeId, NodeId)>,
    /// `(from, to) → edge index` into the cached arena; rebuilt lazily after an arena
    /// rebuild, valid as long as the edge set is unchanged.
    edge_index: std::collections::HashMap<(NodeId, NodeId), u32>,
    edge_index_valid: bool,
    /// Which scheme object (and journal position) the cached arena is current for.
    journal_assoc: Option<JournalAssoc>,
    /// Retained arena of *explicit-edge* evaluations ([`EvalCtx::min_max_flow`] — the
    /// churn residual path), kept separate from the scheme arena so interleaving the two
    /// kinds of evaluation costs neither its cache: a residual probe between two
    /// journaled scheme re-probes no longer severs the journal association, and a sweep
    /// alternating the two reuses both arenas in place. Behind an [`Arc`] for the same
    /// reason as `arena`: the worker pool borrows it for the call.
    explicit_arena: Option<Arc<FlowArena>>,
    explicit_nodes: usize,
    /// Endpoints of the cached explicit arena's edges, in edge order.
    explicit_edges: Vec<(NodeId, NodeId)>,
    /// Chicken bit: `false` forces the PR-2 scan-based path (for A/B benchmarks).
    journal_enabled: bool,
    /// Fan-out of `throughput` evaluations: `0` the per-evaluation size heuristic
    /// (default), `1` sequential, `> 1` dispatch onto the shared worker pool.
    parallelism: usize,
    /// Speculation depth of dichotomic solves: `0` (serial) unless `BMP_SPECULATE` /
    /// [`set_default_speculation`] raised the process default or
    /// [`EvalCtx::set_speculation`] set it here.
    speculation: usize,
    /// Warm residual reuse across evaluations: `false` (cold) unless
    /// `BMP_INCREMENTAL` / [`set_default_incremental`] raised the process default or
    /// [`EvalCtx::set_incremental`] set it here. Values are bit-identical either way
    /// (see `bmp_flow::incremental`); only wall time and the warm counters move.
    incremental: bool,
    /// Warm residual states for incremental evaluation, keyed by arena epoch.
    warm_cache: bmp_flow::WarmFlowCache,
    scratch_edges: Vec<(NodeId, NodeId, f64)>,
    scratch_filtered: Vec<(NodeId, NodeId, f64)>,
    scratch_caps: Vec<f64>,
    scratch_patches: Vec<(usize, f64)>,
    scratch_sinks: Vec<NodeId>,
    tolerance: f64,
    /// Installed fault-injection script; `None` (production) makes every interception
    /// a single branch on a `None` discriminant.
    injected_faults: Option<InjectedFaults>,
    /// One-shot warm-start hint for the next dichotomic solve: a throughput the caller
    /// has already verified feasible on a closely related overlay (the repair path's
    /// residual probe). Consumed — never reused — by the first solver that takes it.
    warm_start_lower: Option<f64>,
    flow_solves: u64,
    bisection_iters: u64,
    probes_speculated: u64,
    probes_wasted: u64,
    arena_builds: u64,
    arena_updates: u64,
    rescans_skipped: u64,
    edges_patched: u64,
    flows_warm_started: u64,
    augment_saved: u64,
    excess_drained: u64,
}

impl Default for EvalCtx {
    /// Same as [`EvalCtx::new`]: the derived zero-value would set `tolerance` to `0.0`
    /// and degenerate every dichotomic search into its full iteration cap.
    fn default() -> Self {
        EvalCtx::new()
    }
}

impl EvalCtx {
    /// Default dichotomic tolerance, matching [`AcyclicGuardedSolver::default`].
    pub const DEFAULT_TOLERANCE: f64 = 1e-10;

    /// Creates a context with the default search tolerance.
    #[must_use]
    pub fn new() -> Self {
        Self::with_tolerance(Self::DEFAULT_TOLERANCE)
    }

    /// Creates a context whose dichotomic searches use relative precision `tolerance`.
    ///
    /// The dirty-edge journal starts enabled unless the `BMP_DISABLE_JOURNAL`
    /// environment variable is set to a non-empty value other than `0` — the
    /// process-wide kill switch the CI matrix uses to keep the scan-based path covered.
    /// [`EvalCtx::set_journal_enabled`] overrides either way. The speculation depth
    /// starts at the process default (the `BMP_SPECULATE` environment variable unless
    /// [`set_default_speculation`] replaced it — the same override pattern, used by
    /// the CI speculation matrix); [`EvalCtx::set_speculation`] overrides per context.
    /// Solutions, throughputs and serial probe counts are bit-identical at every
    /// depth, both journal modes — only wall time and the speculation counters move.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        EvalCtx {
            solver: FlowSolver::new(),
            arena: None,
            arena_nodes: 0,
            arena_edges: Vec::new(),
            edge_index: std::collections::HashMap::new(),
            edge_index_valid: false,
            journal_assoc: None,
            explicit_arena: None,
            explicit_nodes: 0,
            explicit_edges: Vec::new(),
            journal_enabled: !journal_disabled_by_env(),
            parallelism: 0,
            speculation: default_speculation(),
            incremental: default_incremental(),
            warm_cache: bmp_flow::WarmFlowCache::new(),
            scratch_edges: Vec::new(),
            scratch_filtered: Vec::new(),
            scratch_caps: Vec::new(),
            scratch_patches: Vec::new(),
            scratch_sinks: Vec::new(),
            tolerance,
            injected_faults: None,
            warm_start_lower: None,
            flow_solves: 0,
            bisection_iters: 0,
            probes_speculated: 0,
            probes_wasted: 0,
            arena_builds: 0,
            arena_updates: 0,
            rescans_skipped: 0,
            edges_patched: 0,
            flows_warm_started: 0,
            augment_saved: 0,
            excess_drained: 0,
        }
    }

    /// Relative precision the registered solvers use for their dichotomic searches.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The shared bisection driver configured with this context's tolerance.
    #[must_use]
    pub fn search(&self) -> DichotomicSearch {
        DichotomicSearch::with_tolerance(self.tolerance)
    }

    /// Installs (or with `None`, removes) a fault-injection script. Interceptions are
    /// counted from this call; see [`InjectedFaults`].
    pub fn set_injected_faults(&mut self, faults: Option<InjectedFaults>) {
        self.injected_faults = faults;
    }

    /// Arms (or with `None`, clears) a one-shot warm-start hint for the next dichotomic
    /// solve: a throughput the caller has already verified on a closely related overlay,
    /// used as the initial lower bracket via [`DichotomicSearch::maximize_from`]. The
    /// hint is advisory — solvers probe it before trusting it — and is consumed by the
    /// first [`Solver::solve`] that honours it, so re-arm before every attempt.
    pub fn set_warm_start_lower(&mut self, hint: Option<f64>) {
        self.warm_start_lower = hint;
    }

    /// Takes (and clears) the armed warm-start hint, if any.
    #[must_use]
    pub fn take_warm_start_lower(&mut self) -> Option<f64> {
        self.warm_start_lower.take()
    }

    /// The installed fault-injection script, if any (its `fired`/`pending` counters
    /// reflect interceptions so far).
    #[must_use]
    pub fn injected_faults(&self) -> Option<&InjectedFaults> {
        self.injected_faults.as_ref()
    }

    /// Fault-plane interception: records that `site` was reached and returns the
    /// occurrence index when the installed script schedules this occurrence to fail.
    /// Always `None` (one branch, no counting) when no script is installed.
    #[inline]
    pub fn intercept_fault(&mut self, site: FaultSite) -> Option<u64> {
        match self.injected_faults.as_mut() {
            None => None,
            Some(faults) => faults.intercept(site),
        }
    }

    /// Records `probes` dichotomic feasibility probes (solvers call this; exposed so
    /// out-of-crate [`Solver`] implementations can account their searches too).
    pub fn add_bisection_iters(&mut self, probes: u64) {
        self.bisection_iters += probes;
    }

    /// Records the speculative side of a search outcome: `speculated` extra candidates
    /// evaluated, of which `wasted` were never consumed. Kept apart from
    /// [`EvalCtx::add_bisection_iters`] so serial probe accounting stays bit-identical
    /// between speculative and serial solves.
    pub fn add_speculation(&mut self, speculated: u64, wasted: u64) {
        self.probes_speculated += speculated;
        self.probes_wasted += wasted;
    }

    /// Sets the speculation depth of this context's dichotomic solves: `0` (serial)
    /// probes strictly one midpoint at a time; `depth >= 1` evaluates each round's
    /// candidate tree of `2^(depth+1) - 1` midpoints concurrently on the shared worker
    /// pool and walks it in serial order (see the module docs of
    /// [`crate::search`]). Solutions, throughputs and serial probe counts are
    /// bit-identical at every depth; only wall time and the speculation counters move.
    pub fn set_speculation(&mut self, depth: usize) {
        self.speculation = depth;
    }

    /// The configured speculation depth (`0` = serial search).
    #[must_use]
    pub fn speculation(&self) -> usize {
        self.speculation
    }

    /// Enables or disables warm residual reuse (incremental max-flow) for this
    /// context's evaluations. When enabled, per-sink solves retain their residual
    /// capacities per `(arena epoch, source, sink)` and the next probe applies the
    /// capacity delta in place instead of `load_caps` + Dinic from scratch (see
    /// `bmp_flow::incremental`). Verdicts, brackets, probe counts and solutions are
    /// bit-identical either way; only wall time and the
    /// [`EvalCtx::flows_warm_started`] / [`EvalCtx::augment_saved`] /
    /// [`EvalCtx::excess_drained`] counters move. Certification always re-evaluates
    /// cold regardless of this setting.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.incremental = enabled;
        if !enabled {
            self.warm_cache.clear();
        }
    }

    /// Whether warm residual reuse is enabled. On a fresh context this reflects the
    /// process default (`BMP_INCREMENTAL` unless [`set_default_incremental`] replaced
    /// it).
    #[must_use]
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Per-sink solves that warm-started from a retained residual state.
    #[must_use]
    pub fn flows_warm_started(&self) -> u64 {
        self.flows_warm_started
    }

    /// Warm-started solves answered by the retained value alone (no augmentation).
    #[must_use]
    pub fn augment_saved(&self) -> u64 {
        self.augment_saved
    }

    /// Drain operations performed while applying capacity deltas to warm states.
    #[must_use]
    pub fn excess_drained(&self) -> u64 {
        self.excess_drained
    }

    /// Folds the warm cache's per-evaluation counters into the context totals.
    fn drain_warm_stats(&mut self) {
        let stats = self.warm_cache.stats.take();
        self.flows_warm_started += stats.flows_warm_started;
        self.augment_saved += stats.augment_saved;
        self.excess_drained += stats.excess_drained;
    }

    /// Total speculative candidates evaluated so far (beyond each round's root).
    #[must_use]
    pub fn probes_speculated(&self) -> u64 {
        self.probes_speculated
    }

    /// Total evaluated speculative candidates never consumed by a bracket walk.
    #[must_use]
    pub fn probes_wasted(&self) -> u64 {
        self.probes_wasted
    }

    /// Total per-sink max-flow evaluations requested so far.
    #[must_use]
    pub fn flow_solves(&self) -> u64 {
        self.flow_solves
    }

    /// Total dichotomic probes recorded so far.
    #[must_use]
    pub fn bisection_iters(&self) -> u64 {
        self.bisection_iters
    }

    /// Number of from-scratch CSR arena constructions performed.
    #[must_use]
    pub fn arena_builds(&self) -> u64 {
        self.arena_builds
    }

    /// Number of evaluations that reused the cached arena via in-place capacity updates.
    #[must_use]
    pub fn arena_updates(&self) -> u64 {
        self.arena_updates
    }

    /// Number of scheme evaluations that skipped the O(n²) rate-matrix rescan via the
    /// dirty-edge journal.
    #[must_use]
    pub fn rescans_skipped(&self) -> u64 {
        self.rescans_skipped
    }

    /// Total edge capacities patched into the cached arena by journaled evaluations.
    #[must_use]
    pub fn edges_patched(&self) -> u64 {
        self.edges_patched
    }

    /// Enables or disables the dirty-edge-journal fast path (enabled by default, unless
    /// the `BMP_DISABLE_JOURNAL` environment variable turned it off at construction).
    ///
    /// With the journal disabled every scheme evaluation takes the scan-based path
    /// (edge-list rescan plus in-place capacity rewrite or rebuild) — the PR-2 behaviour,
    /// kept addressable so benchmarks can measure the journal's win and operators have a
    /// kill switch. Results are identical either way.
    pub fn set_journal_enabled(&mut self, enabled: bool) {
        self.journal_enabled = enabled;
        if !enabled {
            self.journal_assoc = None;
        }
    }

    /// Whether the dirty-edge-journal fast path is currently enabled. On a fresh
    /// context this reflects the `BMP_DISABLE_JOURNAL` environment variable, so tests
    /// and sweeps can consult it instead of re-parsing the variable themselves.
    #[must_use]
    pub fn journal_enabled(&self) -> bool {
        self.journal_enabled
    }

    /// Sets the fan-out of [`EvalCtx::throughput`] evaluations (see the module docs):
    /// `0` (the default) picks per evaluation via
    /// [`bmp_flow::suggested_flow_threads`] (sequential for small instances, pooled at
    /// fleet scale), `1` always evaluates sequentially on the calling thread, and
    /// `threads > 1` dispatches the per-receiver max-flows onto the shared persistent
    /// worker pool ([`FlowPool::global`]) with up to `threads` concurrent lanes.
    ///
    /// Auto became the default when the heuristic was re-tuned against the persistent
    /// pool (PR 4 ran contexts sequential-by-default because the scoped fan-out's
    /// spawn cost could regress small solves): below the size thresholds — every
    /// conformance instance, and any machine without available parallelism — auto
    /// resolves to the same sequential path as `1`, and above them the pool is a
    /// strict improvement, so the promotion costs nothing where fan-out cannot win.
    ///
    /// Values and telemetry counters are bit-for-bit independent of this setting; only
    /// wall time changes. Contexts used *inside* an already-parallel sweep should be
    /// set to `1` — the outer fan-out owns the cores
    /// (`bmp_experiments::eval_parallelism` does exactly that).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads;
    }

    /// The configured evaluation fan-out (`0` auto — the default, `1` sequential).
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Throughput of `scheme` (`min_k maxflow(source → C_k)`), evaluated through the
    /// retained arena (journal-patched when possible, see the type docs) at the
    /// configured parallelism ([`EvalCtx::set_parallelism`]; sequential by default).
    pub fn throughput(&mut self, scheme: &BroadcastScheme) -> f64 {
        self.throughput_with_threads(scheme, self.parallelism)
    }

    /// [`EvalCtx::throughput`] at an explicit fan-out, overriding the configured
    /// parallelism for this one evaluation (`0` = size heuristic, `1` = sequential).
    /// Same journal fast path, same telemetry, bit-identical value.
    pub fn throughput_parallel(&mut self, scheme: &BroadcastScheme, threads: usize) -> f64 {
        self.throughput_with_threads(scheme, threads)
    }

    /// [`EvalCtx::throughput`] with warm residual reuse forced off for this one
    /// evaluation — the certification path: a verified `Solution`'s throughput must
    /// come from a from-scratch solve regardless of the context's incremental setting
    /// (warm reuse is bit-identical anyway; this keeps the certificate independent of
    /// the warm machinery by construction).
    pub fn throughput_cold(&mut self, scheme: &BroadcastScheme) -> f64 {
        let was_incremental = self.incremental;
        self.incremental = false;
        let value = self.throughput_with_threads(scheme, self.parallelism);
        self.incremental = was_incremental;
        value
    }

    fn throughput_with_threads(&mut self, scheme: &BroadcastScheme, threads: usize) -> f64 {
        self.ensure_scheme_arena(scheme);
        let mut sinks = std::mem::take(&mut self.scratch_sinks);
        sinks.clear();
        sinks.extend(scheme.instance().receivers());
        self.flow_solves += sinks.len() as u64;
        let arena = self.arena.as_ref().expect("arena prepared above");
        let threads = match threads {
            0 => suggested_flow_threads(arena.num_nodes(), sinks.len()),
            explicit => explicit,
        };
        let value = if threads > 1 {
            // The pool borrows the arena Arc for the call and the submitter share runs
            // on this context's own solver; every worker clone is dropped before the
            // call returns, so the retained arena stays uniquely owned (in-place
            // journal patches keep working without a copy).
            if self.incremental {
                FlowPool::global().min_max_flow_warm_with(
                    &mut self.solver,
                    arena,
                    0,
                    &sinks,
                    threads,
                    &mut self.warm_cache,
                )
            } else {
                FlowPool::global().min_max_flow_with(&mut self.solver, arena, 0, &sinks, threads)
            }
        } else if self.incremental {
            self.solver
                .min_max_flow_warm(arena, 0, &sinks, &mut self.warm_cache)
        } else {
            self.solver.min_max_flow(arena, 0, &sinks)
        };
        if self.incremental {
            self.drain_warm_stats();
        }
        self.scratch_sinks = sinks;
        value
    }

    /// Maximum flow from the source to `receiver` in `scheme`'s weighted digraph
    /// (journal-patched when possible, like [`EvalCtx::throughput`]).
    pub fn max_flow_to(&mut self, scheme: &BroadcastScheme, receiver: NodeId) -> f64 {
        self.ensure_scheme_arena(scheme);
        self.flow_solves += 1;
        let arena = self.arena.as_ref().expect("arena prepared above");
        self.solver.max_flow(arena, 0, receiver)
    }

    /// `min_k maxflow(source → sinks_k)` over an explicit edge list (the entry point for
    /// evaluations that are not a whole scheme, e.g. survivor overlays in the churn
    /// analysis). Returns `f64::INFINITY` when `sinks` is empty.
    ///
    /// The evaluation runs on a *per-call* retained arena of its own (in-place capacity
    /// rewrite when the explicit edge set is unchanged, rebuild otherwise), so it leaves
    /// the scheme arena — and with it any dirty-edge-journal association — untouched,
    /// and it honours the configured parallelism ([`EvalCtx::set_parallelism`]): at a
    /// fan-out above 1 (or when the `0` auto heuristic triggers at fleet scale) the
    /// per-sink max-flows dispatch onto the shared persistent worker pool, the value
    /// staying bit-identical to the sequential pass.
    pub fn min_max_flow(
        &mut self,
        num_nodes: usize,
        edges: &[(NodeId, NodeId, f64)],
        source: NodeId,
        sinks: &[NodeId],
    ) -> f64 {
        self.prepare_explicit_arena(num_nodes, edges);
        self.flow_solves += sinks.len() as u64;
        let arena = self.explicit_arena.as_ref().expect("arena prepared above");
        let threads = match self.parallelism {
            0 => suggested_flow_threads(num_nodes, sinks.len()),
            explicit => explicit,
        };
        let value = if threads > 1 {
            if self.incremental {
                FlowPool::global().min_max_flow_warm_with(
                    &mut self.solver,
                    arena,
                    source,
                    sinks,
                    threads,
                    &mut self.warm_cache,
                )
            } else {
                FlowPool::global().min_max_flow_with(
                    &mut self.solver,
                    arena,
                    source,
                    sinks,
                    threads,
                )
            }
        } else if self.incremental {
            self.solver
                .min_max_flow_warm(arena, source, sinks, &mut self.warm_cache)
        } else {
            self.solver.min_max_flow(arena, source, sinks)
        };
        if self.incremental {
            self.drain_warm_stats();
        }
        value
    }

    /// Like [`EvalCtx::min_max_flow`], but the edge list is produced by `fill` into a
    /// context-owned buffer, so repeat callers (the churn sweep filtering a scheme down
    /// to its survivors for thousands of departure sets) reuse one allocation instead of
    /// building a fresh `Vec` per evaluation.
    ///
    /// The dirty-edge journal does not apply here — a filtered edge list is a different
    /// edge *set* than the scheme's, so the evaluation runs on the context's explicit
    /// arena (in-place rewrite when the filtered set is unchanged, rebuild otherwise)
    /// and any journal association of the scheme arena survives untouched.
    pub fn min_max_flow_with(
        &mut self,
        num_nodes: usize,
        source: NodeId,
        sinks: &[NodeId],
        fill: impl FnOnce(&mut Vec<(NodeId, NodeId, f64)>),
    ) -> f64 {
        let mut edges = std::mem::take(&mut self.scratch_filtered);
        edges.clear();
        fill(&mut edges);
        let value = self.min_max_flow(num_nodes, &edges, source, sinks);
        self.scratch_filtered = edges;
        value
    }

    /// Points the cached arena at `scheme`'s current rates: a sparse journal patch when
    /// the cached arena is current for this scheme object's edge set, the scan-based
    /// [`EvalCtx::prepare_arena`] path otherwise.
    fn ensure_scheme_arena(&mut self, scheme: &BroadcastScheme) {
        if self.journal_enabled && self.try_patch_from_journal(scheme) {
            return;
        }
        let mut edges = std::mem::take(&mut self.scratch_edges);
        scheme.edges_into(&mut edges);
        self.prepare_arena(scheme.instance().num_nodes(), &edges);
        self.scratch_edges = edges;
        if self.journal_enabled {
            self.journal_assoc = Some(JournalAssoc {
                scheme_id: scheme.eval_id(),
                epoch: scheme.edge_epoch(),
                cursor: scheme.journal_bounds().1,
            });
        }
    }

    /// Attempts the journal fast path: applicable iff the cached arena belongs to this
    /// very scheme object, the edge set is unchanged (same epoch), and no journal
    /// compaction swallowed entries this context has not seen. On success only the
    /// journaled capacities are patched; on any mismatch the caller falls back to the
    /// full scan, so the fast path can never produce a different result.
    fn try_patch_from_journal(&mut self, scheme: &BroadcastScheme) -> bool {
        let Some(assoc) = self.journal_assoc else {
            return false;
        };
        let (base, end) = scheme.journal_bounds();
        if assoc.scheme_id != scheme.eval_id()
            || assoc.epoch != scheme.edge_epoch()
            || assoc.cursor < base
            || assoc.cursor > end
            || self.arena.is_none()
        {
            return false;
        }
        self.ensure_edge_index();
        let mut patches = std::mem::take(&mut self.scratch_patches);
        patches.clear();
        for &(from, to) in scheme.journal_since(assoc.cursor) {
            let Some(&edge) = self.edge_index.get(&(from, to)) else {
                // Unreachable under the journal protocol (an unchanged epoch means every
                // journaled pair is an edge of the cached set), but a fallback to the
                // full scan is always safe.
                self.scratch_patches = patches;
                self.journal_assoc = None;
                return false;
            };
            patches.push((edge as usize, scheme.rate(from, to)));
        }
        Arc::make_mut(self.arena.as_mut().expect("checked above")).patch_edge_capacities(&patches);
        self.rescans_skipped += 1;
        self.edges_patched += patches.len() as u64;
        self.scratch_patches = patches;
        self.journal_assoc = Some(JournalAssoc {
            cursor: end,
            ..assoc
        });
        true
    }

    /// Rebuilds the `(from, to) → edge index` map if the arena was rebuilt since it was
    /// last valid.
    fn ensure_edge_index(&mut self) {
        if self.edge_index_valid {
            return;
        }
        self.edge_index.clear();
        self.edge_index.reserve(self.arena_edges.len());
        for (k, &(from, to)) in self.arena_edges.iter().enumerate() {
            self.edge_index.insert((from, to), k as u32);
        }
        self.edge_index_valid = true;
    }

    /// Points the cached *explicit-edge* arena at `edges`: an in-place capacity rewrite
    /// when the edge set (endpoints, in order) is unchanged, a CSR rebuild otherwise.
    /// Mirrors [`EvalCtx::prepare_arena`] on the explicit fields; the scheme arena and
    /// its journal association are never touched.
    fn prepare_explicit_arena(&mut self, num_nodes: usize, edges: &[(NodeId, NodeId, f64)]) {
        let reusable = self.explicit_arena.is_some()
            && self.explicit_nodes == num_nodes
            && self.explicit_edges.len() == edges.len()
            && self
                .explicit_edges
                .iter()
                .zip(edges)
                .all(|(&(from, to), &(from2, to2, _))| from == from2 && to == to2);
        if reusable {
            self.scratch_caps.clear();
            self.scratch_caps
                .extend(edges.iter().map(|&(_, _, cap)| cap));
            Arc::make_mut(
                self.explicit_arena
                    .as_mut()
                    .expect("reusable implies present"),
            )
            .set_edge_capacities(&self.scratch_caps);
            self.arena_updates += 1;
        } else {
            self.explicit_arena = Some(Arc::new(FlowArena::from_edges(num_nodes, edges)));
            self.explicit_nodes = num_nodes;
            self.explicit_edges.clear();
            self.explicit_edges
                .extend(edges.iter().map(|&(from, to, _)| (from, to)));
            self.arena_builds += 1;
        }
    }

    /// Points the cached arena at `edges`: an in-place capacity rewrite when the edge
    /// set (endpoints, in order) is unchanged, a CSR rebuild otherwise. Severs any
    /// journal association (the caller re-establishes it when `edges` came from a
    /// scheme).
    fn prepare_arena(&mut self, num_nodes: usize, edges: &[(NodeId, NodeId, f64)]) {
        self.journal_assoc = None;
        let reusable = self.arena.is_some()
            && self.arena_nodes == num_nodes
            && self.arena_edges.len() == edges.len()
            && self
                .arena_edges
                .iter()
                .zip(edges)
                .all(|(&(from, to), &(from2, to2, _))| from == from2 && to == to2);
        if reusable {
            self.scratch_caps.clear();
            self.scratch_caps
                .extend(edges.iter().map(|&(_, _, cap)| cap));
            Arc::make_mut(self.arena.as_mut().expect("reusable implies present"))
                .set_edge_capacities(&self.scratch_caps);
            self.arena_updates += 1;
        } else {
            self.arena = Some(Arc::new(FlowArena::from_edges(num_nodes, edges)));
            self.arena_nodes = num_nodes;
            self.arena_edges.clear();
            self.arena_edges
                .extend(edges.iter().map(|&(from, to, _)| (from, to)));
            self.edge_index_valid = false;
            self.arena_builds += 1;
        }
    }
}

/// Optimal guarded-acyclic throughput of many independent instances, their dichotomic
/// probes interleaved into shared pool passes: one [`BatchedSearch`] round gathers the
/// pending probe of every unfinished cell and evaluates them as a single
/// [`FlowPool::probe_batch`] (fair-share tickets — batching is not speculation), so
/// `n` cells bisecting `k` steps cost `~k` batched pool passes instead of `n·k`
/// serial probe latencies. This is the cross-instance evaluation shape the experiment
/// sweeps fan out over `parallel_map_with`, turned inside out for the regime where
/// the *probes*, not the cells, should own the pool lanes.
///
/// Returns one `(throughput, word, probes)` triple per instance, bit-identical —
/// value, word and probe count — to running
/// [`AcyclicGuardedSolver::optimal_throughput_traced`] on each instance alone (the
/// lockstep driver's per-cell determinism contract, see [`crate::search`]).
///
/// `lanes` is the pool fan-out per batched round; `0` picks the machine's available
/// parallelism (capped just above the pool size), which degenerates to the plain
/// sequential per-cell loop on a single-core host.
#[must_use]
pub fn batched_guarded_throughputs(
    instances: &[Instance],
    tolerance: f64,
    lanes: usize,
) -> Vec<(f64, CodingWord, u64)> {
    let solver = AcyclicGuardedSolver::with_tolerance(tolerance);
    let uppers: Vec<f64> = instances.iter().map(cyclic_upper_bound).collect();
    let pool = FlowPool::global();
    let lanes = if lanes == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(pool.max_workers() + 1)
    } else {
        lanes
    };
    let shared: Arc<Vec<Instance>> = Arc::new(instances.to_vec());
    let probe: bmp_flow::ProbeFn = {
        let instances = Arc::clone(&shared);
        Arc::new(move |cell, t| solver.is_feasible(&instances[cell as usize], t))
    };
    let outcomes =
        BatchedSearch::new(solver.search()).maximize_many(&uppers, |requests, verdicts| {
            pool.probe_batch(
                &probe,
                requests,
                lanes,
                bmp_flow::TicketClass::FairShare,
                verdicts,
            );
        });
    outcomes
        .iter()
        .zip(instances)
        .map(|(outcome, instance)| {
            let word = crate::greedy::greedy_test(instance, outcome.value)
                .word()
                .cloned()
                .unwrap_or_default();
            (outcome.value, word, outcome.probes)
        })
        .collect()
}

/// Certifies that `scheme` delivers at least `claimed` by max-flow through `ctx` and
/// returns the measured throughput — the shared flow-certification stage of the
/// experiment sweeps (Figure 7 worst cells, Figure 19 spot checks, depth profiling).
///
/// # Panics
///
/// Panics when the scheme under-delivers beyond a `1e-6` relative tolerance: an
/// under-delivering scheme is a solver bug, not a data point.
pub fn certify_throughput(ctx: &mut EvalCtx, scheme: &BroadcastScheme, claimed: f64) -> f64 {
    let achieved = ctx.throughput_cold(scheme);
    assert!(
        achieved + 1e-6 * claimed.max(1.0) >= claimed,
        "certification failed: scheme delivers {achieved} < claimed {claimed}"
    );
    achieved
}

/// A broadcast scheduling algorithm with a uniform entry point.
///
/// Implementations must be stateless (configuration lives in the struct, scratch state
/// in the [`EvalCtx`]), so one boxed instance can serve any number of solves.
pub trait Solver: Send + Sync {
    /// Registry name (`--algorithm` value), kebab-case.
    fn name(&self) -> &'static str;

    /// One-line human description (paper reference, supported instance classes).
    fn describe(&self) -> &'static str;

    /// Solves `instance`, evaluating flows through `ctx`.
    ///
    /// # Errors
    ///
    /// [`CoreError::GuardedNodesNotSupported`] or [`CoreError::Unsupported`] when the
    /// algorithm cannot handle the instance; [`CoreError::VerificationFailed`] when the
    /// constructed scheme fails its own max-flow verification.
    fn solve(&self, instance: &Instance, ctx: &mut EvalCtx) -> Result<Solution, CoreError>;
}

/// Timing/verification scaffolding shared by every [`Solver`] implementation —
/// including out-of-crate adapters such as the `bmp-trees` tree-decomposition solver.
///
/// Snapshot the context's counters with [`SolveRecorder::start`], run the algorithm,
/// then let [`SolveRecorder::finish`] verify the claimed throughput by max-flow and
/// assemble the [`Solution`] with the counter deltas as [`Telemetry`].
#[derive(Debug, Clone, Copy)]
pub struct SolveRecorder {
    started: Instant,
    flow_solves: u64,
    bisection_iters: u64,
    probes_speculated: u64,
    probes_wasted: u64,
    rescans_skipped: u64,
    edges_patched: u64,
    flows_warm_started: u64,
    augment_saved: u64,
    excess_drained: u64,
}

impl SolveRecorder {
    /// Snapshots `ctx`'s counters and the wall clock at the start of a solve.
    #[must_use]
    pub fn start(ctx: &EvalCtx) -> Self {
        SolveRecorder {
            started: Instant::now(),
            flow_solves: ctx.flow_solves,
            bisection_iters: ctx.bisection_iters,
            probes_speculated: ctx.probes_speculated,
            probes_wasted: ctx.probes_wasted,
            rescans_skipped: ctx.rescans_skipped,
            edges_patched: ctx.edges_patched,
            flows_warm_started: ctx.flows_warm_started,
            augment_saved: ctx.augment_saved,
            excess_drained: ctx.excess_drained,
        }
    }

    /// The [`Telemetry`] accumulated through `ctx` since [`SolveRecorder::start`]: the
    /// counter deltas plus the elapsed wall clock. Used by [`SolveRecorder::finish`] and
    /// available directly for instrumented evaluation runs that are not a full solve
    /// (e.g. the churn degradation probes and the conformance suite).
    #[must_use]
    pub fn telemetry(&self, ctx: &EvalCtx) -> Telemetry {
        Telemetry {
            flow_solves: ctx.flow_solves - self.flow_solves,
            bisection_iters: ctx.bisection_iters - self.bisection_iters,
            probes_speculated: ctx.probes_speculated - self.probes_speculated,
            probes_wasted: ctx.probes_wasted - self.probes_wasted,
            rescans_skipped: ctx.rescans_skipped - self.rescans_skipped,
            edges_patched: ctx.edges_patched - self.edges_patched,
            flows_warm_started: ctx.flows_warm_started - self.flows_warm_started,
            augment_saved: ctx.augment_saved - self.augment_saved,
            excess_drained: ctx.excess_drained - self.excess_drained,
            wall_time: self.started.elapsed(),
        }
    }

    /// Verifies the claimed throughput by max-flow through `ctx` and assembles the
    /// [`Solution`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VerificationFailed`] when the scheme's measured throughput
    /// falls short of `throughput` beyond the shared verification tolerance, or
    /// [`CoreError::InjectedFault`] when the context's fault script fails this solve.
    pub fn finish(
        self,
        algorithm: &'static str,
        ctx: &mut EvalCtx,
        throughput: f64,
        word: Option<CodingWord>,
        scheme: BroadcastScheme,
    ) -> Result<Solution, CoreError> {
        if let Some(occurrence) = ctx.intercept_fault(FaultSite::Solve) {
            return Err(CoreError::InjectedFault {
                site: FaultSite::Solve.label(),
                occurrence,
            });
        }
        // Certification stays a from-scratch solve: the verified throughput never
        // depends on warm residual state, whatever the context's incremental setting.
        let achieved = ctx.throughput_cold(&scheme);
        let verify_fault = ctx.intercept_fault(FaultSite::Verify).is_some();
        if verify_fault || achieved + VERIFY_TOL * throughput.max(1.0) < throughput {
            return Err(CoreError::VerificationFailed {
                algorithm,
                claimed: throughput,
                achieved: if verify_fault { 0.0 } else { achieved },
            });
        }
        let telemetry = self.telemetry(ctx);
        Ok(Solution {
            algorithm,
            throughput,
            verified_throughput: achieved,
            word,
            scheme,
            telemetry,
        })
    }
}

/// Theorem 4.1: dichotomic search over Algorithm 2 plus the low-degree construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcyclicGuardedAlgorithm;

impl Solver for AcyclicGuardedAlgorithm {
    fn name(&self) -> &'static str {
        "acyclic-guarded"
    }

    fn describe(&self) -> &'static str {
        "optimal acyclic throughput by dichotomic search over GreedyTest, low-degree scheme of Lemma 4.6 (Theorem 4.1); any instance"
    }

    fn solve(&self, instance: &Instance, ctx: &mut EvalCtx) -> Result<Solution, CoreError> {
        let recorder = SolveRecorder::start(ctx);
        let legacy = AcyclicGuardedSolver::with_tolerance(ctx.tolerance());
        let hint = ctx.take_warm_start_lower().unwrap_or(0.0);
        let (throughput, word, probes) = match ctx.speculation() {
            0 => legacy.optimal_throughput_traced_from(hint, instance),
            depth => {
                let (throughput, word, outcome) =
                    legacy.optimal_throughput_traced_spec(hint, instance, depth);
                ctx.add_speculation(outcome.probes_speculated, outcome.probes_wasted);
                (throughput, word, outcome.probes)
            }
        };
        ctx.add_bisection_iters(probes);
        let scheme = if throughput <= 0.0 {
            BroadcastScheme::new(instance.clone())
        } else {
            legacy.scheme_for_word(instance, throughput, &word)?
        };
        recorder.finish(self.name(), ctx, throughput, Some(word), scheme)
    }
}

/// Algorithm 1: closed-form optimal acyclic broadcast for open-only instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcyclicOpenAlgorithm;

impl Solver for AcyclicOpenAlgorithm {
    fn name(&self) -> &'static str {
        "acyclic-open"
    }

    fn describe(&self) -> &'static str {
        "Algorithm 1: optimal acyclic broadcast at min(b0, S_{n-1}/n) (Section III-B); open-only instances"
    }

    fn solve(&self, instance: &Instance, ctx: &mut EvalCtx) -> Result<Solution, CoreError> {
        let recorder = SolveRecorder::start(ctx);
        let (scheme, throughput) = acyclic_open_optimal_scheme(instance)?;
        let word = CodingWord::from_symbols(vec![Symbol::Open; instance.n()]);
        recorder.finish(self.name(), ctx, throughput, Some(word), scheme)
    }
}

/// Theorem 5.2: cyclic construction for open-only instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct CyclicOpenAlgorithm;

impl Solver for CyclicOpenAlgorithm {
    fn name(&self) -> &'static str {
        "cyclic-open"
    }

    fn describe(&self) -> &'static str {
        "optimal cyclic broadcast at min(b0, (b0+O)/n) with local re-routings (Theorem 5.2); open-only instances"
    }

    fn solve(&self, instance: &Instance, ctx: &mut EvalCtx) -> Result<Solution, CoreError> {
        let recorder = SolveRecorder::start(ctx);
        let (scheme, throughput) = cyclic_open_optimal_scheme(instance)?;
        recorder.finish(self.name(), ctx, throughput, None, scheme)
    }
}

/// Ground-truth oracle: enumeration of every increasing order (coding word).
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveAlgorithm {
    /// Refuse instances with more receivers than this (the enumeration is `C(n+m, m)`
    /// words; 20 letters is ~184k words at worst).
    pub max_letters: usize,
}

impl Default for ExhaustiveAlgorithm {
    fn default() -> Self {
        ExhaustiveAlgorithm { max_letters: 20 }
    }
}

impl Solver for ExhaustiveAlgorithm {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn describe(&self) -> &'static str {
        "ground-truth optimal acyclic throughput by enumerating every increasing order (Lemma 4.2); small instances only"
    }

    fn solve(&self, instance: &Instance, ctx: &mut EvalCtx) -> Result<Solution, CoreError> {
        let letters = instance.n() + instance.m();
        if letters > self.max_letters {
            return Err(CoreError::Unsupported {
                algorithm: self.name(),
                reason: format!(
                    "{letters} receivers exceed the enumeration cap of {} letters",
                    self.max_letters
                ),
            });
        }
        let recorder = SolveRecorder::start(ctx);
        let (throughput, word, probes) =
            optimal_acyclic_exhaustive_traced(instance, ctx.tolerance());
        ctx.add_bisection_iters(probes);
        let scheme = if throughput <= 0.0 {
            BroadcastScheme::new(instance.clone())
        } else {
            AcyclicGuardedSolver::with_tolerance(ctx.tolerance())
                .scheme_for_word(instance, throughput, &word)?
        };
        recorder.finish(self.name(), ctx, throughput, Some(word), scheme)
    }
}

/// The better of the two regular interleaving words `ω1`/`ω2` of Theorem 6.2.
#[derive(Debug, Clone, Copy, Default)]
pub struct OmegaWordAlgorithm;

impl Solver for OmegaWordAlgorithm {
    fn name(&self) -> &'static str {
        "omega-word"
    }

    fn describe(&self) -> &'static str {
        "best regular interleaving word omega1/omega2 (Theorem 6.2 heuristic, >= 5/7 of the cyclic optimum); any instance"
    }

    fn solve(&self, instance: &Instance, ctx: &mut EvalCtx) -> Result<Solution, CoreError> {
        let recorder = SolveRecorder::start(ctx);
        let upper = cyclic_upper_bound(instance);
        let search = ctx.search();
        let mut best = (f64::NEG_INFINITY, CodingWord::empty());
        // Same selection rule as `omega::best_omega_throughput` (ω1 wins ties), with the
        // probes of both searches accounted.
        for word in [
            omega2(instance.n(), instance.m()),
            omega1(instance.n(), instance.m()),
        ] {
            let outcome = match ctx.speculation() {
                0 => search.maximize(upper, |t| is_valid_word(instance, t, &word)),
                depth => {
                    // The probe is the pure word-validity predicate, so the
                    // speculative walk returns the serial bracket sequence
                    // bit-for-bit; the closure Arcs its own instance + word clones
                    // because pool workers outlive the call.
                    let shared = Arc::new((instance.clone(), word.clone()));
                    let probe: bmp_flow::ProbeFn = {
                        let shared = Arc::clone(&shared);
                        Arc::new(move |_, t| is_valid_word(&shared.0, t, &shared.1))
                    };
                    let pool = FlowPool::global();
                    let mut tagged: Vec<(u64, f64)> = Vec::new();
                    let outcome = search.maximize_speculative(
                        upper,
                        depth,
                        |candidates, verdicts: &mut Vec<bool>| {
                            tagged.clear();
                            tagged.extend(candidates.iter().map(|&t| (0u64, t)));
                            pool.probe_batch(
                                &probe,
                                &tagged,
                                candidates.len(),
                                bmp_flow::TicketClass::Speculative,
                                verdicts,
                            );
                        },
                    );
                    ctx.add_speculation(outcome.probes_speculated, outcome.probes_wasted);
                    outcome
                }
            };
            ctx.add_bisection_iters(outcome.probes);
            if outcome.value >= best.0 {
                best = (outcome.value, word);
            }
        }
        let (throughput, word) = best;
        let scheme = if throughput <= 0.0 {
            BroadcastScheme::new(instance.clone())
        } else {
            AcyclicGuardedSolver::with_tolerance(ctx.tolerance())
                .scheme_for_word(instance, throughput, &word)?
        };
        recorder.finish(self.name(), ctx, throughput, Some(word), scheme)
    }
}

/// Instance-driven dispatch: the cyclic construction when it applies, Theorem 4.1
/// otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutoAlgorithm;

impl Solver for AutoAlgorithm {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn describe(&self) -> &'static str {
        "cyclic-open on open-only instances (cyclic >= acyclic there), acyclic-guarded otherwise; the returned label names the algorithm that ran"
    }

    fn solve(&self, instance: &Instance, ctx: &mut EvalCtx) -> Result<Solution, CoreError> {
        if instance.has_guarded() {
            AcyclicGuardedAlgorithm.solve(instance, ctx)
        } else {
            CyclicOpenAlgorithm.solve(instance, ctx)
        }
    }
}

/// Every solver implemented by this crate, in presentation order.
///
/// Downstream crates append their own [`Solver`] implementations (e.g. the
/// tree-decomposition adapter of `bmp-trees`) before dispatching by name.
#[must_use]
pub fn registry() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(AcyclicGuardedAlgorithm),
        Box::new(AcyclicOpenAlgorithm),
        Box::new(CyclicOpenAlgorithm),
        Box::new(ExhaustiveAlgorithm::default()),
        Box::new(OmegaWordAlgorithm),
        Box::new(AutoAlgorithm),
    ]
}

/// Looks a core solver up by registry name.
#[must_use]
pub fn find(name: &str) -> Option<Box<dyn Solver>> {
    registry().into_iter().find(|solver| solver.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    #[test]
    fn registry_names_are_unique_and_described() {
        let solvers = registry();
        assert!(solvers.len() >= 5);
        let mut names: Vec<&str> = solvers.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), solvers.len(), "duplicate registry names");
        for solver in &solvers {
            assert!(!solver.describe().is_empty());
        }
    }

    #[test]
    fn find_resolves_known_names_only() {
        assert!(find("acyclic-guarded").is_some());
        assert!(find("cyclic-open").is_some());
        assert!(find("no-such-solver").is_none());
    }

    #[test]
    fn acyclic_guarded_matches_legacy_entry_point() {
        let instance = figure1();
        let mut ctx = EvalCtx::new();
        let solution = AcyclicGuardedAlgorithm.solve(&instance, &mut ctx).unwrap();
        let legacy = AcyclicGuardedSolver::default().solve(&instance);
        assert!((solution.throughput - legacy.throughput).abs() < 1e-9);
        assert_eq!(solution.word.as_ref().unwrap(), &legacy.word);
        assert_eq!(solution.scheme, legacy.scheme);
        assert!(solution.telemetry.bisection_iters > 0);
        assert!(solution.telemetry.flow_solves > 0);
    }

    #[test]
    fn auto_picks_the_instance_appropriate_algorithm() {
        let mut ctx = EvalCtx::new();
        let guarded = AutoAlgorithm.solve(&figure1(), &mut ctx).unwrap();
        assert_eq!(guarded.algorithm, "acyclic-guarded");
        let open = Instance::open_only(10.0, vec![4.0, 4.0, 1.0]).unwrap();
        let open_solution = AutoAlgorithm.solve(&open, &mut ctx).unwrap();
        assert_eq!(open_solution.algorithm, "cyclic-open");
        // On this instance the cyclic optimum strictly beats the acyclic one.
        assert!(open_solution.throughput > guarded.throughput);
    }

    #[test]
    fn exhaustive_refuses_oversized_instances() {
        let big = Instance::open_only(5.0, vec![1.0; 30]).unwrap();
        let err = ExhaustiveAlgorithm::default()
            .solve(&big, &mut EvalCtx::new())
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }

    #[test]
    fn eval_ctx_patches_journaled_rates_without_rescans() {
        let instance = figure1();
        let mut ctx = EvalCtx::new();
        // Explicitly, not by default: the CI matrix runs the suite with
        // BMP_DISABLE_JOURNAL=1, and this test asserts journal-on behaviour.
        ctx.set_journal_enabled(true);
        let solution = AcyclicGuardedAlgorithm.solve(&instance, &mut ctx).unwrap();
        let mut scheme = solution.scheme;
        // The solve's own verification built the arena for this scheme object; every
        // following evaluation of the same object with an unchanged edge set — including
        // one with perturbed rates — must consume the journal: no rebuild, no bulk
        // rewrite, no rate-matrix rescan.
        let builds_before = ctx.arena_builds();
        let updates_before = ctx.arena_updates();
        let skips_before = ctx.rescans_skipped();
        let t1 = ctx.throughput(&scheme);
        let (from, to, rate) = scheme.edges()[0];
        scheme.set_rate(from, to, rate * 0.5);
        let t2 = ctx.throughput(&scheme);
        assert_eq!(ctx.arena_builds(), builds_before);
        assert_eq!(ctx.arena_updates(), updates_before);
        assert_eq!(ctx.rescans_skipped(), skips_before + 2);
        assert_eq!(ctx.edges_patched(), 1);
        assert!(t2 <= t1 + 1e-12);
        // And the journaled result matches a from-scratch evaluation.
        assert_eq!(t2, EvalCtx::new().throughput(&scheme));
    }

    #[test]
    fn disabled_journal_restores_the_scan_based_path() {
        let instance = figure1();
        let mut ctx = EvalCtx::new();
        ctx.set_journal_enabled(false);
        let solution = AcyclicGuardedAlgorithm.solve(&instance, &mut ctx).unwrap();
        let mut scheme = solution.scheme;
        let updates_before = ctx.arena_updates();
        let (from, to, rate) = scheme.edges()[0];
        scheme.set_rate(from, to, rate * 0.5);
        let scanned = ctx.throughput(&scheme);
        // Same edge set, journal disabled: the endpoint-comparison rewrite path runs.
        assert_eq!(ctx.arena_updates(), updates_before + 1);
        assert_eq!(ctx.rescans_skipped(), 0);
        let mut journaled = EvalCtx::new();
        let _ = journaled.throughput(&scheme);
        assert_eq!(scanned, journaled.throughput(&scheme));
    }

    #[test]
    fn journal_association_is_per_object_and_survives_divergence() {
        let instance = figure1();
        let mut ctx = EvalCtx::new();
        ctx.set_journal_enabled(true); // immune to the CI journal-off matrix
        let solution = AcyclicGuardedAlgorithm.solve(&instance, &mut ctx).unwrap();
        let mut a = solution.scheme;
        let _ = ctx.throughput(&a);
        // A clone is a new identity: evaluating it must not consume A's association...
        let mut b = a.clone();
        let (from, to, rate) = a.edges()[0];
        b.set_rate(from, to, rate * 0.25);
        let skips_before = ctx.rescans_skipped();
        let tb = ctx.throughput(&b);
        assert_eq!(ctx.rescans_skipped(), skips_before);
        assert_eq!(tb, EvalCtx::new().throughput(&b));
        // ...and evaluating A afterwards must not reuse B's capacities either.
        a.set_rate(from, to, rate * 0.75);
        let ta = ctx.throughput(&a);
        assert_eq!(ta, EvalCtx::new().throughput(&a));
        // An edge-set change on A (edge removed) falls back to a rebuild, still exact.
        a.set_rate(from, to, 0.0);
        let ta2 = ctx.throughput(&a);
        assert_eq!(ta2, EvalCtx::new().throughput(&a));
    }

    #[test]
    fn interleaved_explicit_edge_evaluations_keep_the_scheme_association() {
        let instance = figure1();
        let mut ctx = EvalCtx::new();
        ctx.set_journal_enabled(true); // immune to the CI journal-off matrix
        let solution = AcyclicGuardedAlgorithm.solve(&instance, &mut ctx).unwrap();
        let mut scheme = solution.scheme;
        let _ = ctx.throughput(&scheme);
        // Explicit-edge evaluations (the churn residual access pattern) run on their own
        // retained arena: interleaving them must neither invalidate the scheme arena's
        // journal association nor rebuild anything on repetition.
        let survivors: Vec<usize> = instance.receivers().collect();
        let filtered = |edges: &mut Vec<(usize, usize, f64)>, scheme: &BroadcastScheme| {
            edges.extend(scheme.edges().into_iter().take(3));
        };
        let first = ctx.min_max_flow_with(instance.num_nodes(), 0, &survivors, |edges| {
            filtered(edges, &scheme)
        });
        let builds_after_first = ctx.arena_builds();
        let skips_before = ctx.rescans_skipped();
        for round in 1..=3 {
            // The scheme re-probe rides the journal even though a residual evaluation
            // ran in between…
            let (from, to, rate) = scheme.edges()[0];
            scheme.set_rate(from, to, rate * (1.0 - 0.1 * round as f64));
            let journaled = ctx.throughput(&scheme);
            assert_eq!(journaled, EvalCtx::new().throughput(&scheme));
            // …and the repeated residual evaluation reuses the explicit arena in place.
            let residual = ctx.min_max_flow_with(instance.num_nodes(), 0, &survivors, |edges| {
                filtered(edges, &scheme)
            });
            assert_eq!(residual, first);
        }
        assert_eq!(ctx.arena_builds(), builds_after_first);
        assert_eq!(ctx.rescans_skipped(), skips_before + 3);
    }

    #[test]
    fn explicit_edge_evaluation_is_pool_parallel_and_bit_identical() {
        let instance = figure1();
        let solution = AcyclicGuardedAlgorithm
            .solve(&instance, &mut EvalCtx::new())
            .unwrap();
        let edges = solution.scheme.edges();
        let sinks: Vec<usize> = instance.receivers().collect();
        let mut seq = EvalCtx::new();
        let expected = seq.min_max_flow(instance.num_nodes(), &edges, 0, &sinks);
        for threads in [0usize, 2, 4, 64] {
            let mut par = EvalCtx::new();
            par.set_parallelism(threads);
            assert_eq!(
                par.min_max_flow(instance.num_nodes(), &edges, 0, &sinks),
                expected,
                "threads {threads}"
            );
            assert_eq!(par.flow_solves(), seq.flow_solves());
        }
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_including_counters() {
        let instance = figure1();
        let solution = AcyclicGuardedAlgorithm
            .solve(&instance, &mut EvalCtx::new())
            .unwrap();
        let mut scheme = solution.scheme;
        // Two fresh contexts run the same evaluation sequence — nominal, then two
        // journaled perturbations — one sequential, one through the worker pool.
        let mut seq = EvalCtx::new();
        let mut par = EvalCtx::new();
        par.set_parallelism(4);
        assert_eq!(par.parallelism(), 4);
        for round in 0..3 {
            if round > 0 {
                let (from, to, rate) = scheme.edges()[round % scheme.edges().len()];
                scheme.set_rate(from, to, rate * 0.75);
            }
            assert_eq!(par.throughput(&scheme), seq.throughput(&scheme));
        }
        // The fan-out changes wall time only: every counter matches bit-for-bit.
        assert_eq!(par.flow_solves(), seq.flow_solves());
        assert_eq!(par.rescans_skipped(), seq.rescans_skipped());
        assert_eq!(par.edges_patched(), seq.edges_patched());
        assert_eq!(par.arena_builds(), seq.arena_builds());
        assert_eq!(par.arena_updates(), seq.arena_updates());
        // One-shot overrides agree too, including the auto heuristic (sequential at
        // this size) and an explicit fan-out wider than the receiver count.
        let expected = seq.throughput(&scheme);
        assert_eq!(par.throughput_parallel(&scheme, 0), expected);
        assert_eq!(par.throughput_parallel(&scheme, 2), expected);
        assert_eq!(par.throughput_parallel(&scheme, 64), expected);
        assert_eq!(seq.throughput_parallel(&scheme, 3), expected);
    }

    #[test]
    fn pooled_evaluation_keeps_the_retained_arena_patchable() {
        let instance = figure1();
        let mut ctx = EvalCtx::new();
        ctx.set_journal_enabled(true); // immune to the CI journal-off matrix
        ctx.set_parallelism(4);
        let solution = AcyclicGuardedAlgorithm.solve(&instance, &mut ctx).unwrap();
        let mut scheme = solution.scheme;
        let _ = ctx.throughput(&scheme);
        let builds_before = ctx.arena_builds();
        let skips_before = ctx.rescans_skipped();
        // After a pooled evaluation every worker has dropped its arena reference, so
        // the journal fast path keeps patching the retained arena in place: no rebuild
        // even though the arena was shared with the pool moments ago.
        for step in 1..=3 {
            let (from, to, rate) = scheme.edges()[0];
            scheme.set_rate(from, to, rate * (1.0 - 0.1 * f64::from(step)));
            let pooled = ctx.throughput(&scheme);
            assert_eq!(pooled, EvalCtx::new().throughput(&scheme));
        }
        assert_eq!(ctx.arena_builds(), builds_before);
        assert_eq!(ctx.rescans_skipped(), skips_before + 3);
    }

    #[test]
    fn eval_ctx_max_flow_matches_scheme_method() {
        let instance = figure1();
        let solution = AcyclicGuardedAlgorithm
            .solve(&instance, &mut EvalCtx::new())
            .unwrap();
        let mut ctx = EvalCtx::new();
        for receiver in instance.receivers() {
            assert_eq!(
                ctx.max_flow_to(&solution.scheme, receiver),
                solution.scheme.max_flow_to(receiver)
            );
        }
    }
}
