//! Coding words and the `O(π)`, `G(π)`, `W(π)` bookkeeping of Section IV.
//!
//! An *increasing order* of the nodes (open nodes by non-increasing bandwidth, guarded nodes
//! by non-increasing bandwidth, interleaved in some way) is encoded by a binary word `π` over
//! the alphabet `{©, ■}`: the `k`-th letter says whether the `k`-th node of the order is open
//! or guarded. The paper's Lemma 4.4 gives recursions for three quantities attached to every
//! conservative partial solution following `π` at throughput `T`:
//!
//! * `O(π)` — open bandwidth still available,
//! * `G(π)` — guarded bandwidth still available,
//! * `W(π)` — amount of open → open transfer used so far ("wasted" open bandwidth).
//!
//! A word is *valid* for `T` exactly when `O(π′) ≥ T` before appending each `■` and
//! `O(π′) + G(π′) ≥ T` before appending each `©`; this characterisation drives both the
//! greedy feasibility test (Algorithm 2) and the per-word optimal throughput used everywhere
//! in the evaluation.

use crate::error::CoreError;
use bmp_flow::eps;
use bmp_platform::{Instance, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One letter of a coding word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Symbol {
    /// `©` — the next node of the order is an open node.
    Open,
    /// `■` — the next node of the order is a guarded node.
    Guarded,
}

/// A coding word: a sequence of [`Symbol`]s encoding an increasing order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CodingWord(Vec<Symbol>);

impl CodingWord {
    /// The empty word `ε`.
    #[must_use]
    pub fn empty() -> Self {
        CodingWord(Vec::new())
    }

    /// Builds a word from symbols.
    #[must_use]
    pub fn from_symbols(symbols: Vec<Symbol>) -> Self {
        CodingWord(symbols)
    }

    /// Parses a word from a string of `o`/`O`/`©` (open) and `g`/`G`/`■` (guarded) characters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWord`] on any other character.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let mut symbols = Vec::with_capacity(text.len());
        for ch in text.chars() {
            match ch {
                'o' | 'O' | '©' => symbols.push(Symbol::Open),
                'g' | 'G' | '■' => symbols.push(Symbol::Guarded),
                ' ' => {}
                other => {
                    return Err(CoreError::InvalidWord(format!(
                        "unexpected character {other:?}"
                    )))
                }
            }
        }
        Ok(CodingWord(symbols))
    }

    /// Length of the word.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the word is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of `©` letters.
    #[must_use]
    pub fn num_open(&self) -> usize {
        self.0.iter().filter(|&&s| s == Symbol::Open).count()
    }

    /// Number of `■` letters.
    #[must_use]
    pub fn num_guarded(&self) -> usize {
        self.0.iter().filter(|&&s| s == Symbol::Guarded).count()
    }

    /// Appends a symbol.
    pub fn push(&mut self, symbol: Symbol) {
        self.0.push(symbol);
    }

    /// The symbols of the word.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.0
    }

    /// Whether the word is complete for `instance` (one letter per receiver, with the right
    /// number of each class).
    #[must_use]
    pub fn is_complete_for(&self, instance: &Instance) -> bool {
        self.num_open() == instance.n() && self.num_guarded() == instance.m()
    }

    /// Converts the word into the node order it encodes, source first: the `k`-th `©` maps to
    /// open node `C_k` and the `k`-th `■` maps to guarded node `C_{n+k}` (increasing orders,
    /// Lemma 4.2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWord`] when the word does not match the instance's node
    /// counts.
    pub fn to_order(&self, instance: &Instance) -> Result<Vec<NodeId>, CoreError> {
        if !self.is_complete_for(instance) {
            return Err(CoreError::InvalidWord(format!(
                "word has {} open and {} guarded letters, instance has n={} and m={}",
                self.num_open(),
                self.num_guarded(),
                instance.n(),
                instance.m()
            )));
        }
        let mut order = Vec::with_capacity(instance.num_nodes());
        order.push(0);
        let mut next_open = 1;
        let mut next_guarded = 1;
        for &symbol in &self.0 {
            match symbol {
                Symbol::Open => {
                    order.push(instance.open_id(next_open));
                    next_open += 1;
                }
                Symbol::Guarded => {
                    order.push(instance.guarded_id(next_guarded));
                    next_guarded += 1;
                }
            }
        }
        Ok(order)
    }
}

impl fmt::Display for CodingWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &symbol in &self.0 {
            let ch = match symbol {
                Symbol::Open => 'o',
                Symbol::Guarded => 'g',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

/// The state `(O(π), G(π), W(π))` of a conservative partial solution after a prefix `π`
/// (Lemma 4.4), together with the number of open and guarded nodes already placed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WordState {
    /// Open bandwidth still available, `O(π)`.
    pub open_avail: f64,
    /// Guarded bandwidth still available, `G(π)`.
    pub guarded_avail: f64,
    /// Open → open transfer used so far, `W(π)`.
    pub open_waste: f64,
    /// Number of open nodes placed, `|π|_©`.
    pub open_used: usize,
    /// Number of guarded nodes placed, `|π|_■`.
    pub guarded_used: usize,
}

impl WordState {
    /// State of the empty word: `O(ε) = b_0`, `G(ε) = 0`, `W(ε) = 0`.
    #[must_use]
    pub fn initial(instance: &Instance) -> Self {
        WordState {
            open_avail: instance.source_bandwidth(),
            guarded_avail: 0.0,
            open_waste: 0.0,
            open_used: 0,
            guarded_used: 0,
        }
    }

    /// Applies the recursion of Lemma 4.4 for appending `symbol` at throughput `throughput`.
    ///
    /// # Panics
    ///
    /// Panics if the corresponding node class is exhausted (more letters than nodes).
    #[must_use]
    pub fn step(&self, instance: &Instance, throughput: f64, symbol: Symbol) -> WordState {
        let mut next = *self;
        match symbol {
            Symbol::Guarded => {
                assert!(
                    self.guarded_used < instance.m(),
                    "more guarded letters than guarded nodes"
                );
                let bandwidth = instance.bandwidth(instance.guarded_id(self.guarded_used + 1));
                next.open_avail = self.open_avail - throughput;
                next.guarded_avail = self.guarded_avail + bandwidth;
                next.guarded_used += 1;
            }
            Symbol::Open => {
                assert!(
                    self.open_used < instance.n(),
                    "more open letters than open nodes"
                );
                let bandwidth = instance.bandwidth(instance.open_id(self.open_used + 1));
                let from_open = (throughput - self.guarded_avail).max(0.0);
                next.open_avail = self.open_avail + bandwidth - from_open;
                next.guarded_avail = (self.guarded_avail - throughput).max(0.0);
                next.open_waste = self.open_waste + from_open;
                next.open_used += 1;
            }
        }
        next
    }

    /// Combined available bandwidth `O(π) + G(π)`.
    #[must_use]
    pub fn total_avail(&self) -> f64 {
        self.open_avail + self.guarded_avail
    }
}

/// Whether appending `symbol` to a prefix in state `state` is allowed at throughput `T`:
/// `O(π) ≥ T` for a guarded node, `O(π) + G(π) ≥ T` for an open node.
#[must_use]
pub fn can_append(state: &WordState, throughput: f64, symbol: Symbol) -> bool {
    match symbol {
        Symbol::Guarded => eps::approx_ge(state.open_avail, throughput),
        Symbol::Open => eps::approx_ge(state.total_avail(), throughput),
    }
}

/// Whether `word` is valid for `instance` at throughput `throughput`
/// (i.e. `T ≤ T*_ac(word)`).
///
/// Words that do not match the instance's node counts are invalid.
#[must_use]
pub fn is_valid_word(instance: &Instance, throughput: f64, word: &CodingWord) -> bool {
    if !word.is_complete_for(instance) {
        return false;
    }
    if throughput <= 0.0 {
        return true;
    }
    let mut state = WordState::initial(instance);
    for &symbol in word.symbols() {
        if !can_append(&state, throughput, symbol) {
            return false;
        }
        state = state.step(instance, throughput, symbol);
        if eps::definitely_lt(state.open_avail, 0.0) {
            return false;
        }
    }
    true
}

/// Full trace of the states along `word` at throughput `throughput`: the first entry is the
/// state of the empty word and each subsequent entry follows one more letter. This is the
/// data shown in Table I of the paper.
#[must_use]
pub fn word_trace(instance: &Instance, throughput: f64, word: &CodingWord) -> Vec<WordState> {
    let mut states = Vec::with_capacity(word.len() + 1);
    let mut state = WordState::initial(instance);
    states.push(state);
    for &symbol in word.symbols() {
        state = state.step(instance, throughput, symbol);
        states.push(state);
    }
    states
}

/// Largest throughput for which `word` is valid (`T*_ac(word)`), computed by the shared
/// dichotomic driver ([`crate::search::DichotomicSearch`]) up to relative precision
/// `tolerance`.
///
/// Returns 0 when the word is invalid even for arbitrarily small throughput (e.g. wrong
/// counts).
#[must_use]
pub fn optimal_throughput_for_word(instance: &Instance, word: &CodingWord, tolerance: f64) -> f64 {
    if !word.is_complete_for(instance) {
        return 0.0;
    }
    let upper = crate::bounds::cyclic_upper_bound(instance);
    crate::search::DichotomicSearch::with_tolerance(tolerance)
        .maximize(upper, |t| is_valid_word(instance, t, word))
        .value
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    fn word_gogog() -> CodingWord {
        CodingWord::parse("gogog").unwrap()
    }

    #[test]
    fn parse_and_display() {
        let word = CodingWord::parse("oGg O").unwrap();
        assert_eq!(word.len(), 4);
        assert_eq!(word.num_open(), 2);
        assert_eq!(word.num_guarded(), 2);
        assert_eq!(word.to_string(), "oggo");
        assert!(CodingWord::parse("ox").is_err());
    }

    #[test]
    fn order_mapping_matches_figure2() {
        // The word ■©©■■ encodes the order σ = 0 3 1 2 4 5 of Figure 2.
        let word = CodingWord::parse("googg").unwrap();
        let order = word.to_order(&figure1()).unwrap();
        assert_eq!(order, vec![0, 3, 1, 2, 4, 5]);
        // The word ■©■©■ encodes the order σ = 0 3 1 4 2 5 of Figure 5.
        let order = word_gogog().to_order(&figure1()).unwrap();
        assert_eq!(order, vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn order_rejects_count_mismatch() {
        let word = CodingWord::parse("ooo").unwrap();
        assert!(word.to_order(&figure1()).is_err());
        assert!(!word.is_complete_for(&figure1()));
    }

    #[test]
    fn state_recursion_reproduces_table1() {
        // Table I of the paper: GreedyTest(T = 4) on the Figure 1 instance follows the word
        // ■©■©■ and visits O = 6,2,7,3,5,1 ; G = 0,4,0,1,0,1 ; W = 0,0,0,0,3,3.
        let inst = figure1();
        let trace = word_trace(&inst, 4.0, &word_gogog());
        let open: Vec<f64> = trace.iter().map(|s| s.open_avail).collect();
        let guarded: Vec<f64> = trace.iter().map(|s| s.guarded_avail).collect();
        let waste: Vec<f64> = trace.iter().map(|s| s.open_waste).collect();
        assert_eq!(open, vec![6.0, 2.0, 7.0, 3.0, 5.0, 1.0]);
        assert_eq!(guarded, vec![0.0, 4.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(waste, vec![0.0, 0.0, 0.0, 0.0, 3.0, 3.0]);
    }

    #[test]
    fn figure2_word_wastes_more_open_bandwidth() {
        // The acyclic scheme of Figure 2 follows ■©©■■ and uses 4 units of open→open
        // transfer, versus 3 for the word produced by Algorithm 2 (remark under Table I).
        let inst = figure1();
        let trace = word_trace(&inst, 4.0, &CodingWord::parse("googg").unwrap());
        let final_waste = trace.last().unwrap().open_waste;
        assert_eq!(final_waste, 4.0);
    }

    #[test]
    fn validity_at_throughput_4() {
        let inst = figure1();
        assert!(is_valid_word(&inst, 4.0, &word_gogog()));
        assert!(is_valid_word(
            &inst,
            4.0,
            &CodingWord::parse("googg").unwrap()
        ));
        // Starting with two guarded nodes requires 2T ≤ b0 = 6, impossible at T = 4.
        assert!(!is_valid_word(
            &inst,
            4.0,
            &CodingWord::parse("ggoog").unwrap()
        ));
    }

    #[test]
    fn validity_is_monotone_in_throughput() {
        let inst = figure1();
        let word = word_gogog();
        let t_star = optimal_throughput_for_word(&inst, &word, 1e-12);
        for t in [0.5, 1.0, 2.0, 3.0, 3.9, t_star - 1e-9] {
            assert!(is_valid_word(&inst, t, &word), "T = {t} should be valid");
        }
        for t in [t_star + 1e-6, 4.5, 5.0] {
            assert!(!is_valid_word(&inst, t, &word), "T = {t} should be invalid");
        }
    }

    #[test]
    fn optimal_throughput_for_figure1_words() {
        let inst = figure1();
        // The optimal acyclic throughput of the Figure 1 instance is 4 and is reached both by
        // the Algorithm 2 word and by the Figure 2 word.
        let t1 = optimal_throughput_for_word(&inst, &word_gogog(), 1e-12);
        assert!((t1 - 4.0).abs() < 1e-6, "t1 = {t1}");
        let t2 = optimal_throughput_for_word(&inst, &CodingWord::parse("googg").unwrap(), 1e-12);
        assert!((t2 - 4.0).abs() < 1e-6, "t2 = {t2}");
        // A bad word (all open first) reaches a lower throughput.
        let t3 = optimal_throughput_for_word(&inst, &CodingWord::parse("ooggg").unwrap(), 1e-12);
        assert!(t3 < 4.0 + 1e-9);
    }

    #[test]
    fn zero_throughput_is_always_valid_for_complete_words() {
        let inst = figure1();
        assert!(is_valid_word(&inst, 0.0, &word_gogog()));
        assert!(!is_valid_word(
            &inst,
            0.0,
            &CodingWord::parse("oo").unwrap()
        ));
    }

    #[test]
    fn word_state_total() {
        let inst = figure1();
        let state = WordState::initial(&inst);
        assert_eq!(state.total_avail(), 6.0);
        let after = state.step(&inst, 4.0, Symbol::Guarded);
        assert_eq!(after.total_avail(), 2.0 + 4.0);
        assert_eq!(after.guarded_used, 1);
        assert_eq!(after.open_used, 0);
    }

    #[test]
    #[should_panic(expected = "more guarded letters")]
    fn step_panics_when_class_exhausted() {
        let inst = figure1();
        let mut state = WordState::initial(&inst);
        for _ in 0..4 {
            state = state.step(&inst, 1.0, Symbol::Guarded);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let word = word_gogog();
        let json = serde_json::to_string(&word).unwrap();
        let back: CodingWord = serde_json::from_str(&json).unwrap();
        assert_eq!(word, back);
    }
}
