//! Worst-case families of Section VI: the 5/7 instance, the Theorem 6.3 family `I(α, k)` and
//! the unbounded-degree family of Figure 6.

use crate::bounds::cyclic_upper_bound;
use crate::error::CoreError;
use crate::scheme::BroadcastScheme;
use bmp_platform::paper;
use bmp_platform::Instance;

/// The 5/7 worst-case instance of Figure 18 (re-exported from the platform layer).
///
/// # Errors
///
/// Returns an error unless `0 ≤ ε < 1/2`.
pub fn five_sevenths_instance(epsilon: f64) -> Result<Instance, CoreError> {
    Ok(paper::figure18(epsilon)?)
}

/// The `ε` at which both candidate orderings of the Figure 18 instance tie at exactly 5/7.
#[must_use]
pub fn five_sevenths_tight_epsilon() -> f64 {
    paper::figure18_tight_epsilon()
}

/// `f_α(x) = (αx + 1)/2`: upper bound on the acyclic throughput of `I(α, k)` when `x` open
/// nodes appear before the second guarded node (the source and those `x` nodes must feed the
/// first two guarded nodes).
#[must_use]
pub fn theorem63_f(alpha: f64, x: f64) -> f64 {
    (alpha * x + 1.0) / 2.0
}

/// `g_α(x) = (αx + 1/α + 1)/(x + 2)`: upper bound when `x` open nodes appear before the
/// second guarded node (the first `x + 2` nodes must be fed by the source, those `x` open
/// nodes and the first guarded node).
#[must_use]
pub fn theorem63_g(alpha: f64, x: f64) -> f64 {
    (alpha * x + 1.0 / alpha + 1.0) / (x + 2.0)
}

/// Upper bound `max(f_α(⌊1/α⌋), g_α(⌈1/α⌉))` of Theorem 6.3 on the acyclic throughput of
/// `I(α, k)` (the cyclic optimum of the family is 1).
#[must_use]
pub fn theorem63_acyclic_upper_bound(alpha: f64) -> f64 {
    let x_low = (1.0 / alpha).floor();
    let x_high = (1.0 / alpha).ceil();
    theorem63_f(alpha, x_low).max(theorem63_g(alpha, x_high))
}

/// Builds the `I(α, k)` instance with the rational `α = p/q` (Theorem 6.3).
///
/// # Errors
///
/// Returns an error unless `0 < p < q` and `k ≥ 1`.
pub fn theorem63_instance(p: u32, q: u32, k: u32) -> Result<Instance, CoreError> {
    Ok(paper::theorem63_instance(p, q, k)?)
}

/// The Figure 6 family (`b_0 = 1`, one open node of bandwidth `m − 1`, `m` guarded nodes of
/// bandwidth `1/m`), whose unique optimal cyclic scheme forces the source to have outdegree
/// `m` while `⌈b_0/T*⌉ = 1`.
///
/// # Errors
///
/// Returns an error if `m < 2`.
pub fn unbounded_degree_instance(m: usize) -> Result<Instance, CoreError> {
    Ok(paper::figure6(m)?)
}

/// The optimal cyclic scheme of the Figure 6 instance: the source splits its unit bandwidth
/// evenly across the `m` guarded nodes, every guarded node relays its `1/m` to the open node,
/// and the open node sends `(m−1)/m` to every guarded node. Its throughput is `T* = 1` and
/// the source outdegree is `m`.
///
/// # Errors
///
/// Returns an error if `m < 2`.
pub fn unbounded_degree_optimal_scheme(m: usize) -> Result<BroadcastScheme, CoreError> {
    let instance = unbounded_degree_instance(m)?;
    let mut scheme = BroadcastScheme::new(instance.clone());
    let m_f = m as f64;
    let open = 1usize; // the single open node is C_1
    for k in 1..=m {
        let guarded = instance.guarded_id(k);
        scheme.set_rate(0, guarded, 1.0 / m_f);
        scheme.set_rate(guarded, open, 1.0 / m_f);
        scheme.set_rate(open, guarded, (m_f - 1.0) / m_f);
    }
    Ok(scheme)
}

/// Ratio `T*_ac / T*` of an instance, using the supplied acyclic throughput and the
/// closed-form cyclic optimum.
#[must_use]
pub fn acyclic_cyclic_ratio(instance: &Instance, acyclic_throughput: f64) -> f64 {
    let cyclic = cyclic_upper_bound(instance);
    if cyclic <= 0.0 {
        1.0
    } else {
        acyclic_throughput / cyclic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic_guarded::AcyclicGuardedSolver;
    use crate::bounds::{five_sevenths, theorem63_limit_ratio};
    use bmp_platform::node::degree_lower_bound;

    #[test]
    fn five_sevenths_family_ratio() {
        let solver = AcyclicGuardedSolver::default();
        let inst = five_sevenths_instance(five_sevenths_tight_epsilon()).unwrap();
        let (acyclic, _) = solver.optimal_throughput(&inst);
        let ratio = acyclic_cyclic_ratio(&inst, acyclic);
        assert!((ratio - five_sevenths()).abs() < 1e-6, "ratio = {ratio}");
        // Away from the tight ε the ratio is strictly better.
        let inst = five_sevenths_instance(0.01).unwrap();
        let (acyclic, _) = solver.optimal_throughput(&inst);
        assert!(acyclic_cyclic_ratio(&inst, acyclic) > five_sevenths() + 1e-3);
    }

    #[test]
    fn theorem63_functions_cross_at_the_limit() {
        let alpha = bmp_platform::paper::theorem63_alpha();
        // ⌊1/α⌋ = 2 and ⌈1/α⌉ = 3, and f(2) = g(3) = (1+√41)/8.
        assert_eq!((1.0 / alpha).floor(), 2.0);
        assert_eq!((1.0 / alpha).ceil(), 3.0);
        assert!((theorem63_f(alpha, 2.0) - theorem63_limit_ratio()).abs() < 1e-9);
        assert!((theorem63_g(alpha, 3.0) - theorem63_limit_ratio()).abs() < 1e-9);
        assert!((theorem63_acyclic_upper_bound(alpha) - theorem63_limit_ratio()).abs() < 1e-9);
    }

    #[test]
    fn theorem63_family_ratio_stays_below_the_limit() {
        let solver = AcyclicGuardedSolver::default();
        let (p, q) = bmp_platform::paper::theorem63_rational_alpha();
        let alpha = f64::from(p) / f64::from(q);
        let analytic_bound = theorem63_acyclic_upper_bound(alpha);
        for k in [1u32, 2, 3] {
            let inst = theorem63_instance(p, q, k).unwrap();
            assert!((cyclic_upper_bound(&inst) - 1.0).abs() < 1e-9);
            let (acyclic, _) = solver.optimal_throughput(&inst);
            assert!(
                acyclic <= analytic_bound + 1e-6,
                "k = {k}: acyclic {acyclic} exceeds analytic bound {analytic_bound}"
            );
            assert!(acyclic >= five_sevenths() - 1e-6);
            // The bound is within 1% of the irrational limit (1+√41)/8.
            assert!((analytic_bound - theorem63_limit_ratio()).abs() < 0.01);
        }
    }

    #[test]
    fn unbounded_degree_scheme_is_optimal_but_high_degree() {
        let solver = AcyclicGuardedSolver::default();
        for m in [2usize, 4, 8, 16] {
            let scheme = unbounded_degree_optimal_scheme(m).unwrap();
            assert!(scheme.is_feasible(), "violations: {:?}", scheme.validate());
            let throughput = scheme.throughput();
            assert!(
                (throughput - 1.0).abs() < 1e-9,
                "m = {m}: throughput {throughput}"
            );
            // The source degree is m although ⌈b0/T*⌉ = 1: the degree excess is unbounded.
            assert_eq!(scheme.outdegree(0), m);
            assert_eq!(degree_lower_bound(1.0, 1.0), 1);
            assert_eq!(scheme.degree_excess(0, 1.0), m as i64 - 1);
            // The acyclic optimum of the same instance is strictly below 1 and decreases with
            // m: low-degree (acyclic) solutions pay a throughput price here.
            let inst = unbounded_degree_instance(m).unwrap();
            let (acyclic, _) = solver.optimal_throughput(&inst);
            assert!(acyclic < 1.0 - 1e-6);
            assert!(acyclic >= five_sevenths() - 1e-6);
        }
    }

    #[test]
    fn figure6_rejects_tiny_m() {
        assert!(unbounded_degree_instance(1).is_err());
        assert!(unbounded_degree_optimal_scheme(0).is_err());
    }

    #[test]
    fn ratio_helper_handles_degenerate_cyclic_bound() {
        let inst = Instance::new(0.0, vec![1.0], vec![]).unwrap();
        assert_eq!(acyclic_cyclic_ratio(&inst, 0.0), 1.0);
    }
}
