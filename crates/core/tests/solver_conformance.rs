//! Conformance suite for the unified solver registry: every registered solver, run over a
//! corpus of small open/guarded instances, must produce a feasible scheme whose claimed
//! throughput is certified by max-flow, with populated telemetry — and the trait
//! implementations must agree with the legacy free-function entry points they wrap.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::acyclic_open::acyclic_open_optimal_scheme;
use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
use bmp_core::exhaustive::optimal_acyclic_exhaustive;
use bmp_core::omega::best_omega_throughput;
use bmp_core::solver::{registry, EvalCtx};
use bmp_core::CoreError;
use bmp_platform::paper::{figure1, figure11, figure14};
use bmp_platform::Instance;
use proptest::prelude::*;

/// Small open/guarded instances covering every solver's supported class.
fn corpus() -> Vec<Instance> {
    vec![
        figure1(),
        figure11(),
        figure14(),
        Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap(),
        Instance::open_only(10.0, vec![4.0, 4.0, 1.0]).unwrap(),
        Instance::new(6.0, vec![], vec![2.0, 1.0, 1.0]).unwrap(),
        Instance::new(10.0, vec![8.0, 6.0, 5.0, 2.0], vec![7.0, 3.0, 1.0]).unwrap(),
        Instance::new(3.0, vec![9.0, 1.0], vec![4.0, 4.0, 0.5, 0.5]).unwrap(),
        Instance::new(1.0, vec![0.5; 4], vec![3.0; 2]).unwrap(),
    ]
}

/// Solvers that report a coding word and spend dichotomic probes.
fn is_word_based(name: &str) -> bool {
    matches!(name, "acyclic-guarded" | "exhaustive" | "omega-word")
}

#[test]
fn every_solver_conforms_on_the_corpus() {
    let mut ctx = EvalCtx::new();
    for solver in registry() {
        let mut solved = 0usize;
        for instance in corpus() {
            let solution = match solver.solve(&instance, &mut ctx) {
                Ok(solution) => solution,
                // Class restrictions are legitimate (open-only algorithms on guarded
                // instances); anything else is a conformance failure.
                Err(CoreError::GuardedNodesNotSupported { .. })
                | Err(CoreError::Unsupported { .. }) => continue,
                Err(other) => panic!("{}: unexpected error {other}", solver.name()),
            };
            solved += 1;
            assert!(
                solution.scheme.validate().is_empty(),
                "{}: violations {:?}",
                solver.name(),
                solution.scheme.validate()
            );
            // The claimed throughput is certified by max-flow on the returned scheme.
            let achieved = solution.scheme.throughput();
            assert!(
                (achieved - solution.throughput).abs() <= 1e-5 * solution.throughput.max(1.0),
                "{}: claimed {} vs measured {achieved}",
                solver.name(),
                solution.throughput
            );
            // Telemetry counters are populated: every solve verifies by max-flow, and
            // word-based solvers spend dichotomic probes.
            assert!(
                solution.telemetry.flow_solves > 0,
                "{}: no flow solves recorded",
                solver.name()
            );
            if is_word_based(solution.algorithm) && solution.throughput > 0.0 {
                assert!(
                    solution.telemetry.bisection_iters > 0,
                    "{}: no bisection probes recorded",
                    solver.name()
                );
                assert!(solution.word.is_some(), "{}: missing word", solver.name());
            }
        }
        assert!(
            solved >= 2,
            "{} solved only {solved} corpus instances",
            solver.name()
        );
    }
}

#[test]
fn word_based_solvers_never_beat_the_ground_truth() {
    // The exhaustive oracle is the acyclic optimum; the heuristics must stay at or below
    // it, and acyclic-guarded must match it.
    let mut ctx = EvalCtx::new();
    let by_name = |name: &str| {
        registry()
            .into_iter()
            .find(|s| s.name() == name)
            .expect("registered")
    };
    for instance in corpus() {
        let exact = by_name("exhaustive").solve(&instance, &mut ctx).unwrap();
        let guarded = by_name("acyclic-guarded")
            .solve(&instance, &mut ctx)
            .unwrap();
        let omega = by_name("omega-word").solve(&instance, &mut ctx).unwrap();
        let tol = 1e-5 * exact.throughput.max(1.0);
        assert!(
            (guarded.throughput - exact.throughput).abs() <= tol,
            "dichotomic {} vs exhaustive {}",
            guarded.throughput,
            exact.throughput
        );
        assert!(omega.throughput <= exact.throughput + tol);
    }
}

#[test]
fn trait_impls_match_legacy_entry_points() {
    // The legacy free functions / builder remain the implementation; the trait adapters
    // must be exactly equivalent on their shared domain.
    let mut ctx = EvalCtx::new();
    let by_name = |name: &str| {
        registry()
            .into_iter()
            .find(|s| s.name() == name)
            .expect("registered")
    };
    for instance in corpus() {
        let legacy = AcyclicGuardedSolver::default().solve(&instance);
        let adapted = by_name("acyclic-guarded")
            .solve(&instance, &mut ctx)
            .unwrap();
        assert!((legacy.throughput - adapted.throughput).abs() < 1e-12);
        assert_eq!(Some(&legacy.word), adapted.word.as_ref());
        assert_eq!(legacy.scheme, adapted.scheme);

        let (exhaustive_t, _) = optimal_acyclic_exhaustive(&instance, EvalCtx::DEFAULT_TOLERANCE);
        let exhaustive = by_name("exhaustive").solve(&instance, &mut ctx).unwrap();
        assert!((exhaustive_t - exhaustive.throughput).abs() < 1e-9);

        let (omega_t, _) = best_omega_throughput(&instance, EvalCtx::DEFAULT_TOLERANCE);
        let omega = by_name("omega-word").solve(&instance, &mut ctx).unwrap();
        assert!((omega_t - omega.throughput).abs() < 1e-9);

        if !instance.has_guarded() {
            let (legacy_scheme, legacy_t) = acyclic_open_optimal_scheme(&instance).unwrap();
            let open = by_name("acyclic-open").solve(&instance, &mut ctx).unwrap();
            assert_eq!(legacy_t, open.throughput);
            assert_eq!(legacy_scheme, open.scheme);

            let (legacy_scheme, legacy_t) = cyclic_open_optimal_scheme(&instance).unwrap();
            let cyclic = by_name("cyclic-open").solve(&instance, &mut ctx).unwrap();
            assert_eq!(legacy_t, cyclic.throughput);
            assert_eq!(legacy_scheme, cyclic.scheme);
        }
    }
}

/// Random open-only instance and rate matrix; entries below 0.5 are zeroed so that the
/// edge *set* survives the ±50% rate perturbations used by the incremental test.
fn random_scheme() -> impl Strategy<Value = (bmp_core::BroadcastScheme, Vec<f64>)> {
    (2..=7usize).prop_flat_map(|n| {
        let rates = proptest::collection::vec(0.0_f64..10.0, n * n);
        let factors = proptest::collection::vec(0.5_f64..1.5, n * n);
        (rates, factors).prop_map(move |(rates, factors)| {
            let instance =
                Instance::open_only(5.0, vec![1.0; n - 1]).expect("valid open-only instance");
            let mut scheme = bmp_core::BroadcastScheme::new(instance);
            for i in 0..n {
                for j in 0..n {
                    let rate = rates[i * n + j];
                    if i != j && rate >= 0.5 {
                        scheme.set_rate(i, j, rate);
                    }
                }
            }
            (scheme, factors)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental-capacity arena path (retained arena, capacities rewritten in
    /// place) must equal a from-scratch rebuild for every evaluation of a perturbed
    /// scheme.
    #[test]
    fn incremental_arena_equals_rebuild(case in random_scheme()) {
        let (mut scheme, factors) = case;
        let mut retained = EvalCtx::new();
        let first = retained.throughput(&scheme);
        prop_assert_eq!(first, EvalCtx::new().throughput(&scheme));
        // Perturb every edge's rate without changing the edge set, twice.
        for round in 0..2 {
            let n = scheme.instance().num_nodes();
            for (from, to, rate) in scheme.edges() {
                let factor = factors[(from * n + to) % factors.len()];
                scheme.set_rate(from, to, rate * factor);
            }
            let updates_before = retained.arena_updates();
            let incremental = retained.throughput(&scheme);
            let fresh = EvalCtx::new().throughput(&scheme);
            prop_assert_eq!(incremental, fresh, "round {}", round);
            prop_assert_eq!(retained.arena_updates(), updates_before + 1,
                "round {} did not take the incremental path", round);
        }
    }
}
