//! Conformance suite for the unified solver registry: every registered solver, run over a
//! corpus of small open/guarded instances, must produce a feasible scheme whose claimed
//! throughput is certified by max-flow, with populated telemetry — and the trait
//! implementations must agree with the legacy free-function entry points they wrap.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::acyclic_open::acyclic_open_optimal_scheme;
use bmp_core::churn::degradation_tolerance;
use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
use bmp_core::exhaustive::optimal_acyclic_exhaustive;
use bmp_core::omega::best_omega_throughput;
use bmp_core::search::DichotomicSearch;
use bmp_core::solver::{registry, EvalCtx, SolveRecorder};
use bmp_core::CoreError;
use bmp_platform::paper::{figure1, figure11, figure14};
use bmp_platform::Instance;
use proptest::prelude::*;

/// Small open/guarded instances covering every solver's supported class.
fn corpus() -> Vec<Instance> {
    vec![
        figure1(),
        figure11(),
        figure14(),
        Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap(),
        Instance::open_only(10.0, vec![4.0, 4.0, 1.0]).unwrap(),
        Instance::new(6.0, vec![], vec![2.0, 1.0, 1.0]).unwrap(),
        Instance::new(10.0, vec![8.0, 6.0, 5.0, 2.0], vec![7.0, 3.0, 1.0]).unwrap(),
        Instance::new(3.0, vec![9.0, 1.0], vec![4.0, 4.0, 0.5, 0.5]).unwrap(),
        Instance::new(1.0, vec![0.5; 4], vec![3.0; 2]).unwrap(),
    ]
}

/// Solvers that report a coding word and spend dichotomic probes.
fn is_word_based(name: &str) -> bool {
    matches!(name, "acyclic-guarded" | "exhaustive" | "omega-word")
}

#[test]
fn every_solver_conforms_on_the_corpus() {
    let mut ctx = EvalCtx::new();
    for solver in registry() {
        let mut solved = 0usize;
        for instance in corpus() {
            let solution = match solver.solve(&instance, &mut ctx) {
                Ok(solution) => solution,
                // Class restrictions are legitimate (open-only algorithms on guarded
                // instances); anything else is a conformance failure.
                Err(CoreError::GuardedNodesNotSupported { .. })
                | Err(CoreError::Unsupported { .. }) => continue,
                Err(other) => panic!("{}: unexpected error {other}", solver.name()),
            };
            solved += 1;
            assert!(
                solution.scheme.validate().is_empty(),
                "{}: violations {:?}",
                solver.name(),
                solution.scheme.validate()
            );
            // The claimed throughput is certified by max-flow on the returned scheme.
            let achieved = solution.scheme.throughput();
            assert!(
                (achieved - solution.throughput).abs() <= 1e-5 * solution.throughput.max(1.0),
                "{}: claimed {} vs measured {achieved}",
                solver.name(),
                solution.throughput
            );
            // Telemetry counters are populated: every solve verifies by max-flow, and
            // word-based solvers spend dichotomic probes.
            assert!(
                solution.telemetry.flow_solves > 0,
                "{}: no flow solves recorded",
                solver.name()
            );
            if is_word_based(solution.algorithm) && solution.throughput > 0.0 {
                assert!(
                    solution.telemetry.bisection_iters > 0,
                    "{}: no bisection probes recorded",
                    solver.name()
                );
                assert!(solution.word.is_some(), "{}: missing word", solver.name());
            }
        }
        assert!(
            solved >= 2,
            "{} solved only {solved} corpus instances",
            solver.name()
        );
    }
}

#[test]
fn word_based_solvers_never_beat_the_ground_truth() {
    // The exhaustive oracle is the acyclic optimum; the heuristics must stay at or below
    // it, and acyclic-guarded must match it.
    let mut ctx = EvalCtx::new();
    let by_name = |name: &str| {
        registry()
            .into_iter()
            .find(|s| s.name() == name)
            .expect("registered")
    };
    for instance in corpus() {
        let exact = by_name("exhaustive").solve(&instance, &mut ctx).unwrap();
        let guarded = by_name("acyclic-guarded")
            .solve(&instance, &mut ctx)
            .unwrap();
        let omega = by_name("omega-word").solve(&instance, &mut ctx).unwrap();
        let tol = 1e-5 * exact.throughput.max(1.0);
        assert!(
            (guarded.throughput - exact.throughput).abs() <= tol,
            "dichotomic {} vs exhaustive {}",
            guarded.throughput,
            exact.throughput
        );
        assert!(omega.throughput <= exact.throughput + tol);
    }
}

#[test]
fn trait_impls_match_legacy_entry_points() {
    // The legacy free functions / builder remain the implementation; the trait adapters
    // must be exactly equivalent on their shared domain.
    let mut ctx = EvalCtx::new();
    let by_name = |name: &str| {
        registry()
            .into_iter()
            .find(|s| s.name() == name)
            .expect("registered")
    };
    for instance in corpus() {
        let legacy = AcyclicGuardedSolver::default().solve(&instance);
        let adapted = by_name("acyclic-guarded")
            .solve(&instance, &mut ctx)
            .unwrap();
        assert!((legacy.throughput - adapted.throughput).abs() < 1e-12);
        assert_eq!(Some(&legacy.word), adapted.word.as_ref());
        assert_eq!(legacy.scheme, adapted.scheme);

        let (exhaustive_t, _) = optimal_acyclic_exhaustive(&instance, EvalCtx::DEFAULT_TOLERANCE);
        let exhaustive = by_name("exhaustive").solve(&instance, &mut ctx).unwrap();
        assert!((exhaustive_t - exhaustive.throughput).abs() < 1e-9);

        let (omega_t, _) = best_omega_throughput(&instance, EvalCtx::DEFAULT_TOLERANCE);
        let omega = by_name("omega-word").solve(&instance, &mut ctx).unwrap();
        assert!((omega_t - omega.throughput).abs() < 1e-9);

        if !instance.has_guarded() {
            let (legacy_scheme, legacy_t) = acyclic_open_optimal_scheme(&instance).unwrap();
            let open = by_name("acyclic-open").solve(&instance, &mut ctx).unwrap();
            assert_eq!(legacy_t, open.throughput);
            assert_eq!(legacy_scheme, open.scheme);

            let (legacy_scheme, legacy_t) = cyclic_open_optimal_scheme(&instance).unwrap();
            let cyclic = by_name("cyclic-open").solve(&instance, &mut ctx).unwrap();
            assert_eq!(legacy_t, cyclic.throughput);
            assert_eq!(legacy_scheme, cyclic.scheme);
        }
    }
}

/// Every registry solver's solution, re-probed by the dichotomic degradation search:
/// the probes re-score near-identical schemes through the shared context, so every run
/// must ride the dirty-edge journal — `rescans_skipped > 0` in its [`Telemetry`] — and
/// agree exactly with a journal-free context.
#[test]
fn every_solver_dichotomic_reprobe_rides_the_journal() {
    let mut ctx = EvalCtx::new();
    // Explicitly, not by default: the CI matrix runs this suite with
    // BMP_DISABLE_JOURNAL=1, and this test asserts journal-on behaviour.
    ctx.set_journal_enabled(true);
    for solver in registry() {
        let mut reprobed = 0usize;
        for instance in corpus() {
            let Ok(solution) = solver.solve(&instance, &mut ctx) else {
                continue;
            };
            if solution.throughput <= 0.0 {
                continue;
            }
            // Degrade the source's upload: always present and always load-bearing.
            let floor = 0.9 * solution.throughput;
            let recorder = SolveRecorder::start(&ctx);
            let tolerance = degradation_tolerance(&solution.scheme, 0, floor, &mut ctx);
            let telemetry = recorder.telemetry(&ctx);
            assert!(
                telemetry.rescans_skipped > 0,
                "{}: dichotomic re-probe never skipped a rescan ({telemetry:?})",
                solver.name()
            );
            assert!(
                telemetry.edges_patched > 0,
                "{}: dichotomic re-probe never patched an edge ({telemetry:?})",
                solver.name()
            );
            assert!(
                telemetry.bisection_iters > 0,
                "{}: no probes recorded",
                solver.name()
            );
            // The journaled probes must reproduce the journal-free result exactly.
            let mut scan_ctx = EvalCtx::new();
            scan_ctx.set_journal_enabled(false);
            let scanned = degradation_tolerance(&solution.scheme, 0, floor, &mut scan_ctx);
            assert_eq!(
                tolerance,
                scanned,
                "{}: journaled and scan-based probes disagree",
                solver.name()
            );
            reprobed += 1;
        }
        assert!(
            reprobed >= 2,
            "{} re-probed only {reprobed} corpus instances",
            solver.name()
        );
    }
}

/// Every registry solver must produce the *same* solution under a pooled evaluation
/// context as under a sequential one: same algorithm label, bit-identical claimed and
/// verified throughput, same word, same scheme, and bit-identical telemetry counters
/// (`wall_time` is the only field allowed to differ — the fan-out changes nothing but
/// elapsed time).
#[test]
fn every_solver_matches_under_a_pooled_ctx() {
    for solver in registry() {
        for instance in corpus() {
            let mut seq = EvalCtx::new();
            let mut pooled = EvalCtx::new();
            pooled.set_parallelism(4);
            let sequential = solver.solve(&instance, &mut seq);
            let parallel = solver.solve(&instance, &mut pooled);
            match (sequential, parallel) {
                (Ok(sequential), Ok(parallel)) => {
                    let name = solver.name();
                    assert_eq!(sequential.algorithm, parallel.algorithm, "{name}");
                    assert_eq!(
                        sequential.throughput.to_bits(),
                        parallel.throughput.to_bits(),
                        "{name}: claimed throughput diverged"
                    );
                    assert_eq!(
                        sequential.verified_throughput.to_bits(),
                        parallel.verified_throughput.to_bits(),
                        "{name}: verified throughput diverged"
                    );
                    assert_eq!(sequential.word, parallel.word, "{name}");
                    assert_eq!(sequential.scheme, parallel.scheme, "{name}");
                    let (s, p) = (&sequential.telemetry, &parallel.telemetry);
                    assert_eq!(s.flow_solves, p.flow_solves, "{name}");
                    assert_eq!(s.bisection_iters, p.bisection_iters, "{name}");
                    assert_eq!(s.rescans_skipped, p.rescans_skipped, "{name}");
                    assert_eq!(s.edges_patched, p.edges_patched, "{name}");
                }
                (Err(_), Err(_)) => {} // class restrictions hit identically
                (sequential, parallel) => panic!(
                    "{}: sequential {:?} vs pooled {:?} disagree on solvability",
                    solver.name(),
                    sequential.map(|s| s.throughput),
                    parallel.map(|s| s.throughput)
                ),
            }
        }
    }
}

/// Every registry solver must produce the *same* solution under a speculating
/// evaluation context as under a serial one, at every depth in {1, 2, 3} and with the
/// journal both on and off: same algorithm label, bit-identical claimed and verified
/// throughput, same word, same scheme, and bit-identical telemetry counters.
/// `probes_speculated` / `probes_wasted` are the only counters allowed to grow (and
/// `wall_time` the only field allowed to shrink) — speculation buys time, never a
/// different answer. This is the in-repo half of the CI speculation matrix, which
/// re-runs the whole suite under `BMP_SPECULATE` ∈ {0, 1, 2} × `BMP_DISABLE_JOURNAL`
/// ∈ {unset, 1}.
#[test]
fn every_solver_matches_under_speculation() {
    let mut speculated_somewhere = 0u64;
    for journal in [true, false] {
        for depth in [1usize, 2, 3] {
            for solver in registry() {
                for instance in corpus() {
                    let mut serial = EvalCtx::new();
                    serial.set_journal_enabled(journal);
                    serial.set_speculation(0);
                    let mut spec = EvalCtx::new();
                    spec.set_journal_enabled(journal);
                    spec.set_speculation(depth);
                    let plain = solver.solve(&instance, &mut serial);
                    let speculative = solver.solve(&instance, &mut spec);
                    match (plain, speculative) {
                        (Ok(plain), Ok(speculative)) => {
                            let name = solver.name();
                            assert_eq!(plain.algorithm, speculative.algorithm, "{name}");
                            assert_eq!(
                                plain.throughput.to_bits(),
                                speculative.throughput.to_bits(),
                                "{name}: claimed throughput diverged at depth {depth}"
                            );
                            assert_eq!(
                                plain.verified_throughput.to_bits(),
                                speculative.verified_throughput.to_bits(),
                                "{name}: verified throughput diverged at depth {depth}"
                            );
                            assert_eq!(plain.word, speculative.word, "{name}");
                            assert_eq!(plain.scheme, speculative.scheme, "{name}");
                            let (s, p) = (&plain.telemetry, &speculative.telemetry);
                            assert_eq!(s.flow_solves, p.flow_solves, "{name}");
                            assert_eq!(s.bisection_iters, p.bisection_iters, "{name}");
                            assert_eq!(s.rescans_skipped, p.rescans_skipped, "{name}");
                            assert_eq!(s.edges_patched, p.edges_patched, "{name}");
                            assert_eq!(s.probes_speculated, 0, "{name}: serial speculated");
                            assert!(
                                p.probes_wasted <= p.probes_speculated,
                                "{name}: wasted {} > speculated {}",
                                p.probes_wasted,
                                p.probes_speculated
                            );
                            speculated_somewhere += p.probes_speculated;
                        }
                        (Err(_), Err(_)) => {} // class restrictions hit identically
                        (plain, speculative) => panic!(
                            "{}: serial {:?} vs speculative {:?} disagree on solvability",
                            solver.name(),
                            plain.map(|s| s.throughput),
                            speculative.map(|s| s.throughput)
                        ),
                    }
                }
            }
        }
    }
    // The comparison proves nothing if no solver ever actually speculated.
    assert!(speculated_somewhere > 0, "no probe was ever speculated");
}

/// Every registry solver must produce the *same* solution with warm residual reuse
/// enabled as with it disabled, with the journal on and off and speculation at depths
/// {0, 2}: same algorithm label, bit-identical claimed and verified throughput, same
/// word, same scheme, and bit-identical telemetry counters. The solved scheme is then
/// re-probed by the dichotomic degradation search through the same contexts — the
/// probe sequence whose repeated same-arena evaluations the warm path accelerates —
/// and the tolerances must agree bit-for-bit while the warm context demonstrably
/// reuses residual states. This is the in-repo half of the CI incremental matrix,
/// which re-runs the whole suite under `BMP_INCREMENTAL` ∈ {0, 1}.
#[test]
fn every_solver_matches_under_incremental_reuse() {
    let mut warmed_somewhere = 0u64;
    for journal in [true, false] {
        for depth in [0usize, 2] {
            for solver in registry() {
                for instance in corpus() {
                    let mut cold = EvalCtx::new();
                    cold.set_journal_enabled(journal);
                    cold.set_speculation(depth);
                    cold.set_incremental(false);
                    let mut warm = EvalCtx::new();
                    warm.set_journal_enabled(journal);
                    warm.set_speculation(depth);
                    warm.set_incremental(true);
                    let plain = solver.solve(&instance, &mut cold);
                    let reused = solver.solve(&instance, &mut warm);
                    match (plain, reused) {
                        (Ok(plain), Ok(reused)) => {
                            let name = solver.name();
                            assert_eq!(plain.algorithm, reused.algorithm, "{name}");
                            assert_eq!(
                                plain.throughput.to_bits(),
                                reused.throughput.to_bits(),
                                "{name}: claimed throughput diverged (journal={journal}, depth={depth})"
                            );
                            assert_eq!(
                                plain.verified_throughput.to_bits(),
                                reused.verified_throughput.to_bits(),
                                "{name}: verified throughput diverged (journal={journal}, depth={depth})"
                            );
                            assert_eq!(plain.word, reused.word, "{name}");
                            assert_eq!(plain.scheme, reused.scheme, "{name}");
                            let (c, w) = (&plain.telemetry, &reused.telemetry);
                            assert_eq!(c.flow_solves, w.flow_solves, "{name}");
                            assert_eq!(c.bisection_iters, w.bisection_iters, "{name}");
                            assert_eq!(c.rescans_skipped, w.rescans_skipped, "{name}");
                            assert_eq!(c.edges_patched, w.edges_patched, "{name}");
                            assert_eq!(
                                c.flows_warm_started, 0,
                                "{name}: cold context warm-started"
                            );
                            warmed_somewhere += w.flows_warm_started;
                            if plain.throughput > 0.0 {
                                // Re-probe the solution with the degradation search:
                                // repeated same-arena evaluations, the warm path's
                                // bread and butter. Verdict sequences diverging would
                                // surface as a different tolerance.
                                let floor = 0.9 * plain.throughput;
                                let t_cold =
                                    degradation_tolerance(&plain.scheme, 0, floor, &mut cold);
                                let t_warm =
                                    degradation_tolerance(&reused.scheme, 0, floor, &mut warm);
                                assert_eq!(
                                    t_cold, t_warm,
                                    "{name}: degradation re-probe diverged (journal={journal}, depth={depth})"
                                );
                                warmed_somewhere += warm.flows_warm_started();
                            }
                        }
                        (Err(_), Err(_)) => {} // class restrictions hit identically
                        (plain, reused) => panic!(
                            "{}: cold {:?} vs incremental {:?} disagree on solvability",
                            solver.name(),
                            plain.map(|s| s.throughput),
                            reused.map(|s| s.throughput)
                        ),
                    }
                }
            }
        }
    }
    // The comparison proves nothing if no evaluation ever actually warm-started.
    assert!(warmed_somewhere > 0, "no flow solve was ever warm-started");
}

/// Random open-only instance and rate matrix; entries below 0.5 are zeroed so that the
/// edge *set* survives the ±50% rate perturbations used by the incremental test.
fn random_scheme() -> impl Strategy<Value = (bmp_core::BroadcastScheme, Vec<f64>)> {
    (2..=7usize).prop_flat_map(|n| {
        let rates = proptest::collection::vec(0.0_f64..10.0, n * n);
        let factors = proptest::collection::vec(0.5_f64..1.5, n * n);
        (rates, factors).prop_map(move |(rates, factors)| {
            let instance =
                Instance::open_only(5.0, vec![1.0; n - 1]).expect("valid open-only instance");
            let mut scheme = bmp_core::BroadcastScheme::new(instance);
            for i in 0..n {
                for j in 0..n {
                    let rate = rates[i * n + j];
                    if i != j && rate >= 0.5 {
                        scheme.set_rate(i, j, rate);
                    }
                }
            }
            (scheme, factors)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The journaled fast path (retained arena, sparse capacity patches) must equal a
    /// from-scratch rebuild for every evaluation of a perturbed scheme.
    #[test]
    fn journaled_patches_equal_rebuild(case in random_scheme()) {
        let (mut scheme, factors) = case;
        let mut retained = EvalCtx::new();
        // Explicitly, not by default: the CI matrix exports BMP_DISABLE_JOURNAL=1 and
        // this test asserts journal-on behaviour.
        retained.set_journal_enabled(true);
        let first = retained.throughput(&scheme);
        prop_assert_eq!(first, EvalCtx::new().throughput(&scheme));
        // Perturb every edge's rate without changing the edge set, twice: both rounds
        // must ride the journal (no rescan, no rebuild) and agree with a fresh context.
        for round in 0..2 {
            let n = scheme.instance().num_nodes();
            for (from, to, rate) in scheme.edges() {
                let factor = factors[(from * n + to) % factors.len()];
                scheme.set_rate(from, to, rate * factor);
            }
            let builds_before = retained.arena_builds();
            let skips_before = retained.rescans_skipped();
            let incremental = retained.throughput(&scheme);
            let fresh = EvalCtx::new().throughput(&scheme);
            prop_assert_eq!(incremental, fresh, "round {}", round);
            prop_assert_eq!(retained.arena_builds(), builds_before,
                "round {} rebuilt the arena", round);
            prop_assert_eq!(retained.rescans_skipped(), skips_before + 1,
                "round {} did not take the journal path", round);
        }
        // Pruning dust is invisible to the journal: the next evaluation still patches
        // and still agrees bit-for-bit.
        scheme.prune_dust();
        let skips_before = retained.rescans_skipped();
        prop_assert_eq!(retained.throughput(&scheme), EvalCtx::new().throughput(&scheme));
        prop_assert_eq!(retained.rescans_skipped(), skips_before + 1);
        // An edge-set-changing mutation (remove one edge, add another) must fall back
        // to the scan/rebuild path — and stay exact.
        let edges = scheme.edges();
        if let Some(&(from, to, _)) = edges.first() {
            scheme.set_rate(from, to, 0.0);
        }
        let n = scheme.instance().num_nodes();
        if n >= 3 {
            let (a, b) = (n - 2, n - 1);
            let rate = scheme.rate(a, b);
            scheme.set_rate(a, b, rate + 1.0);
        }
        let skips_before = retained.rescans_skipped();
        prop_assert_eq!(retained.throughput(&scheme), EvalCtx::new().throughput(&scheme));
        prop_assert_eq!(retained.rescans_skipped(), skips_before,
            "an edge-set change must not take the journal path");
    }

    /// `EvalCtx::throughput_parallel` (the persistent-pool fan-out) must equal
    /// sequential evaluation **bit-identically** — values and telemetry counters — on
    /// random overlays, with the journal on and off, at every fan-out in {1, 2, 4}.
    /// Runs the same probe sequence (nominal evaluation, then two rounds of journaled
    /// perturbations) through one sequential and one parallel context per combination.
    #[test]
    fn parallel_throughput_is_bit_identical_to_sequential(case in random_scheme()) {
        let (mut scheme, factors) = case;
        let n = scheme.instance().num_nodes();
        for journal in [true, false] {
            for threads in [1usize, 2, 4] {
                let mut seq = EvalCtx::new();
                seq.set_journal_enabled(journal);
                let mut par = EvalCtx::new();
                par.set_journal_enabled(journal);
                par.set_parallelism(threads);
                let rec_seq = SolveRecorder::start(&seq);
                let rec_par = SolveRecorder::start(&par);
                prop_assert_eq!(par.throughput(&scheme), seq.throughput(&scheme),
                    "nominal (journal={}, threads={})", journal, threads);
                for round in 0..2 {
                    for (from, to, rate) in scheme.edges() {
                        let factor = factors[(from * n + to) % factors.len()];
                        scheme.set_rate(from, to, rate * factor);
                    }
                    prop_assert_eq!(par.throughput(&scheme), seq.throughput(&scheme),
                        "round {} (journal={}, threads={})", round, journal, threads);
                }
                // Telemetry counters are bit-exact; wall_time is the only field the
                // fan-out may change.
                let t_seq = rec_seq.telemetry(&seq);
                let t_par = rec_par.telemetry(&par);
                prop_assert_eq!(t_par.flow_solves, t_seq.flow_solves);
                prop_assert_eq!(t_par.bisection_iters, t_seq.bisection_iters);
                prop_assert_eq!(t_par.rescans_skipped, t_seq.rescans_skipped);
                prop_assert_eq!(t_par.edges_patched, t_seq.edges_patched);
                if journal {
                    // The probe sequence is journal-friendly: both contexts must have
                    // actually ridden the fast path, or the comparison proves nothing.
                    prop_assert!(t_seq.rescans_skipped >= 2,
                        "sequential context never took the journal path");
                }
            }
        }
    }
}

/// Random small guarded/open instance for the speculation equivalence properties
/// (the corpus shapes, randomized).
fn random_instance() -> impl Strategy<Value = Instance> {
    (
        0.3_f64..10.0,
        proptest::collection::vec(0.1_f64..10.0, 0..=5),
        proptest::collection::vec(0.1_f64..10.0, 0..=5),
    )
        .prop_filter_map("need a receiver", |(b0, open, guarded)| {
            Instance::new(b0, open, guarded).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 4.1's solver must return a bit-identical [`Solution`] — throughput,
    /// verified throughput, word, scheme, and every telemetry counter — whether its
    /// dichotomic search probes serially or speculates 1–3 levels ahead against the
    /// flow pool, with the journal on or off.
    #[test]
    fn speculative_solve_is_bit_identical_to_serial(
        instance in random_instance(),
        depth in 1usize..=3,
        journal_bit in 0usize..=1,
    ) {
        let journal = journal_bit == 1;
        use bmp_core::solver::{AcyclicGuardedAlgorithm, Solver as _};
        let solver = AcyclicGuardedAlgorithm;
        let mut serial = EvalCtx::new();
        serial.set_journal_enabled(journal);
        serial.set_speculation(0);
        let mut spec = EvalCtx::new();
        spec.set_journal_enabled(journal);
        spec.set_speculation(depth);
        let plain = solver.solve(&instance, &mut serial).expect("guarded solver");
        let speculative = solver.solve(&instance, &mut spec).expect("guarded solver");
        prop_assert_eq!(plain.throughput.to_bits(), speculative.throughput.to_bits());
        prop_assert_eq!(
            plain.verified_throughput.to_bits(),
            speculative.verified_throughput.to_bits()
        );
        prop_assert_eq!(&plain.word, &speculative.word);
        prop_assert_eq!(&plain.scheme, &speculative.scheme);
        let (s, p) = (&plain.telemetry, &speculative.telemetry);
        prop_assert_eq!(s.flow_solves, p.flow_solves);
        prop_assert_eq!(s.bisection_iters, p.bisection_iters);
        prop_assert_eq!(s.rescans_skipped, p.rescans_skipped);
        prop_assert_eq!(s.edges_patched, p.edges_patched);
        prop_assert!(p.probes_wasted <= p.probes_speculated);
    }

    /// Theorem 4.1's solver must return a bit-identical [`Solution`] — throughput,
    /// verified throughput, word, scheme, and every telemetry counter — with warm
    /// residual reuse on or off, across the journal × speculation matrix; and the
    /// solution's dichotomic degradation re-probe (the warm path's target workload)
    /// must produce the same tolerance through both contexts.
    #[test]
    fn incremental_solve_is_bit_identical_to_cold(
        instance in random_instance(),
        journal_bit in 0usize..=1,
        depth_bit in 0usize..=1,
    ) {
        let journal = journal_bit == 1;
        let depth = depth_bit * 2;
        use bmp_core::solver::{AcyclicGuardedAlgorithm, Solver as _};
        let solver = AcyclicGuardedAlgorithm;
        let mut cold = EvalCtx::new();
        cold.set_journal_enabled(journal);
        cold.set_speculation(depth);
        cold.set_incremental(false);
        let mut warm = EvalCtx::new();
        warm.set_journal_enabled(journal);
        warm.set_speculation(depth);
        warm.set_incremental(true);
        let plain = solver.solve(&instance, &mut cold).expect("guarded solver");
        let reused = solver.solve(&instance, &mut warm).expect("guarded solver");
        prop_assert_eq!(plain.throughput.to_bits(), reused.throughput.to_bits());
        prop_assert_eq!(
            plain.verified_throughput.to_bits(),
            reused.verified_throughput.to_bits()
        );
        prop_assert_eq!(&plain.word, &reused.word);
        prop_assert_eq!(&plain.scheme, &reused.scheme);
        let (c, w) = (&plain.telemetry, &reused.telemetry);
        prop_assert_eq!(c.flow_solves, w.flow_solves);
        prop_assert_eq!(c.bisection_iters, w.bisection_iters);
        prop_assert_eq!(c.rescans_skipped, w.rescans_skipped);
        prop_assert_eq!(c.edges_patched, w.edges_patched);
        prop_assert_eq!(c.flows_warm_started, 0);
        if plain.throughput > 0.0 {
            let floor = 0.9 * plain.throughput;
            let t_cold = degradation_tolerance(&plain.scheme, 0, floor, &mut cold);
            let t_warm = degradation_tolerance(&reused.scheme, 0, floor, &mut warm);
            prop_assert_eq!(t_cold, t_warm, "degradation re-probe diverged");
        }
    }

    /// The determinism contract at probe granularity: replaying the candidate trees a
    /// speculative search submitted, with the serial walk rule, must reproduce the
    /// serial probe trace *exactly* — every tree root is the midpoint the serial
    /// search would probe next, every consumed node continues its bracket, and the
    /// total consumed count equals the serial probe count.
    #[test]
    fn speculative_probe_trace_equals_serial(
        threshold in 0.001_f64..9.99,
        upper in 0.5_f64..10.0,
        hint in -1.0_f64..11.0,
        depth in 1usize..=3,
    ) {
        let search = DichotomicSearch::default();
        let feasible = |t: f64| t <= threshold;

        // Serial reference: the exact probe sequence, in order.
        let mut serial_trace = Vec::new();
        let serial = search.maximize_from(hint, upper, |t| {
            serial_trace.push(t);
            feasible(t)
        });

        // Speculative run: record every submitted batch (preamble singletons and
        // full candidate trees alike).
        let mut batches: Vec<Vec<f64>> = Vec::new();
        let spec = search.maximize_speculative_from(hint, upper, depth, |candidates: &[f64], verdicts: &mut Vec<bool>| {
            batches.push(candidates.to_vec());
            verdicts.clear();
            verdicts.extend(candidates.iter().map(|&t| feasible(t)));
        });
        prop_assert_eq!(spec.value.to_bits(), serial.value.to_bits());
        prop_assert_eq!(spec.probes, serial.probes);

        // Replay: walk each recorded tree by the predicate. The nodes visited, in
        // order across all batches, must be precisely the serial trace.
        let mut consumed = 0usize;
        for batch in &batches {
            let mut node = 0usize;
            while node < batch.len() && consumed < serial_trace.len() {
                prop_assert_eq!(
                    batch[node].to_bits(),
                    serial_trace[consumed].to_bits(),
                    "probe {} diverged from the serial trace", consumed
                );
                node = if feasible(batch[node]) { 2 * node + 2 } else { 2 * node + 1 };
                consumed += 1;
            }
        }
        prop_assert_eq!(consumed, serial_trace.len(), "consumed probes != serial probes");
        // Accounting: each main round submits one candidate tree and charges all but
        // its root as speculated; wasted = submitted-but-not-consumed tree nodes.
        // Preamble probes travel as singleton batches (a tree has >= 3 nodes).
        let preamble = batches.iter().filter(|b| b.len() == 1).count();
        let rounds = batches.iter().filter(|b| b.len() > 1).count();
        let tree_nodes: usize = batches.iter().filter(|b| b.len() > 1).map(Vec::len).sum();
        prop_assert_eq!(spec.probes_speculated as usize, tree_nodes - rounds);
        prop_assert_eq!(
            spec.probes_wasted as usize,
            tree_nodes - (spec.probes as usize - preamble)
        );
    }
}
