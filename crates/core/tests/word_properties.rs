//! Property tests on coding words, the (O, G, W) bookkeeping of Lemma 4.4 and the
//! conservative scheme construction.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::conservative::{is_compatible_with_order, is_conservative};
use bmp_core::exhaustive::all_words;
use bmp_core::word::{
    is_valid_word, optimal_throughput_for_word, word_trace, CodingWord, Symbol, WordState,
};
use bmp_platform::Instance;
use proptest::prelude::*;

fn small_instance() -> impl Strategy<Value = Instance> {
    (
        0.3_f64..10.0,
        proptest::collection::vec(0.1_f64..10.0, 0..=5),
        proptest::collection::vec(0.1_f64..10.0, 0..=5),
    )
        .prop_filter_map("need a receiver", |(b0, open, guarded)| {
            Instance::new(b0, open, guarded).ok()
        })
}

/// A random complete word for the given instance, encoded as a shuffle seed.
fn word_for(instance: &Instance, seed: usize) -> CodingWord {
    let words = all_words(instance.n(), instance.m());
    words[seed % words.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bookkeeping_conserves_bandwidth(instance in small_instance(), seed in 0usize..10_000, t in 0.01_f64..5.0) {
        // Lemma 4.4: O(π) + G(π) = Σ_{placed} b_k + b_0 − |π|·T, whatever the word.
        let word = word_for(&instance, seed);
        let trace = word_trace(&instance, t, &word);
        for (index, state) in trace.iter().enumerate() {
            let placed_open: f64 = (1..=state.open_used).map(|k| instance.bandwidth(instance.open_id(k))).sum();
            let placed_guarded: f64 = (1..=state.guarded_used).map(|k| instance.bandwidth(instance.guarded_id(k))).sum();
            let expected = instance.source_bandwidth() + placed_open + placed_guarded
                - index as f64 * t;
            prop_assert!((state.total_avail() - expected).abs() < 1e-7,
                "prefix {}: O+G = {} vs expected {}", index, state.total_avail(), expected);
            // W is non-negative and non-decreasing along the word.
            prop_assert!(state.open_waste >= -1e-12);
            if index > 0 {
                prop_assert!(state.open_waste + 1e-12 >= trace[index - 1].open_waste);
            }
        }
    }

    #[test]
    fn per_word_optimum_is_the_validity_threshold(instance in small_instance(), seed in 0usize..10_000) {
        let word = word_for(&instance, seed);
        let t_star = optimal_throughput_for_word(&instance, &word, 1e-11);
        prop_assert!(is_valid_word(&instance, t_star * 0.999, &word));
        prop_assert!(is_valid_word(&instance, 0.0, &word));
        if t_star > 1e-9 {
            prop_assert!(!is_valid_word(&instance, t_star * 1.01 + 1e-6, &word));
        }
    }

    #[test]
    fn word_order_roundtrip(instance in small_instance(), seed in 0usize..10_000) {
        let word = word_for(&instance, seed);
        let order = word.to_order(&instance).unwrap();
        prop_assert_eq!(order.len(), instance.num_nodes());
        prop_assert_eq!(order[0], 0);
        let back = bmp_core::conservative::order_to_word(&instance, &order).unwrap();
        prop_assert_eq!(back, word);
    }

    #[test]
    fn constructed_schemes_are_conservative_and_order_compatible(
        instance in small_instance(),
        seed in 0usize..10_000,
        fraction in 0.1_f64..1.0,
    ) {
        let solver = AcyclicGuardedSolver::default();
        let word = word_for(&instance, seed);
        let t_star = optimal_throughput_for_word(&instance, &word, 1e-11);
        prop_assume!(t_star > 1e-6);
        let t = t_star * fraction;
        let scheme = solver.scheme_for_word(&instance, t, &word).unwrap();
        let order = word.to_order(&instance).unwrap();
        prop_assert!(scheme.is_feasible(), "{:?}", scheme.validate());
        prop_assert!(is_compatible_with_order(&scheme, &order).unwrap());
        prop_assert!(is_conservative(&scheme, &order).unwrap());
        // Every receiver is served at exactly rate t.
        for receiver in instance.receivers() {
            prop_assert!((scheme.received(receiver) - t).abs() < 1e-6 * t.max(1.0));
        }
        prop_assert!(scheme.throughput() + 1e-6 * t.max(1.0) >= t);
    }

    #[test]
    fn initial_state_matches_the_instance(instance in small_instance()) {
        let state = WordState::initial(&instance);
        prop_assert_eq!(state.open_avail, instance.source_bandwidth());
        prop_assert_eq!(state.guarded_avail, 0.0);
        prop_assert_eq!(state.open_waste, 0.0);
    }
}

#[test]
fn symbols_round_trip_through_display_and_parse() {
    for n in 0..4 {
        for m in 0..4 {
            for word in all_words(n, m) {
                let text = word.to_string();
                let parsed = CodingWord::parse(&text).unwrap();
                assert_eq!(parsed, word);
                assert_eq!(parsed.num_open(), n);
                assert_eq!(parsed.num_guarded(), m);
            }
        }
    }
}

#[test]
fn symbol_counts_are_consistent() {
    let word = CodingWord::from_symbols(vec![
        Symbol::Open,
        Symbol::Guarded,
        Symbol::Guarded,
        Symbol::Open,
    ]);
    assert_eq!(word.num_open(), 2);
    assert_eq!(word.num_guarded(), 2);
    assert_eq!(word.len(), 4);
}
