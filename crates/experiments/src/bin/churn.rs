//! Runs the churn extension experiment: residual throughput of frozen overlays after a
//! departure, and the quality of the repaired (re-solved) overlays.

use bmp_experiments::churn_exp::run;
use bmp_experiments::parallel::default_threads;
use bmp_experiments::runner::{write_output, RunOptions};

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let threads = default_threads();
    let report = run(options.quick, threads);
    println!("Churn experiment ({} threads):", threads);
    println!("receivers  departure        residual (mean/median/p05)   repaired (mean/min)");
    for cell in &report.cells {
        println!(
            "{:>9}  {:<15}  {:.3} / {:.3} / {:.3}            {:.3} / {:.3}",
            cell.receivers,
            cell.kind.label(),
            cell.residual.mean,
            cell.residual.median,
            cell.residual.p05,
            cell.repaired.mean,
            cell.repaired.min,
        );
    }
    println!(
        "\nreading: a frozen overlay keeps only the `residual` fraction of its rate after the \
         departure; re-running the solver recovers the `repaired` fraction of the reduced \
         platform's cyclic optimum (Theorem 4.1 guarantees at least 5/7 ≈ 0.714)."
    );
    write_output(
        &options.output_path("churn.csv"),
        &report.to_csv().to_csv_string(),
    )
}
