//! Runs the depth/delay extension experiment: hop depth of the optimal acyclic scheme versus
//! the regular ω-word schemes, and the effect of throttling the throughput on depth.

use bmp_experiments::depth_exp::run;
use bmp_experiments::parallel::default_threads;
use bmp_experiments::runner::{write_output, RunOptions};

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let threads = default_threads();
    let report = run(options.quick, threads);
    println!("Depth experiment ({} threads):", threads);
    println!("receivers  trials  max hops (optimal / omega / omega@95%)  omega/optimal throughput");
    for cell in &report.cells {
        println!(
            "{:>9}  {:>6}  {:>7.2} / {:>5.2} / {:>5.2}                  {:.4}",
            cell.receivers,
            cell.trials,
            cell.optimal_max_hops,
            cell.omega_max_hops,
            cell.throttled_max_hops,
            cell.omega_throughput_ratio,
        );
    }
    println!(
        "\nreading: deeper overlays mean larger start-up delay for live streams; giving up 5% \
         of the ω-word throughput (last column ratios are relative to the optimal acyclic \
         throughput) buys visibly shallower trees."
    );
    write_output(
        &options.output_path("depth.csv"),
        &report.to_csv().to_csv_string(),
    )
}
