//! Runs the fault-storm survival sweep: scripted solver failures, probe timeouts,
//! worker panics and churn storms against the hardened repair pipeline.

use bmp_experiments::fault_storm_exp::run;
use bmp_experiments::parallel::default_threads;
use bmp_experiments::runner::{write_output, RunOptions};

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let threads = default_threads();
    let report = run(options.quick, threads);
    println!("Fault-storm survival sweep ({threads} threads):");
    println!(
        "receivers  trials  survived  degraded  static goodput  repaired goodput  faults fired  attempts"
    );
    for cell in &report.cells {
        println!(
            "{:>9}  {:>6}  {:>8}  {:>8}  {:>14.3}  {:>16.3}  {:>12}  {:>8}",
            cell.receivers,
            cell.trials,
            cell.survived,
            cell.degraded,
            cell.static_ratio.mean,
            cell.repaired_ratio.mean,
            cell.faults_fired,
            cell.repair_attempts,
        );
    }
    println!(
        "\nreading: every trial installs a seeded fault storm (injected solver failures, a \
         forced verification failure, a probe timeout, an armed flow-worker panic) on the \
         repair controller and merges seeded depart/rejoin waves into the churn trace; \
         `survived` counts repaired sessions that still delivered the full message to every \
         survivor. Set BMP_FAULT_PLAN=storm[:seed] to override the per-trial plans."
    );
    write_output(
        &options.output_path("fault_storm.csv"),
        &report.to_csv().to_csv_string(),
    )
}
