//! Regenerates Figure 19: average-case acyclic/cyclic ratios on random instances.

use bmp_experiments::fig19::{run, Fig19Config};
use bmp_experiments::runner::{write_output, RunOptions};

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let config = if options.quick {
        Fig19Config::quick()
    } else {
        Fig19Config::default()
    };
    println!(
        "Figure 19: {} distributions x {} probabilities x {} sizes, {} instances per cell",
        config.distributions.len(),
        config.open_probabilities.len(),
        config.sizes.len(),
        config.instances_per_cell
    );
    let result = run(&config);
    println!("distribution  p     size   acyclic(mean/median)  omega(mean)  theorem(mean)");
    for cell in &result.cells {
        println!(
            "{:<12} {:<5} {:<6} {:.4} / {:.4}        {:.4}       {:.4}",
            cell.distribution,
            cell.open_probability,
            cell.size,
            cell.optimal_acyclic.mean,
            cell.optimal_acyclic.median,
            cell.best_omega.mean,
            cell.theorem_word.mean
        );
    }
    if let Some(worst) = result.worst_mean_acyclic_ratio() {
        println!("worst mean acyclic/cyclic ratio: {worst:.4} (paper: at most ~5% below 1)");
    }
    write_output(
        &options.output_path("fig19.csv"),
        &result.to_csv().to_csv_string(),
    )
}
