//! Regenerates Figure 7: worst-case acyclic/cyclic ratio over tight homogeneous instances.

use bmp_experiments::fig7::{run, Fig7Config};
use bmp_experiments::runner::{write_output, RunOptions};

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let config = if options.quick {
        Fig7Config::quick()
    } else {
        Fig7Config::default()
    };
    println!(
        "Figure 7: grid up to n, m = {} (step {}), {} threads",
        config.max_nodes, config.grid_step, config.threads
    );
    let result = run(config);
    if let Some(minimum) = result.global_minimum() {
        println!(
            "global minimum ratio {:.4} at (n = {}, m = {}, delta = {})  [paper floor: 5/7 = {:.4}]",
            minimum.worst_ratio,
            minimum.n,
            minimum.m,
            minimum.worst_delta,
            5.0 / 7.0
        );
    }
    println!(
        "fraction of cells above 0.8: {:.3} (paper: all but a few small instances)",
        result.fraction_above(0.8)
    );
    write_output(
        &options.output_path("fig7.csv"),
        &result.to_csv().to_csv_string(),
    )
}
