//! Regenerates the running example of the paper (Figures 1, 2 and 5) and validates it end to
//! end (max-flow + chunk-level simulation).

use bmp_experiments::paper_figures::run;
use bmp_experiments::runner::{write_output, RunOptions};

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let report = run();
    let rendered = report.render();
    println!("{rendered}");
    write_output(&options.output_path("paper_figures.txt"), &rendered)
}
