//! Runs the chunk-policy extension experiment: delivered fraction of the nominal overlay
//! throughput under the four push policies of the data-plane simulator.

use bmp_experiments::parallel::default_threads;
use bmp_experiments::policy_exp::run;
use bmp_experiments::runner::{write_output, RunOptions};

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let threads = default_threads();
    let report = run(options.quick, threads);
    println!("Chunk-policy experiment ({} threads):", threads);
    println!("policy          receivers  rate fraction (mean/median/p05)  completed");
    for cell in &report.cells {
        println!(
            "{:<15} {:>9}  {:.3} / {:.3} / {:.3}              {:.0}%",
            cell.policy.label(),
            cell.receivers,
            cell.rate_fraction.mean,
            cell.rate_fraction.median,
            cell.rate_fraction.p05,
            100.0 * cell.completion_fraction,
        );
    }
    println!(
        "\nreading: every policy delivers a large constant fraction of the fluid rate; \
         random-useful and rarest-first keep chunk diversity highest and finish fastest, \
         in line with the Massoulié analysis the paper builds on."
    );
    write_output(
        &options.output_path("policies.csv"),
        &report.to_csv().to_csv_string(),
    )
}
