//! Runs every experiment of the paper in sequence (use `--quick` for a smoke-test pass).

use bmp_experiments::runner::{write_output, RunOptions};
use bmp_experiments::{fig19, fig7, paper_figures, table1, worst_case};

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();

    println!("== Table I ==");
    let table = table1::paper_table1();
    write_output(&options.output_path("table1.txt"), &table.render())?;

    println!("== Figures 1 / 2 / 5 ==");
    let figures = paper_figures::run();
    write_output(&options.output_path("paper_figures.txt"), &figures.render())?;

    println!("== Worst cases (Figures 6, 18; Theorems 6.1, 6.3) ==");
    let report = worst_case::run(options.quick);
    write_output(
        &options.output_path("worst_case.csv"),
        &report.to_csv().to_csv_string(),
    )?;

    println!("== Figure 7 ==");
    let fig7_config = if options.quick {
        fig7::Fig7Config::quick()
    } else {
        fig7::Fig7Config::default()
    };
    let fig7_result = fig7::run(fig7_config);
    write_output(
        &options.output_path("fig7.csv"),
        &fig7_result.to_csv().to_csv_string(),
    )?;

    println!("== Figure 19 ==");
    let fig19_config = if options.quick {
        fig19::Fig19Config::quick()
    } else {
        fig19::Fig19Config::default()
    };
    let fig19_result = fig19::run(&fig19_config);
    write_output(
        &options.output_path("fig19.csv"),
        &fig19_result.to_csv().to_csv_string(),
    )?;

    println!(
        "all experiments written to {}",
        options.output_dir.display()
    );
    Ok(())
}
