//! Runs the repair-vs-static churn simulation sweep: the same churn trace streamed twice
//! through the session engine, once frozen and once with the adaptive repair controller.

use bmp_experiments::parallel::default_threads;
use bmp_experiments::runner::{write_output, RunOptions};
use bmp_experiments::sim_churn_exp::run;

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let threads = default_threads();
    let report = run(options.quick, threads);
    println!("Repair-vs-static churn simulation ({threads} threads):");
    println!("receivers  trials  static goodput  repaired goodput  gain (mean)  recovery (mean)");
    for cell in &report.cells {
        let recovery = cell
            .recovery
            .as_ref()
            .map_or("n/a".to_string(), |r| format!("{:.2}", r.mean));
        println!(
            "{:>9}  {:>6}  {:>14.3}  {:>16.3}  {:>11.3}  {recovery:>15}",
            cell.receivers,
            cell.trials,
            cell.static_ratio.mean,
            cell.repaired_ratio.mean,
            cell.gain.mean,
        );
    }
    println!(
        "\nreading: goodput is delivered data per surviving receiver per time unit, as a \
         fraction of the nominal throughput; both runs replay the identical seed and churn \
         trace, so the gain column is exactly what the mid-broadcast re-solve + hot-swap buys."
    );
    write_output(
        &options.output_path("sim_churn.csv"),
        &report.to_csv().to_csv_string(),
    )
}
