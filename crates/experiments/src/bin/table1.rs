//! Regenerates Table I of the paper: the trace of Algorithm 2 (GreedyTest, T = 4) on the
//! Figure 1 instance.

use bmp_experiments::runner::{write_output, RunOptions};
use bmp_experiments::table1::paper_table1;

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let table = paper_table1();
    let rendered = table.render();
    println!("Table I — GreedyTest(T = 4) on the Figure 1 instance\n");
    println!("{rendered}");
    write_output(&options.output_path("table1.txt"), &rendered)
}
