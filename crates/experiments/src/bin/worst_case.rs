//! Regenerates the worst-case studies: Figure 18 (5/7), Theorem 6.3 family, Figure 6
//! (unbounded degree) and the Theorem 6.1 bound.

use bmp_experiments::runner::{write_output, RunOptions};
use bmp_experiments::worst_case::run;

fn main() -> std::io::Result<()> {
    let options = RunOptions::from_env();
    let report = run(options.quick);
    println!("Figure 18 sweep (epsilon, acyclic/cyclic ratio):");
    for row in &report.figure18 {
        println!("  eps = {:.4}  ratio = {:.4}", row.epsilon, row.ratio);
    }
    println!("\nTheorem 6.3 family I(alpha, k) (cyclic optimum = 1):");
    for row in &report.theorem63 {
        println!(
            "  k = {:<3} n+m = {:<5} acyclic = {:.4}  analytic bound = {:.4}",
            row.k,
            row.n + row.m,
            row.acyclic,
            row.analytic_bound
        );
    }
    println!("\nFigure 6 family (optimal cyclic schemes need source degree m):");
    for row in &report.figure6 {
        println!(
            "  m = {:<4} cyclic source degree = {:<4} lower bound = {}  acyclic throughput = {:.4}",
            row.m, row.cyclic_source_degree, row.degree_lower_bound, row.acyclic_throughput
        );
    }
    println!("\nTheorem 6.1 (open-only ratio versus 1 - 1/n):");
    for row in &report.theorem61 {
        println!(
            "  n = {:<4} ratio = {:.4} >= bound {:.4}",
            row.n, row.ratio, row.bound
        );
    }
    write_output(
        &options.output_path("worst_case.csv"),
        &report.to_csv().to_csv_string(),
    )
}
