//! Churn extension experiment: how much throughput a frozen overlay loses when a node departs,
//! and how much a linear-time recomputation recovers.
//!
//! The paper's conclusion claims the overlays are "probably not resilient to churn" but that
//! the algorithms are cheap enough to re-run. This experiment quantifies both statements on
//! random platforms (Figure 19 protocol): for each instance we remove either the *busiest
//! relay* (the receiver with the largest outdegree — the adversarial case) or a *random
//! receiver*, and we report
//!
//! * `residual / nominal` — the fraction of the nominal rate that the unchanged overlay still
//!   delivers to the survivors,
//! * `repaired / reduced optimum` — how close the re-solved overlay gets to the cyclic optimum
//!   of the surviving platform (Theorem 4.1 guarantees at least 5/7).

use crate::csvout::{telemetry_cells, telemetry_sum, CsvTable, TELEMETRY_COLUMNS};
use crate::parallel::parallel_map_with;
use crate::stats::Summary;
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::bounds::cyclic_upper_bound;
use bmp_core::churn::{degradation_tolerance, repair, residual_throughput_with};
use bmp_core::solver::{AcyclicGuardedAlgorithm, EvalCtx, SolveRecorder, Solver, Telemetry};
use bmp_platform::distribution::NamedDistribution;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which node is removed from the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepartureKind {
    /// The receiver with the largest outdegree in the computed overlay.
    BusiestRelay,
    /// A uniformly random receiver.
    RandomReceiver,
}

impl DepartureKind {
    /// Label used in CSV output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DepartureKind::BusiestRelay => "busiest-relay",
            DepartureKind::RandomReceiver => "random-receiver",
        }
    }
}

/// Result of one (instance, departure) trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnTrial {
    /// Number of receivers of the platform.
    pub receivers: usize,
    /// Departure scenario.
    pub kind: DepartureKind,
    /// Nominal acyclic throughput before the departure.
    pub nominal: f64,
    /// Throughput of the frozen overlay restricted to the survivors.
    pub residual: f64,
    /// Throughput of the re-solved overlay on the reduced platform.
    pub repaired: f64,
    /// Cyclic optimum (Lemma 5.1) of the reduced platform.
    pub reduced_optimum: f64,
    /// Dichotomic degradation tolerance of the victim before it departs: the largest
    /// fraction of its upload it can lose while the overlay still delivers 90% of the
    /// nominal rate ([`degradation_tolerance`]).
    pub degradation: f64,
    /// Evaluation cost of this trial (solve + verification + degradation probes +
    /// residual evaluation), as counted by the worker's [`EvalCtx`].
    pub telemetry: Telemetry,
}

impl ChurnTrial {
    /// `residual / nominal` (0 when the nominal throughput is 0).
    #[must_use]
    pub fn residual_ratio(&self) -> f64 {
        if self.nominal <= 0.0 {
            0.0
        } else {
            self.residual / self.nominal
        }
    }

    /// `repaired / reduced cyclic optimum` (1 when the reduced platform is degenerate).
    #[must_use]
    pub fn repaired_ratio(&self) -> f64 {
        if self.reduced_optimum <= 0.0 {
            1.0
        } else {
            self.repaired / self.reduced_optimum
        }
    }
}

/// Aggregated report over all trials of one scenario and size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnCell {
    /// Number of receivers.
    pub receivers: usize,
    /// Departure scenario.
    pub kind: DepartureKind,
    /// Summary of `residual / nominal` over the trials.
    pub residual: Summary,
    /// Summary of `repaired / reduced optimum` over the trials.
    pub repaired: Summary,
    /// Summary of the victims' degradation tolerance over the trials.
    pub degradation: Summary,
    /// Total evaluation cost of the cell's trials.
    pub telemetry: Telemetry,
}

/// Full report of the churn experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// One cell per (size, scenario) pair.
    pub cells: Vec<ChurnCell>,
}

impl ChurnReport {
    /// Renders the report as CSV, with the shared telemetry columns appended
    /// ([`TELEMETRY_COLUMNS`]) so the sweep's evaluation cost is tracked next to its
    /// results.
    #[must_use]
    pub fn to_csv(&self) -> CsvTable {
        let header: Vec<&str> = [
            "receivers",
            "departure",
            "residual_mean",
            "residual_median",
            "residual_p05",
            "repaired_mean",
            "repaired_median",
            "repaired_min",
            "degradation_mean",
            "degradation_median",
        ]
        .into_iter()
        .chain(TELEMETRY_COLUMNS)
        .collect();
        let mut table = CsvTable::new(&header);
        for cell in &self.cells {
            let mut row = vec![
                cell.receivers.to_string(),
                cell.kind.label().to_string(),
                format!("{:.6}", cell.residual.mean),
                format!("{:.6}", cell.residual.median),
                format!("{:.6}", cell.residual.p05),
                format!("{:.6}", cell.repaired.mean),
                format!("{:.6}", cell.repaired.median),
                format!("{:.6}", cell.repaired.min),
                format!("{:.6}", cell.degradation.mean),
                format!("{:.6}", cell.degradation.median),
            ];
            row.extend(telemetry_cells(&cell.telemetry));
            table.push_row(row);
        }
        table
    }
}

fn run_trial(
    ctx: &mut EvalCtx,
    receivers: usize,
    kind: DepartureKind,
    seed: u64,
) -> Option<ChurnTrial> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GeneratorConfig::new(receivers, 0.7).ok()?;
    let generator = InstanceGenerator::new(config, NamedDistribution::Unif100.build());
    let instance = generator.generate(&mut rng);
    let recorder = SolveRecorder::start(ctx);
    // The registry solver evaluates (and self-verifies) through the worker's context, so
    // the whole trial's flow cost lands in one telemetry record.
    let solution = AcyclicGuardedAlgorithm.solve(&instance, ctx).ok()?;
    if solution.throughput <= 1e-9 {
        return None;
    }
    let victim = match kind {
        DepartureKind::BusiestRelay => solution.scheme.busiest_receiver()?,
        DepartureKind::RandomReceiver => rng.gen_range(1..instance.num_nodes()),
    };
    // Performance-variation half of the paper's remark: how far the victim's upload can
    // degrade before the overlay misses 90% of the nominal rate. The probes ride the
    // scheme's dirty-edge journal through the worker context.
    let degradation =
        degradation_tolerance(&solution.scheme, victim, 0.9 * solution.throughput, ctx);
    let residual = residual_throughput_with(&solution.scheme, &[victim], ctx);
    let outcome = repair(&instance, &[victim], &AcyclicGuardedSolver::default())?;
    Some(ChurnTrial {
        receivers,
        kind,
        nominal: solution.throughput,
        residual,
        repaired: outcome.solution.throughput,
        reduced_optimum: cyclic_upper_bound(&outcome.instance),
        degradation,
        telemetry: recorder.telemetry(ctx),
    })
}

/// Runs the churn experiment. `quick` uses fewer trials and smaller platforms.
#[must_use]
pub fn run(quick: bool, threads: usize) -> ChurnReport {
    let sizes: &[usize] = if quick { &[20, 50] } else { &[20, 50, 200] };
    let trials = if quick { 20 } else { 200 };
    let mut cells = Vec::new();
    for &receivers in sizes {
        for kind in [DepartureKind::BusiestRelay, DepartureKind::RandomReceiver] {
            let seeds: Vec<u64> = (0..trials)
                .map(|t| t as u64 * 7919 + receivers as u64)
                .collect();
            // One EvalCtx per worker: the flow workspace is reused across that worker's
            // whole chunk instead of leaning on the scheme.rs thread-local. Its flow
            // fan-out never stacks on the sweep's own (`eval_parallelism`).
            let worker_ctx = || {
                let mut ctx = EvalCtx::new();
                ctx.set_parallelism(crate::parallel::eval_parallelism(threads));
                ctx
            };
            let trials: Vec<ChurnTrial> =
                parallel_map_with(&seeds, threads, worker_ctx, |ctx, &seed| {
                    run_trial(ctx, receivers, kind, seed)
                })
                .into_iter()
                .flatten()
                .collect();
            let residual: Vec<f64> = trials.iter().map(ChurnTrial::residual_ratio).collect();
            let repaired: Vec<f64> = trials.iter().map(ChurnTrial::repaired_ratio).collect();
            let degradation: Vec<f64> = trials.iter().map(|t| t.degradation).collect();
            if let (Some(residual), Some(repaired), Some(degradation)) = (
                Summary::of(&residual),
                Summary::of(&repaired),
                Summary::of(&degradation),
            ) {
                cells.push(ChurnCell {
                    receivers,
                    kind,
                    residual,
                    repaired,
                    degradation,
                    telemetry: telemetry_sum(trials.iter().map(|t| &t.telemetry)),
                });
            }
        }
    }
    ChurnReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_every_cell() {
        let report = run(true, 2);
        assert_eq!(report.cells.len(), 4); // 2 sizes × 2 scenarios
        for cell in &report.cells {
            // The repaired overlay is the solver's optimum on the reduced platform: at least
            // 5/7 of its cyclic optimum, and never above it.
            assert!(cell.repaired.min >= 5.0 / 7.0 - 1e-6, "{cell:?}");
            assert!(cell.repaired.max <= 1.0 + 1e-6, "{cell:?}");
            // Residual throughput cannot exceed the nominal throughput.
            assert!(cell.residual.max <= 1.0 + 1e-6, "{cell:?}");
            assert!(cell.residual.min >= -1e-9);
            // Degradation tolerances are fractions, and every trial evaluated flows.
            assert!(cell.degradation.min >= -1e-9, "{cell:?}");
            assert!(cell.degradation.max <= 1.0 + 1e-9, "{cell:?}");
            assert!(cell.telemetry.flow_solves > 0, "{cell:?}");
            assert!(cell.telemetry.bisection_iters > 0, "{cell:?}");
        }
        // The degradation probes re-score near-identical schemes: across the report the
        // journal fast path must have fired — unless the operator kill switch disabled
        // it process-wide (the CI matrix runs this suite with BMP_DISABLE_JOURNAL=1, and
        // the sweep's per-worker contexts honour it by design). A fresh context reports
        // the kill switch's verdict, so the env parsing stays in one place.
        if EvalCtx::new().journal_enabled() {
            let total: u64 = report
                .cells
                .iter()
                .map(|c| c.telemetry.rescans_skipped)
                .sum();
            assert!(total > 0, "no journaled evaluation in the whole sweep");
        }
    }

    #[test]
    fn busiest_relay_hurts_at_least_as_much_as_a_random_receiver_on_average() {
        let report = run(true, 2);
        for &receivers in &[20usize, 50] {
            let busiest = report
                .cells
                .iter()
                .find(|c| c.receivers == receivers && c.kind == DepartureKind::BusiestRelay)
                .unwrap();
            let random = report
                .cells
                .iter()
                .find(|c| c.receivers == receivers && c.kind == DepartureKind::RandomReceiver)
                .unwrap();
            assert!(
                busiest.residual.mean <= random.residual.mean + 0.05,
                "busiest {} vs random {}",
                busiest.residual.mean,
                random.residual.mean
            );
        }
    }

    #[test]
    fn csv_has_one_row_per_cell_with_telemetry_columns() {
        let report = run(true, 1);
        let csv = report.to_csv().to_csv_string();
        assert_eq!(csv.lines().count(), report.cells.len() + 1);
        assert!(csv.starts_with("receivers,departure"));
        let header = csv.lines().next().unwrap();
        for column in TELEMETRY_COLUMNS {
            assert!(header.contains(column), "missing column {column}: {header}");
        }
        assert!(header.contains("degradation_mean"));
        assert!(csv.contains("busiest-relay"));
        assert!(csv.contains("random-receiver"));
    }

    #[test]
    fn trial_ratios_handle_degenerate_inputs() {
        let trial = ChurnTrial {
            receivers: 5,
            kind: DepartureKind::RandomReceiver,
            nominal: 0.0,
            residual: 0.0,
            repaired: 1.0,
            reduced_optimum: 0.0,
            degradation: 1.0,
            telemetry: Telemetry::default(),
        };
        assert_eq!(trial.residual_ratio(), 0.0);
        assert_eq!(trial.repaired_ratio(), 1.0);
    }
}
