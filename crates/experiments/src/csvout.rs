//! Minimal CSV writer used by the experiment binaries, plus the shared telemetry
//! column convention: every experiment that evaluates flows through a
//! [`bmp_core::solver::EvalCtx`] appends [`TELEMETRY_COLUMNS`] to its header and renders
//! the aggregated counters with [`telemetry_cells`], so the cost of a sweep (flow
//! solves, dichotomic probes, journal fast-path hits, wall time) is visible next to its
//! results instead of only in ad-hoc logs.

use bmp_core::solver::Telemetry;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Column names shared by every experiment CSV that reports evaluation telemetry.
pub const TELEMETRY_COLUMNS: [&str; 5] = [
    "flow_solves",
    "bisection_iters",
    "rescans_skipped",
    "flows_warm_started",
    "wall_time_ms",
];

/// Renders `telemetry` as one cell per entry of [`TELEMETRY_COLUMNS`].
#[must_use]
pub fn telemetry_cells(telemetry: &Telemetry) -> Vec<String> {
    vec![
        telemetry.flow_solves.to_string(),
        telemetry.bisection_iters.to_string(),
        telemetry.rescans_skipped.to_string(),
        telemetry.flows_warm_started.to_string(),
        format!("{:.3}", telemetry.wall_time.as_secs_f64() * 1e3),
    ]
}

/// Sums per-trial telemetries into one aggregate (counters add, wall times add).
#[must_use]
pub fn telemetry_sum<'a>(telemetries: impl IntoIterator<Item = &'a Telemetry>) -> Telemetry {
    let mut total = Telemetry::default();
    for t in telemetries {
        total.flow_solves += t.flow_solves;
        total.bisection_iters += t.bisection_iters;
        total.rescans_skipped += t.rescans_skipped;
        total.edges_patched += t.edges_patched;
        total.probes_speculated += t.probes_speculated;
        total.probes_wasted += t.probes_wasted;
        total.flows_warm_started += t.flows_warm_started;
        total.augment_saved += t.augment_saved;
        total.excess_drained += t.excess_drained;
        total.wall_time += t.wall_time;
    }
    total
}

/// An in-memory CSV table with a fixed header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        CsvTable {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity does not match the header"
        );
        self.rows.push(cells);
    }

    /// Appends a row of numeric cells (formatted with 6 significant decimals).
    pub fn push_numeric_row(&mut self, cells: &[f64]) {
        self.push_row(cells.iter().map(|v| format!("{v:.6}")).collect());
    }

    /// Renders the table as a CSV string (comma separated, `\n` line endings, cells containing
    /// commas or quotes are quoted).
    #[must_use]
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        write_line(&mut out, &self.header);
        for row in &self.rows {
            write_line(&mut out, row);
        }
        out
    }

    /// Writes the table to a file, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv_string())
    }
}

fn write_line(out: &mut String, cells: &[String]) {
    for (index, cell) in cells.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            let escaped = cell.replace('"', "\"\"");
            let _ = write!(out, "\"{escaped}\"");
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut table = CsvTable::new(&["n", "m", "ratio"]);
        table.push_numeric_row(&[10.0, 5.0, 0.987654321]);
        table.push_row(vec!["1".into(), "2".into(), "with, comma".into()]);
        let csv = table.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,m,ratio");
        assert!(lines[1].starts_with("10.000000,5.000000,0.987654"));
        assert_eq!(lines[2], "1,2,\"with, comma\"");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn quotes_are_escaped() {
        let mut table = CsvTable::new(&["text"]);
        table.push_row(vec!["say \"hi\"".into()]);
        assert!(table.to_csv_string().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut table = CsvTable::new(&["a", "b"]);
        table.push_row(vec!["1".into()]);
    }

    #[test]
    fn telemetry_cells_match_the_shared_columns() {
        let telemetry = Telemetry {
            flow_solves: 12,
            bisection_iters: 7,
            rescans_skipped: 5,
            edges_patched: 9,
            probes_speculated: 3,
            probes_wasted: 1,
            flows_warm_started: 6,
            augment_saved: 4,
            excess_drained: 2,
            wall_time: std::time::Duration::from_millis(4),
        };
        let cells = telemetry_cells(&telemetry);
        assert_eq!(cells.len(), TELEMETRY_COLUMNS.len());
        assert_eq!(cells[0], "12");
        assert_eq!(cells[1], "7");
        assert_eq!(cells[2], "5");
        assert_eq!(cells[3], "6");
        assert_eq!(cells[4], "4.000");
        let total = telemetry_sum([&telemetry, &telemetry]);
        assert_eq!(total.flow_solves, 24);
        assert_eq!(total.edges_patched, 18);
        assert_eq!(total.flows_warm_started, 12);
        assert_eq!(total.augment_saved, 8);
        assert_eq!(total.excess_drained, 4);
        assert_eq!(total.wall_time, std::time::Duration::from_millis(8));
        // A table built with the shared columns accepts the rendered cells.
        let mut table = CsvTable::new(
            &["cell"]
                .iter()
                .copied()
                .chain(TELEMETRY_COLUMNS)
                .collect::<Vec<_>>(),
        );
        let mut row = vec!["x".to_string()];
        row.extend(telemetry_cells(&total));
        table.push_row(row);
        assert!(table.to_csv_string().contains("rescans_skipped"));
    }

    #[test]
    fn write_to_file() {
        let mut table = CsvTable::new(&["x"]);
        table.push_numeric_row(&[1.0]);
        let dir = std::env::temp_dir().join("bmp_csv_test");
        let path = dir.join("nested").join("out.csv");
        table.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x\n1.000000"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
