//! Minimal CSV writer used by the experiment binaries.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory CSV table with a fixed header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        CsvTable {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity does not match the header"
        );
        self.rows.push(cells);
    }

    /// Appends a row of numeric cells (formatted with 6 significant decimals).
    pub fn push_numeric_row(&mut self, cells: &[f64]) {
        self.push_row(cells.iter().map(|v| format!("{v:.6}")).collect());
    }

    /// Renders the table as a CSV string (comma separated, `\n` line endings, cells containing
    /// commas or quotes are quoted).
    #[must_use]
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        write_line(&mut out, &self.header);
        for row in &self.rows {
            write_line(&mut out, row);
        }
        out
    }

    /// Writes the table to a file, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv_string())
    }
}

fn write_line(out: &mut String, cells: &[String]) {
    for (index, cell) in cells.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            let escaped = cell.replace('"', "\"\"");
            let _ = write!(out, "\"{escaped}\"");
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut table = CsvTable::new(&["n", "m", "ratio"]);
        table.push_numeric_row(&[10.0, 5.0, 0.987654321]);
        table.push_row(vec!["1".into(), "2".into(), "with, comma".into()]);
        let csv = table.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,m,ratio");
        assert!(lines[1].starts_with("10.000000,5.000000,0.987654"));
        assert_eq!(lines[2], "1,2,\"with, comma\"");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn quotes_are_escaped() {
        let mut table = CsvTable::new(&["text"]);
        table.push_row(vec!["say \"hi\"".into()]);
        assert!(table.to_csv_string().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut table = CsvTable::new(&["a", "b"]);
        table.push_row(vec!["1".into()]);
    }

    #[test]
    fn write_to_file() {
        let mut table = CsvTable::new(&["x"]);
        table.push_numeric_row(&[1.0]);
        let dir = std::env::temp_dir().join("bmp_csv_test");
        let path = dir.join("nested").join("out.csv");
        table.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x\n1.000000"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
