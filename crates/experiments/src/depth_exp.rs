//! Depth / delay extension experiment.
//!
//! The conclusion of the paper lists "optimizing the depth of produced schemes in order to
//! minimize delays" as future work. This experiment measures the depth profile (overlay hops
//! from the source) of three families of schemes on random platforms:
//!
//! * the optimal-throughput acyclic scheme found by Algorithm 2 + dichotomic search,
//! * the scheme built from the best regular ω-word (ω1/ω2),
//! * the same ω-word scheme throttled to 95% of its throughput (showing that giving up a
//!   little rate buys shallower, lower-delay overlays).
//!
//! Together with the broadcast-tree decomposition (`bmp-trees`) this quantifies the
//! throughput-versus-delay trade-off left open by the paper.

use crate::csvout::CsvTable;
use crate::parallel::parallel_map_with;
use crate::stats::{mean, Summary};
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::depth::depth_profile;
use bmp_core::omega::{best_omega_throughput, omega_word, OmegaChoice};
use bmp_core::solver::EvalCtx;
use bmp_core::word::optimal_throughput_for_word;
use bmp_platform::distribution::NamedDistribution;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Depth measurements of one scheme family on one instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthMeasurement {
    /// Throughput of the scheme (absolute).
    pub throughput: f64,
    /// Largest hop distance from the source to a receiver.
    pub max_hops: usize,
    /// Mean hop distance over the receivers.
    pub mean_hops: f64,
}

/// One trial: the three scheme families measured on the same instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthTrial {
    /// Number of receivers.
    pub receivers: usize,
    /// Optimal acyclic scheme.
    pub optimal: DepthMeasurement,
    /// Best regular ω-word scheme at its full throughput.
    pub omega: DepthMeasurement,
    /// Best regular ω-word scheme throttled to 95% of its throughput.
    pub omega_throttled: DepthMeasurement,
}

/// Aggregated cell of the report (one platform size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthCell {
    /// Number of receivers.
    pub receivers: usize,
    /// Number of trials aggregated.
    pub trials: usize,
    /// Mean of the maximum hop count, per scheme family.
    pub optimal_max_hops: f64,
    /// Mean of the maximum hop count for the ω scheme.
    pub omega_max_hops: f64,
    /// Mean of the maximum hop count for the throttled ω scheme.
    pub throttled_max_hops: f64,
    /// Mean ratio `ω throughput / optimal throughput`.
    pub omega_throughput_ratio: f64,
    /// Summary of the optimal scheme's mean hop distance.
    pub optimal_mean_hops: Summary,
}

/// Full report of the depth experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthReport {
    /// One cell per platform size.
    pub cells: Vec<DepthCell>,
}

impl DepthReport {
    /// Renders the report as CSV.
    #[must_use]
    pub fn to_csv(&self) -> CsvTable {
        let mut table = CsvTable::new(&[
            "receivers",
            "trials",
            "optimal_max_hops",
            "omega_max_hops",
            "throttled_max_hops",
            "omega_throughput_ratio",
            "optimal_mean_hops_median",
        ]);
        for cell in &self.cells {
            table.push_row(vec![
                cell.receivers.to_string(),
                cell.trials.to_string(),
                format!("{:.3}", cell.optimal_max_hops),
                format!("{:.3}", cell.omega_max_hops),
                format!("{:.3}", cell.throttled_max_hops),
                format!("{:.6}", cell.omega_throughput_ratio),
                format!("{:.3}", cell.optimal_mean_hops.median),
            ]);
        }
        table
    }
}

/// Measures a scheme's depth profile, after certifying through the worker's context that
/// it actually delivers its claimed throughput (no hidden thread-local: every flow
/// evaluation of the sweep goes through the explicit per-worker [`EvalCtx`]).
fn measure(
    ctx: &mut EvalCtx,
    scheme: &bmp_core::scheme::BroadcastScheme,
    throughput: f64,
) -> Option<DepthMeasurement> {
    bmp_core::solver::certify_throughput(ctx, scheme, throughput);
    let profile = depth_profile(scheme);
    Some(DepthMeasurement {
        throughput,
        max_hops: profile.max_hops()?,
        mean_hops: profile.mean_hops()?,
    })
}

fn run_trial(ctx: &mut EvalCtx, receivers: usize, seed: u64) -> Option<DepthTrial> {
    let config = GeneratorConfig::new(receivers, 0.7).ok()?;
    let generator = InstanceGenerator::new(config, NamedDistribution::Unif100.build());
    let instance = generator.generate(&mut StdRng::seed_from_u64(seed));
    let solver = AcyclicGuardedSolver::default();

    let solution = solver.solve(&instance);
    if solution.throughput <= 1e-9 {
        return None;
    }
    let optimal = measure(ctx, &solution.scheme, solution.throughput)?;

    let (_, choice) = best_omega_throughput(&instance, 1e-9);
    let word = omega_word(&instance, choice);
    let omega_throughput = optimal_throughput_for_word(&instance, &word, 1e-10);
    if omega_throughput <= 1e-9 {
        return None;
    }
    // Back off marginally from the word's optimum so the feasibility test is unambiguous.
    let full = omega_throughput * (1.0 - 1e-7);
    let omega_scheme = solver.scheme_for_word(&instance, full, &word).ok()?;
    let omega = measure(ctx, &omega_scheme, full)?;

    let throttled_target = omega_throughput * 0.95;
    let throttled_scheme = solver
        .scheme_for_word(&instance, throttled_target, &word)
        .ok()?;
    let omega_throttled = measure(ctx, &throttled_scheme, throttled_target)?;

    Some(DepthTrial {
        receivers,
        optimal,
        omega,
        omega_throttled,
    })
}

/// Runs the depth experiment. `quick` uses fewer trials and smaller platforms.
#[must_use]
pub fn run(quick: bool, threads: usize) -> DepthReport {
    let sizes: &[usize] = if quick {
        &[15, 40]
    } else {
        &[15, 40, 100, 300]
    };
    let trials = if quick { 15 } else { 100 };
    let mut cells = Vec::new();
    for &receivers in sizes {
        let seeds: Vec<u64> = (0..trials)
            .map(|t| t as u64 * 6151 + receivers as u64)
            .collect();
        // One EvalCtx per worker (the churn_exp convention), reused across the chunk;
        // its flow fan-out is 1 inside a parallel sweep (the outer map owns the cores)
        // and the pool-backed auto heuristic when the sweep runs sequentially.
        let worker_ctx = || {
            let mut ctx = EvalCtx::new();
            ctx.set_parallelism(crate::parallel::eval_parallelism(threads));
            ctx
        };
        let results: Vec<DepthTrial> =
            parallel_map_with(&seeds, threads, worker_ctx, |ctx, &seed| {
                run_trial(ctx, receivers, seed)
            })
            .into_iter()
            .flatten()
            .collect();
        if results.is_empty() {
            continue;
        }
        let optimal_mean: Vec<f64> = results.iter().map(|t| t.optimal.mean_hops).collect();
        cells.push(DepthCell {
            receivers,
            trials: results.len(),
            optimal_max_hops: mean(
                &results
                    .iter()
                    .map(|t| t.optimal.max_hops as f64)
                    .collect::<Vec<_>>(),
            ),
            omega_max_hops: mean(
                &results
                    .iter()
                    .map(|t| t.omega.max_hops as f64)
                    .collect::<Vec<_>>(),
            ),
            throttled_max_hops: mean(
                &results
                    .iter()
                    .map(|t| t.omega_throttled.max_hops as f64)
                    .collect::<Vec<_>>(),
            ),
            omega_throughput_ratio: mean(
                &results
                    .iter()
                    .map(|t| t.omega.throughput / t.optimal.throughput)
                    .collect::<Vec<_>>(),
            ),
            optimal_mean_hops: Summary::of(&optimal_mean).expect("non-empty"),
        });
    }
    DepthReport { cells }
}

/// The ω-word choice used by the depth experiment for a given instance (exposed for tests).
#[must_use]
pub fn omega_choice_used(instance: &bmp_platform::Instance) -> OmegaChoice {
    best_omega_throughput(instance, 1e-9).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_platform::paper::figure1;

    #[test]
    fn quick_run_produces_cells_with_sane_values() {
        let report = run(true, 2);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.trials > 0);
            // Depths are at least one hop and bounded by the number of nodes.
            assert!(cell.optimal_max_hops >= 1.0);
            assert!(cell.optimal_max_hops <= cell.receivers as f64 + 1.0);
            assert!(cell.omega_max_hops >= 1.0);
            // The ω word never beats the optimum.
            assert!(cell.omega_throughput_ratio <= 1.0 + 1e-6);
            assert!(cell.omega_throughput_ratio >= 5.0 / 7.0 - 0.05);
        }
    }

    #[test]
    fn single_trial_is_consistent() {
        let mut ctx = EvalCtx::new();
        let trial = run_trial(&mut ctx, 20, 3).expect("trial runs");
        assert!(ctx.flow_solves() > 0, "trial must evaluate through the ctx");
        assert_eq!(trial.receivers, 20);
        assert!(trial.omega.throughput <= trial.optimal.throughput * (1.0 + 1e-6));
        assert!(trial.omega_throttled.throughput < trial.omega.throughput);
        assert!(trial.optimal.mean_hops <= trial.optimal.max_hops as f64);
    }

    #[test]
    fn csv_rendering() {
        let report = run(true, 1);
        let csv = report.to_csv().to_csv_string();
        assert!(csv.starts_with("receivers,trials"));
        assert_eq!(csv.lines().count(), report.cells.len() + 1);
    }

    #[test]
    fn omega_choice_is_exposed() {
        // Just exercises the helper on the running example.
        let _ = omega_choice_used(&figure1());
    }
}
