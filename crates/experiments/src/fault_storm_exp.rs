//! Fault-storm survival sweep: the hardened repair pipeline under scripted failures.
//!
//! [`crate::sim_churn_exp`] measures what the repair controller buys under clean churn.
//! This sweep measures what it *survives*: every trial installs a seeded
//! [`bmp_sim::FaultPlan`] storm — injected solver failures, a forced verification
//! failure, a degradation-probe timeout, an armed flow-worker panic — on the
//! controller's evaluation context, merges a seeded churn storm (depart/rejoin waves at
//! named instants) into the load-bearing departure trace, and runs the session engine
//! twice under the same seed: the static baseline and the hardened controller
//! (retry/backoff budget, registry fallback chain, graceful degradation).
//!
//! The emitted telemetry is about *survival and recovery*, not just goodput: how many
//! repaired sessions delivered the full message to every survivor, how many ended in
//! the degraded terminal state, how many faults actually fired, how many solve attempts
//! the retry/fallback machinery consumed, and how fast the data plane recovered after
//! each hot-swap. The fault-matrix CI job overrides the per-trial storm through
//! `BMP_FAULT_PLAN` ([`bmp_sim::FaultPlan::from_env`]).

use crate::csvout::{telemetry_cells, telemetry_sum, CsvTable, TELEMETRY_COLUMNS};
use crate::parallel::parallel_map_with;
use crate::stats::Summary;
use bmp_core::solver::{AcyclicGuardedAlgorithm, EvalCtx, SolveRecorder, Solver, Telemetry};
use bmp_platform::distribution::NamedDistribution;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_sim::{
    merge_schedules, run_adaptive, ChurnSchedule, FaultPlan, Overlay, RepairController, SimConfig,
    StaticPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one (instance, fault storm) trial: the same trace simulated twice.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStormTrial {
    /// Number of receivers of the platform.
    pub receivers: usize,
    /// Nominal throughput of the solved overlay.
    pub nominal: f64,
    /// Delivered goodput of the static run, as a fraction of nominal.
    pub static_ratio: f64,
    /// Delivered goodput of the repaired (faulted) run, as a fraction of nominal.
    pub repaired_ratio: f64,
    /// Whether every surviving receiver of the repaired run completed the broadcast.
    pub survived: bool,
    /// Whether the controller ended the run in the graceful-degradation state.
    pub degraded: bool,
    /// Injected faults that actually fired during the repaired run.
    pub faults_fired: u64,
    /// Solve attempts the retry/backoff + fallback machinery consumed.
    pub repair_attempts: u32,
    /// Time from the last hot-swap to the first starvation-free round.
    pub recovery_time: Option<f64>,
    /// Evaluation cost: the solve plus the controller's probes and repairs.
    pub telemetry: Telemetry,
}

/// Aggregate over the trials of one platform size.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStormCell {
    /// Number of receivers.
    pub receivers: usize,
    /// Trials that contributed (solvable instance, load-bearing victim).
    pub trials: usize,
    /// Trials whose repaired run delivered the full message to every survivor.
    pub survived: usize,
    /// Trials that ended in the graceful-degradation terminal state.
    pub degraded: usize,
    /// Summary of the static goodput ratios.
    pub static_ratio: Summary,
    /// Summary of the repaired goodput ratios.
    pub repaired_ratio: Summary,
    /// Summary of `repaired − static` goodput-ratio gains.
    pub gain: Summary,
    /// Summary of the recovery times (trials that recovered).
    pub recovery: Option<Summary>,
    /// Total injected faults fired across the cell.
    pub faults_fired: u64,
    /// Total solve attempts consumed by retries and fallbacks across the cell.
    pub repair_attempts: u64,
    /// Total evaluation cost of the cell.
    pub telemetry: Telemetry,
}

/// Full report of the fault-storm survival sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStormReport {
    /// One cell per platform size.
    pub cells: Vec<FaultStormCell>,
}

impl FaultStormReport {
    /// Renders the report as CSV with the shared telemetry columns appended.
    #[must_use]
    pub fn to_csv(&self) -> CsvTable {
        let header: Vec<&str> = [
            "receivers",
            "trials",
            "survived",
            "degraded",
            "static_goodput_mean",
            "repaired_goodput_mean",
            "gain_mean",
            "gain_min",
            "recovery_mean",
            "recovery_max",
            "faults_fired",
            "repair_attempts",
        ]
        .into_iter()
        .chain(TELEMETRY_COLUMNS)
        .collect();
        let mut table = CsvTable::new(&header);
        for cell in &self.cells {
            let (recovery_mean, recovery_max) = match &cell.recovery {
                Some(summary) => (
                    format!("{:.4}", summary.mean),
                    format!("{:.4}", summary.max),
                ),
                None => ("n/a".to_string(), "n/a".to_string()),
            };
            let mut row = vec![
                cell.receivers.to_string(),
                cell.trials.to_string(),
                cell.survived.to_string(),
                cell.degraded.to_string(),
                format!("{:.6}", cell.static_ratio.mean),
                format!("{:.6}", cell.repaired_ratio.mean),
                format!("{:.6}", cell.gain.mean),
                format!("{:.6}", cell.gain.min),
                recovery_mean,
                recovery_max,
                cell.faults_fired.to_string(),
                cell.repair_attempts.to_string(),
            ];
            row.extend(telemetry_cells(&cell.telemetry));
            table.push_row(row);
        }
        table
    }
}

/// Floor fraction below which the controller repairs (same bar as the clean churn
/// sweep, so the two reports compare directly).
const FLOOR_FRACTION: f64 = 0.9;

fn run_trial(
    ctx: &mut EvalCtx,
    receivers: usize,
    num_chunks: usize,
    seed: u64,
) -> Option<FaultStormTrial> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GeneratorConfig::new(receivers, 0.7).ok()?;
    let generator = InstanceGenerator::new(config, NamedDistribution::Unif100.build());
    let instance = generator.generate(&mut rng);
    let recorder = SolveRecorder::start(ctx);
    let solution = AcyclicGuardedAlgorithm.solve(&instance, ctx).ok()?;
    if solution.throughput <= 1e-9 {
        return None;
    }
    let nominal = solution.throughput;
    let victim = solution.scheme.busiest_receiver()?;
    let overlay = Overlay::from_scheme(&solution.scheme);

    // The storm: the CI matrix's BMP_FAULT_PLAN override when set, a per-trial seeded
    // storm otherwise. The churn trace is the load-bearing departure of the clean sweep
    // plus the plan's seeded depart/rejoin waves.
    let plan = FaultPlan::from_env().unwrap_or_else(|| FaultPlan::storm(seed));
    let sim_config = SimConfig {
        num_chunks,
        max_rounds: 40_000,
        seed,
        ..SimConfig::default()
    }
    .scaled_to(nominal, 2.0);
    let half_time = 0.5 * num_chunks as f64 * sim_config.chunk_size / nominal;
    let storm_churn = plan.churn_storm(
        instance.num_nodes(),
        1.2 * half_time,
        (0.15 * half_time).max(sim_config.round_duration),
        2,
    );
    let churn = merge_schedules(
        &ChurnSchedule::departures_at(half_time, &[victim]),
        &storm_churn,
    );

    let static_run = run_adaptive(
        overlay.clone(),
        sim_config,
        &churn,
        &mut StaticPolicy,
        nominal,
    );
    let mut controller = RepairController::new(
        instance.clone(),
        solution.scheme.clone(),
        nominal,
        FLOOR_FRACTION,
    );
    // Pooled residual evaluation gives the armed worker panic a pool to land in;
    // containment recomputes the exact value, so the trial stays deterministic.
    controller.set_parallelism(2);
    plan.install(controller.ctx_mut());
    let repaired_run = run_adaptive(overlay, sim_config, &churn, &mut controller, nominal);

    let faults_fired = controller
        .ctx()
        .injected_faults()
        .map_or(0, bmp_core::InjectedFaults::fired);
    let repair_attempts = controller.decisions().iter().map(|d| d.attempts).sum();
    let survived = repaired_run
        .survivors
        .iter()
        .all(|&node| repaired_run.report.completion_time[node].is_some());
    let mut telemetry = recorder.telemetry(ctx);
    let controller_ctx = controller.ctx();
    telemetry.flow_solves += controller_ctx.flow_solves();
    telemetry.bisection_iters += controller_ctx.bisection_iters();
    telemetry.rescans_skipped += controller_ctx.rescans_skipped();
    telemetry.edges_patched += controller_ctx.edges_patched();
    Some(FaultStormTrial {
        receivers,
        nominal,
        static_ratio: static_run.goodput_vs_nominal(),
        repaired_ratio: repaired_run.goodput_vs_nominal(),
        survived,
        degraded: controller.is_degraded(),
        faults_fired,
        repair_attempts,
        recovery_time: repaired_run.recovery_time(),
        telemetry,
    })
}

/// Runs the sweep. `quick` uses fewer trials, smaller platforms and shorter messages.
#[must_use]
pub fn run(quick: bool, threads: usize) -> FaultStormReport {
    let sizes: &[usize] = if quick { &[12, 24] } else { &[20, 50, 100] };
    let trials = if quick { 5 } else { 30 };
    let num_chunks = if quick { 120 } else { 300 };
    let mut cells = Vec::new();
    for &receivers in sizes {
        let seeds: Vec<u64> = (0..trials)
            .map(|t| t as u64 * 7919 + receivers as u64)
            .collect();
        let results: Vec<FaultStormTrial> =
            parallel_map_with(&seeds, threads, EvalCtx::new, |ctx, &seed| {
                run_trial(ctx, receivers, num_chunks, seed)
            })
            .into_iter()
            .flatten()
            .collect();
        let static_ratio: Vec<f64> = results.iter().map(|t| t.static_ratio).collect();
        let repaired_ratio: Vec<f64> = results.iter().map(|t| t.repaired_ratio).collect();
        let gain: Vec<f64> = results
            .iter()
            .map(|t| t.repaired_ratio - t.static_ratio)
            .collect();
        let recovery: Vec<f64> = results.iter().filter_map(|t| t.recovery_time).collect();
        if let (Some(static_ratio), Some(repaired_ratio), Some(gain)) = (
            Summary::of(&static_ratio),
            Summary::of(&repaired_ratio),
            Summary::of(&gain),
        ) {
            cells.push(FaultStormCell {
                receivers,
                trials: results.len(),
                survived: results.iter().filter(|t| t.survived).count(),
                degraded: results.iter().filter(|t| t.degraded).count(),
                static_ratio,
                repaired_ratio,
                gain,
                recovery: Summary::of(&recovery),
                faults_fired: results.iter().map(|t| t.faults_fired).sum(),
                repair_attempts: results.iter().map(|t| u64::from(t.repair_attempts)).sum(),
                telemetry: telemetry_sum(results.iter().map(|t| &t.telemetry)),
            });
        }
    }
    // Storm plans arm one worker panic per trial; panics that never found a pooled
    // evaluation to land in must not leak into whatever runs next in this process.
    bmp_flow::disarm_worker_panics();
    FaultStormReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_survives_the_storm_and_beats_static() {
        let report = run(true, 2);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.trials > 0, "{cell:?}");
            // Survival: the hardened pipeline keeps delivering through injected solver
            // failures, probe timeouts and worker panics.
            assert!(
                cell.survived > 0,
                "no repaired session survived the storm at n = {}",
                cell.receivers
            );
            assert!(
                cell.repaired_ratio.mean > cell.static_ratio.mean,
                "repair {} does not beat static {} under the storm at n = {}",
                cell.repaired_ratio.mean,
                cell.static_ratio.mean,
                cell.receivers
            );
            // The storm actually happened: faults fired and the retry/fallback
            // machinery consumed attempts beyond one-per-decision.
            assert!(cell.faults_fired > 0, "{cell:?}");
            assert!(cell.repair_attempts as usize > cell.trials, "{cell:?}");
            assert!(cell.telemetry.flow_solves > 0);
        }
    }

    #[test]
    fn csv_has_one_row_per_cell_with_survival_columns() {
        let report = run(true, 2);
        let csv = report.to_csv().to_csv_string();
        assert_eq!(csv.lines().count(), report.cells.len() + 1);
        let header = csv.lines().next().unwrap();
        assert!(header.starts_with("receivers,trials,survived,degraded"));
        for column in ["faults_fired", "repair_attempts", "recovery_mean"] {
            assert!(header.contains(column), "missing column {column}: {header}");
        }
        for column in TELEMETRY_COLUMNS {
            assert!(header.contains(column), "missing column {column}: {header}");
        }
    }
}
