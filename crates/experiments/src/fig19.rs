//! Figure 19: average acyclic/cyclic throughput ratio on randomly generated instances.
//!
//! For every combination of bandwidth distribution, open-node probability `p` and instance
//! size, the paper generates 1000 random instances (source bandwidth pinned to the cyclic
//! optimum) and reports, normalised by the optimal cyclic throughput:
//!
//! * the optimal acyclic throughput (boxplots),
//! * the best of the two regular words `ω1`/`ω2` (blue curve),
//! * the single word selected by the Theorem 6.2 case analysis (red curve).

use crate::csvout::CsvTable;
use crate::parallel::parallel_map_with;
use crate::stats::Summary;
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::bounds::cyclic_upper_bound;
use bmp_core::omega::{best_omega_throughput, theorem_word_throughput};
use bmp_core::solver::EvalCtx;
use bmp_platform::distribution::NamedDistribution;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the Figure 19 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig19Config {
    /// Bandwidth distributions to explore (the paper uses all six).
    pub distributions: Vec<NamedDistribution>,
    /// Open-node probabilities (the paper uses 0.1, 0.5, 0.7, 0.9).
    pub open_probabilities: Vec<f64>,
    /// Instance sizes, i.e. numbers of receivers (the paper uses 10, 100, 1000).
    pub sizes: Vec<usize>,
    /// Number of random instances per cell (the paper uses 1000).
    pub instances_per_cell: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of worker threads.
    pub threads: usize,
}

impl Default for Fig19Config {
    fn default() -> Self {
        Fig19Config {
            distributions: NamedDistribution::all().to_vec(),
            open_probabilities: vec![0.1, 0.5, 0.7, 0.9],
            sizes: vec![10, 100, 1000],
            instances_per_cell: 1000,
            seed: 0xF19,
            threads: crate::parallel::default_threads(),
        }
    }
}

impl Fig19Config {
    /// A reduced configuration for smoke tests and quick previews.
    #[must_use]
    pub fn quick() -> Self {
        Fig19Config {
            distributions: vec![NamedDistribution::Unif100, NamedDistribution::PLab],
            open_probabilities: vec![0.5, 0.9],
            sizes: vec![10, 50],
            instances_per_cell: 40,
            ..Fig19Config::default()
        }
    }
}

/// Ratios of one random instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceRatios {
    /// Optimal acyclic throughput over cyclic optimum.
    pub optimal_acyclic: f64,
    /// Best-of-`ω1`/`ω2` throughput over cyclic optimum.
    pub best_omega: f64,
    /// Theorem-word throughput over cyclic optimum.
    pub theorem_word: f64,
}

/// Aggregated results of one `(distribution, p, size)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig19Cell {
    /// Distribution label.
    pub distribution: &'static str,
    /// Open-node probability.
    pub open_probability: f64,
    /// Number of receivers per instance.
    pub size: usize,
    /// Boxplot summary of the optimal acyclic ratio.
    pub optimal_acyclic: Summary,
    /// Boxplot summary of the best-omega ratio.
    pub best_omega: Summary,
    /// Boxplot summary of the theorem-word ratio.
    pub theorem_word: Summary,
}

/// Full result of the Figure 19 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig19Result {
    /// One aggregated entry per `(distribution, p, size)` cell.
    pub cells: Vec<Fig19Cell>,
}

impl Fig19Result {
    /// Renders the aggregate as a CSV table.
    #[must_use]
    pub fn to_csv(&self) -> CsvTable {
        let mut table = CsvTable::new(&[
            "distribution",
            "p",
            "size",
            "acyclic_mean",
            "acyclic_median",
            "acyclic_q1",
            "acyclic_q3",
            "acyclic_p05",
            "acyclic_p95",
            "best_omega_mean",
            "theorem_word_mean",
        ]);
        for cell in &self.cells {
            table.push_row(vec![
                cell.distribution.to_string(),
                format!("{}", cell.open_probability),
                format!("{}", cell.size),
                format!("{:.6}", cell.optimal_acyclic.mean),
                format!("{:.6}", cell.optimal_acyclic.median),
                format!("{:.6}", cell.optimal_acyclic.q1),
                format!("{:.6}", cell.optimal_acyclic.q3),
                format!("{:.6}", cell.optimal_acyclic.p05),
                format!("{:.6}", cell.optimal_acyclic.p95),
                format!("{:.6}", cell.best_omega.mean),
                format!("{:.6}", cell.theorem_word.mean),
            ]);
        }
        table
    }

    /// The smallest mean optimal-acyclic ratio over all cells (the paper reports "at most 5%
    /// decrease", i.e. this value stays above 0.95).
    #[must_use]
    pub fn worst_mean_acyclic_ratio(&self) -> Option<f64> {
        self.cells
            .iter()
            .map(|c| c.optimal_acyclic.mean)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Largest instance (in nodes) whose acyclic optimum is spot-certified by an explicit
/// scheme during the sweep: small enough to keep the certification cost negligible next
/// to the dichotomic searches, large enough to cover the paper's 10- and 100-receiver
/// cells in full.
pub const CERTIFY_MAX_NODES: usize = 128;

/// Computes the three ratios for one instance (one-shot convenience over
/// [`ratios_for_instance_with`]).
#[must_use]
pub fn ratios_for_instance(
    instance: &bmp_platform::Instance,
    solver: &AcyclicGuardedSolver,
) -> InstanceRatios {
    ratios_for_instance_with(instance, solver, &mut EvalCtx::new())
}

/// Computes the three ratios for one instance through an explicit per-worker context.
///
/// On instances up to [`CERTIFY_MAX_NODES`] nodes the dichotomic acyclic optimum is
/// additionally certified: the word's scheme is built and re-scored by max-flow through
/// `ctx` (never the `scheme.rs` thread-local).
///
/// # Panics
///
/// Panics when the certification fails — an under-delivering scheme is a solver bug.
#[must_use]
pub fn ratios_for_instance_with(
    instance: &bmp_platform::Instance,
    solver: &AcyclicGuardedSolver,
    ctx: &mut EvalCtx,
) -> InstanceRatios {
    let cyclic = cyclic_upper_bound(instance);
    if cyclic <= 0.0 {
        return InstanceRatios {
            optimal_acyclic: 1.0,
            best_omega: 1.0,
            theorem_word: 1.0,
        };
    }
    let (acyclic, word) = solver.optimal_throughput(instance);
    if acyclic > 0.0 && instance.num_nodes() <= CERTIFY_MAX_NODES {
        let scheme = solver
            .scheme_for_word(instance, acyclic, &word)
            .expect("the dichotomic word is valid at its own throughput");
        bmp_core::solver::certify_throughput(ctx, &scheme, acyclic);
    }
    let (omega, _) = best_omega_throughput(instance, solver.tolerance);
    let theorem = theorem_word_throughput(instance, solver.tolerance);
    InstanceRatios {
        optimal_acyclic: acyclic / cyclic,
        best_omega: omega / cyclic,
        theorem_word: theorem / cyclic,
    }
}

/// Runs the Figure 19 experiment.
#[must_use]
pub fn run(config: &Fig19Config) -> Fig19Result {
    let solver = AcyclicGuardedSolver::with_tolerance(1e-8);
    let mut cells = Vec::new();
    for &distribution in &config.distributions {
        for &p in &config.open_probabilities {
            for &size in &config.sizes {
                let cell_seed = config.seed
                    ^ (size as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (p.to_bits().rotate_left(17))
                    ^ (distribution.label().len() as u64) << 32
                    ^ u64::from(distribution.label().as_bytes()[0]) << 40
                    ^ u64::from(*distribution.label().as_bytes().last().unwrap()) << 48;
                let seeds: Vec<u64> = (0..config.instances_per_cell as u64)
                    .map(|i| cell_seed.wrapping_add(i.wrapping_mul(0x517C_C1B7_2722_0A95)))
                    .collect();
                // One EvalCtx per worker (the churn_exp convention): certification flows
                // go through explicit state, not the scheme.rs thread-local, and never
                // stack the flow pool's fan-out on the sweep's own.
                let worker_ctx = || {
                    let mut ctx = EvalCtx::new();
                    ctx.set_parallelism(crate::parallel::eval_parallelism(config.threads));
                    ctx
                };
                let ratios = parallel_map_with(&seeds, config.threads, worker_ctx, |ctx, &seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let generator_config =
                        GeneratorConfig::new(size, p).expect("valid generator configuration");
                    let sampler = distribution.build();
                    let generator = InstanceGenerator::new(generator_config, sampler);
                    let instance = generator.generate(&mut rng);
                    ratios_for_instance_with(&instance, &solver, ctx)
                });
                let acyclic: Vec<f64> = ratios.iter().map(|r| r.optimal_acyclic).collect();
                let omega: Vec<f64> = ratios.iter().map(|r| r.best_omega).collect();
                let theorem: Vec<f64> = ratios.iter().map(|r| r.theorem_word).collect();
                cells.push(Fig19Cell {
                    distribution: distribution.label(),
                    open_probability: p,
                    size,
                    optimal_acyclic: Summary::of(&acyclic).expect("non-empty cell"),
                    best_omega: Summary::of(&omega).expect("non-empty cell"),
                    theorem_word: Summary::of(&theorem).expect("non-empty cell"),
                });
            }
        }
    }
    Fig19Result { cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::bounds::five_sevenths;

    #[test]
    fn quick_run_matches_paper_shape() {
        let result = run(&Fig19Config {
            distributions: vec![NamedDistribution::Unif100, NamedDistribution::Power1],
            open_probabilities: vec![0.5, 0.9],
            sizes: vec![10, 40],
            instances_per_cell: 25,
            seed: 7,
            threads: 2,
        });
        assert_eq!(result.cells.len(), 2 * 2 * 2);
        for cell in &result.cells {
            // Ratios live in [5/7, 1].
            assert!(cell.optimal_acyclic.min >= five_sevenths() - 1e-6);
            assert!(cell.optimal_acyclic.max <= 1.0 + 1e-6);
            // Ordering of the three curves: theorem word ≤ best omega ≤ optimal acyclic.
            assert!(cell.theorem_word.mean <= cell.best_omega.mean + 1e-9);
            assert!(cell.best_omega.mean <= cell.optimal_acyclic.mean + 1e-9);
            // Paper: the average acyclic throughput loses at most ~5%.
            assert!(
                cell.optimal_acyclic.mean > 0.93,
                "{} p={} size={}: mean {}",
                cell.distribution,
                cell.open_probability,
                cell.size,
                cell.optimal_acyclic.mean
            );
        }
        // Larger instances are easier (ratios closer to 1) for a fixed distribution and p.
        let small = result
            .cells
            .iter()
            .find(|c| c.size == 10 && c.distribution == "Unif100" && c.open_probability == 0.9)
            .unwrap();
        let large = result
            .cells
            .iter()
            .find(|c| c.size == 40 && c.distribution == "Unif100" && c.open_probability == 0.9)
            .unwrap();
        assert!(large.optimal_acyclic.mean + 1e-6 >= small.optimal_acyclic.mean);
        assert!(result.worst_mean_acyclic_ratio().unwrap() > 0.9);
    }

    #[test]
    fn csv_rendering_has_one_row_per_cell() {
        let result = run(&Fig19Config {
            distributions: vec![NamedDistribution::PLab],
            open_probabilities: vec![0.5],
            sizes: vec![12],
            instances_per_cell: 10,
            seed: 3,
            threads: 1,
        });
        let csv = result.to_csv();
        assert_eq!(csv.len(), 1);
        assert!(csv.to_csv_string().contains("PLab"));
    }

    #[test]
    fn ratios_are_deterministic_for_a_seed() {
        let config = Fig19Config {
            distributions: vec![NamedDistribution::Ln1],
            open_probabilities: vec![0.7],
            sizes: vec![15],
            instances_per_cell: 8,
            seed: 99,
            threads: 1,
        };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a, b);
    }
}
