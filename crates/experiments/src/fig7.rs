//! Figure 7: worst-case acyclic/cyclic ratio over all tight homogeneous instances for
//! `n, m ∈ [0, 100]`.

use crate::csvout::CsvTable;
use crate::parallel::parallel_map_with;
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::homogeneous::{worst_ratio_over_delta_with, HomogeneousRatio};
use bmp_core::solver::EvalCtx;
use serde::{Deserialize, Serialize};

/// Configuration of the Figure 7 grid exploration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Config {
    /// Largest `n` and `m` explored (the paper uses 100).
    pub max_nodes: usize,
    /// Step between explored grid values of `n` and `m` (1 reproduces the full figure; larger
    /// steps give a quick preview).
    pub grid_step: usize,
    /// Number of `Δ` values explored per cell (the paper explores all tight homogeneous
    /// instances; an integer-Δ grid, i.e. `delta_steps = n`, matches it. `0` means "use n").
    pub delta_steps: usize,
    /// Number of worker threads.
    pub threads: usize,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            max_nodes: 100,
            grid_step: 4,
            delta_steps: 0,
            threads: crate::parallel::default_threads(),
        }
    }
}

impl Fig7Config {
    /// A small configuration for smoke tests and quick previews.
    #[must_use]
    pub fn quick() -> Self {
        Fig7Config {
            max_nodes: 24,
            grid_step: 8,
            delta_steps: 8,
            threads: crate::parallel::default_threads(),
        }
    }
}

/// The Figure 7 data: one ratio per explored `(n, m)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Configuration that produced the data.
    pub config: Fig7Config,
    /// Worst ratios per cell.
    pub cells: Vec<HomogeneousRatio>,
}

impl Fig7Result {
    /// The minimum ratio over the whole grid (the paper's floor is 5/7 ≈ 0.714).
    #[must_use]
    pub fn global_minimum(&self) -> Option<&HomogeneousRatio> {
        self.cells.iter().min_by(|a, b| {
            a.worst_ratio
                .partial_cmp(&b.worst_ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Fraction of cells whose worst ratio exceeds `threshold` (the paper observes that
    /// "except for a few small instances, the ratio is larger than 0.8").
    #[must_use]
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells
            .iter()
            .filter(|c| c.worst_ratio > threshold)
            .count() as f64
            / self.cells.len() as f64
    }

    /// Renders the grid as a CSV table `n, m, worst_delta, ratio`.
    #[must_use]
    pub fn to_csv(&self) -> CsvTable {
        let mut table = CsvTable::new(&["n", "m", "worst_delta", "ratio"]);
        for cell in &self.cells {
            table.push_numeric_row(&[
                cell.n as f64,
                cell.m as f64,
                cell.worst_delta,
                cell.worst_ratio,
            ]);
        }
        table
    }
}

/// Runs the Figure 7 exploration.
#[must_use]
pub fn run(config: Fig7Config) -> Fig7Result {
    let solver = AcyclicGuardedSolver::with_tolerance(1e-9);
    let step = config.grid_step.max(1);
    let mut cells_to_run = Vec::new();
    let mut n = 0usize;
    while n <= config.max_nodes {
        let mut m = 0usize;
        while m <= config.max_nodes {
            cells_to_run.push((n, m));
            m += step;
        }
        n += step;
    }
    // The worst ratios (down to 5/7) live at very small instances; always sample that corner
    // at full resolution so the coarse grid does not miss the paper's floor.
    let fine_limit = 12.min(config.max_nodes);
    for n in 0..=fine_limit {
        for m in 0..=fine_limit {
            if n % step != 0 || m % step != 0 {
                cells_to_run.push((n, m));
            }
        }
    }
    // One EvalCtx per worker (the churn_exp convention): each cell's worst scheme is
    // certified by max-flow through explicit per-worker state, never the scheme.rs
    // thread-local — and never stacking the flow pool's fan-out on the sweep's own.
    let worker_ctx = || {
        let mut ctx = EvalCtx::new();
        ctx.set_parallelism(crate::parallel::eval_parallelism(config.threads));
        ctx
    };
    let results = parallel_map_with(&cells_to_run, config.threads, worker_ctx, |ctx, &(n, m)| {
        // Δ = n·k/steps: use at least 14 steps so that the small-instance corner can
        // hit the 5/7-tight instances (they need Δ = n/7, e.g. Δ = 1/7 for n = 1).
        let delta_steps = if config.delta_steps == 0 {
            n.max(14)
        } else {
            config.delta_steps
        };
        worst_ratio_over_delta_with(n, m, delta_steps, &solver, ctx)
    });
    Fig7Result {
        config,
        cells: results.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::bounds::five_sevenths;

    #[test]
    fn quick_grid_reproduces_the_figure_shape() {
        let result = run(Fig7Config::quick());
        assert!(!result.cells.is_empty());
        // Every ratio lies in [5/7, 1].
        for cell in &result.cells {
            assert!(
                cell.worst_ratio >= five_sevenths() - 1e-6,
                "({}, {}): {}",
                cell.n,
                cell.m,
                cell.worst_ratio
            );
            assert!(cell.worst_ratio <= 1.0 + 1e-9);
        }
        // Most of the grid sits above 0.8 (paper: "except for few small instances").
        assert!(result.fraction_above(0.8) > 0.7);
        // Pure open rows have ratio close to 1 for large n.
        assert!(result
            .cells
            .iter()
            .filter(|c| c.m == 0 && c.n >= 16)
            .all(|c| c.worst_ratio > 0.9));
    }

    #[test]
    fn csv_rendering() {
        let result = run(Fig7Config {
            max_nodes: 8,
            grid_step: 4,
            delta_steps: 4,
            threads: 1,
        });
        let csv = result.to_csv();
        assert_eq!(csv.len(), result.cells.len());
        assert!(csv.to_csv_string().starts_with("n,m,worst_delta,ratio"));
        assert!(result.global_minimum().is_some());
    }
}
