//! Experiment harness: regenerates every table and figure of the paper's evaluation.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table I (Algorithm 2 trace) | [`table1`] | `cargo run -p bmp-experiments --bin table1` |
//! | Figure 7 (worst-case ratio grid) | [`fig7`] | `cargo run -p bmp-experiments --bin fig7 --release` |
//! | Figure 19 (average-case ratios) | [`fig19`] | `cargo run -p bmp-experiments --bin fig19 --release` |
//! | Figures 6, 18, Theorems 6.1/6.3 | [`worst_case`] | `cargo run -p bmp-experiments --bin worst_case` |
//! | Figures 1, 2, 5 (running example) | [`paper_figures`] | `cargo run -p bmp-experiments --bin paper_figures` |
//!
//! Extension experiments (the future-work directions listed in the paper's conclusion):
//!
//! | Extension | Module | Binary |
//! |---|---|---|
//! | Churn: residual throughput and repair quality | [`churn_exp`] | `cargo run -p bmp-experiments --bin churn` |
//! | Churn: repair-vs-static *delivered* goodput (session engine) | [`sim_churn_exp`] | `cargo run -p bmp-experiments --bin sim_churn` |
//! | Fault storms: survival/recovery of the hardened repair pipeline | [`fault_storm_exp`] | `cargo run -p bmp-experiments --bin fault_storm` |
//! | Depth/delay of the produced overlays | [`depth_exp`] | `cargo run -p bmp-experiments --bin depth` |
//! | Chunk-policy ablation of the data plane | [`policy_exp`] | `cargo run -p bmp-experiments --bin policies` |
//!
//! Supporting modules: [`stats`] (boxplot summaries), [`csvout`] (CSV output),
//! [`parallel`] (scoped-thread fan-out) and [`runner`] (common CLI flags).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn_exp;
pub mod csvout;
pub mod depth_exp;
pub mod fault_storm_exp;
pub mod fig19;
pub mod fig7;
pub mod paper_figures;
pub mod parallel;
pub mod policy_exp;
pub mod runner;
pub mod sim_churn_exp;
pub mod stats;
pub mod table1;
pub mod worst_case;
