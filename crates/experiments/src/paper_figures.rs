//! Figures 1, 2 and 5: the paper's running example, its optimal cyclic scheme, its acyclic
//! schemes, and an end-to-end streaming simulation over the computed overlays.

use bmp_core::bounds::cyclic_upper_bound;
use bmp_core::scheme::BroadcastScheme;
use bmp_core::solver::{AcyclicGuardedAlgorithm, EvalCtx, Solver, Telemetry};
use bmp_core::word::CodingWord;
use bmp_platform::paper::figure1;
use bmp_sim::{Overlay, SimConfig, Simulator};

/// The Figure 1/2/5 reproduction bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperFiguresReport {
    /// Optimal cyclic throughput of the Figure 1 instance (paper: 4.4).
    pub cyclic_optimum: f64,
    /// Optimal acyclic throughput (paper: 4).
    pub acyclic_optimum: f64,
    /// The coding word found by Algorithm 2 at the acyclic optimum (paper: ■©■©■).
    pub word: CodingWord,
    /// The explicit low-degree acyclic scheme (Figure 5).
    pub acyclic_scheme: BroadcastScheme,
    /// Outdegrees of the acyclic scheme, source first.
    pub outdegrees: Vec<usize>,
    /// Throughput of the acyclic scheme re-measured by max-flow.
    pub measured_throughput: f64,
    /// Empirical delivery rate of the slowest receiver in the chunk-level simulation.
    pub simulated_rate: f64,
    /// Evaluation cost of the solve (flow solves, probes, journal hits, wall time).
    pub telemetry: Telemetry,
}

/// Builds the report: solve the Figure 1 instance, re-verify the scheme by max-flow and by
/// chunk-level simulation.
#[must_use]
pub fn run() -> PaperFiguresReport {
    let instance = figure1();
    let cyclic_optimum = cyclic_upper_bound(&instance);
    let solution = AcyclicGuardedAlgorithm
        .solve(&instance, &mut EvalCtx::new())
        .expect("the acyclic-guarded solver handles every instance");
    let measured_throughput = solution.verified_throughput;
    let overlay = Overlay::from_scheme(&solution.scheme);
    let sim_config = SimConfig {
        num_chunks: 400,
        chunk_size: 0.5,
        round_duration: 0.25,
        ..SimConfig::default()
    };
    let report = Simulator::new(overlay, sim_config).run();
    let simulated_rate = report.min_achieved_rate().unwrap_or(0.0);
    PaperFiguresReport {
        cyclic_optimum,
        acyclic_optimum: solution.throughput,
        word: solution.word.expect("acyclic-guarded always yields a word"),
        outdegrees: solution.scheme.outdegrees(),
        acyclic_scheme: solution.scheme,
        measured_throughput,
        simulated_rate,
        telemetry: solution.telemetry,
    }
}

impl PaperFiguresReport {
    /// Renders a human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Figure 1 instance: cyclic optimum T* = {:.3} (paper: 4.4)\n",
            self.cyclic_optimum
        ));
        out.push_str(&format!(
            "Optimal acyclic throughput T*_ac = {:.3} (paper: 4)\n",
            self.acyclic_optimum
        ));
        out.push_str(&format!("Algorithm 2 word: {}\n", self.word));
        out.push_str(&format!("Outdegrees: {:?}\n", self.outdegrees));
        out.push_str(&format!(
            "Max-flow verified throughput: {:.3}\n",
            self.measured_throughput
        ));
        out.push_str(&format!(
            "Simulated worst-receiver rate: {:.3}\n",
            self.simulated_rate
        ));
        out.push_str(&format!(
            "Telemetry: {} flow solves, {} bisection iters, {} rescans skipped, {:.3} ms\n",
            self.telemetry.flow_solves,
            self.telemetry.bisection_iters,
            self.telemetry.rescans_skipped,
            self.telemetry.wall_time.as_secs_f64() * 1e3
        ));
        for (from, to, rate) in self.acyclic_scheme.edges() {
            out.push_str(&format!("  C{from} -> C{to} : {rate:.3}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_matches_the_paper() {
        let report = run();
        assert!((report.cyclic_optimum - 4.4).abs() < 1e-9);
        assert!((report.acyclic_optimum - 4.0).abs() < 1e-6);
        assert_eq!(report.word.to_string(), "gogog");
        assert!((report.measured_throughput - 4.0).abs() < 1e-6);
        assert!(report.simulated_rate > 0.85 * report.acyclic_optimum);
        // Degree bounds of Theorem 4.1 on this instance.
        assert!(report.outdegrees.iter().max().copied().unwrap_or(0) <= 4);
    }

    #[test]
    fn render_mentions_key_quantities() {
        let report = run();
        let text = report.render();
        assert!(text.contains("4.4"));
        assert!(text.contains("gogog"));
        assert!(text.contains("C0 -> C3"));
        assert!(text.contains("flow solves"));
        assert!(report.telemetry.flow_solves > 0);
    }
}
