//! Scoped-thread parallel map used by the heavier experiment sweeps.
//!
//! The experiment workloads (thousands of independent random instances, or a grid of
//! `(n, m, Δ)` cells) are embarrassingly parallel; a simple chunked fan-out over
//! `crossbeam::scope` threads is all that is needed — no work stealing, no shared mutable
//! state beyond the pre-allocated result slots.

/// Applies `f` to every item of `items` using up to `threads` worker threads and returns the
/// results in the original order.
///
/// With `threads ≤ 1` the map is executed sequentially (useful for debugging and for keeping
/// results bit-for-bit reproducible when the caller relies on thread-local RNG state).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, threads, || (), |(), item| f(item))
}

/// Like [`parallel_map`], but every worker thread builds one reusable state with `init`
/// and threads it through its whole chunk.
///
/// This is how the sweeps carry a per-worker `bmp_core::solver::EvalCtx`: the flow
/// workspace (and, for fixed edge sets, the arena itself) is constructed once per worker
/// instead of once per item — or, worse, hidden in a thread-local the caller cannot see
/// or account.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let workers = threads.min(items.len());
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    // Split the result buffer into contiguous chunks, one per worker, so that each thread
    // writes to its own slice without synchronisation.
    let chunk_size = items.len().div_ceil(workers);
    crossbeam::scope(|scope| {
        for (chunk_index, results_chunk) in results.chunks_mut(chunk_size).enumerate() {
            let start = chunk_index * chunk_size;
            let items_chunk = &items[start..(start + results_chunk.len()).min(items.len())];
            let (init, f) = (&init, &f);
            scope.spawn(move |_| {
                let mut state = init();
                for (slot, item) in results_chunk.iter_mut().zip(items_chunk) {
                    *slot = Some(f(&mut state, item));
                }
            });
        }
    })
    .expect("a parallel experiment worker panicked");

    results
        .into_iter()
        .map(|r| r.expect("every slot is filled by construction"))
        .collect()
}

/// Flow-evaluation fan-out for the per-worker `bmp_core::solver::EvalCtx` of a sweep
/// running `outer_threads` workers (the value to pass to `EvalCtx::set_parallelism`).
///
/// A sweep that is itself parallel already owns the cores: stacking the flow pool's
/// fan-out on top would oversubscribe the machine, so its workers evaluate
/// sequentially (`1`). A sequential sweep has the whole machine to itself, so its one
/// worker gets the auto setting (`0` — the `suggested_flow_threads` heuristic backed by
/// the shared, capped `bmp_flow::FlowPool`), which stays sequential on the small
/// instances the sweeps mostly score and fans out only at fleet scale.
#[must_use]
pub fn eval_parallelism(outer_threads: usize) -> usize {
    if outer_threads > 1 {
        1
    } else {
        0
    }
}

/// Default number of worker threads: the machine's available parallelism, capped at 8 so the
/// experiment binaries stay polite on shared machines.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..200).collect();
        let sequential = parallel_map(&items, 1, |&x| x * x + 1);
        let parallel = parallel_map(&items, 4, |&x| x * x + 1);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential[10], 101);
    }

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = parallel_map(&items, 5, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42u32], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn eval_parallelism_never_stacks_fanouts() {
        // A parallel sweep pins its workers' flow evaluation to sequential; only a
        // sequential sweep hands its one worker the pool-backed auto setting.
        assert_eq!(eval_parallelism(0), 0);
        assert_eq!(eval_parallelism(1), 0);
        for outer in 2..=16 {
            assert_eq!(eval_parallelism(outer), 1);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= 8);
    }

    #[test]
    fn stateful_map_reuses_one_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<u64> = (0..100).collect();
        let inits = AtomicUsize::new(0);
        let out = parallel_map_with(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |acc, &x| {
                *acc += 1;
                x + *acc - *acc // result independent of the state
            },
        );
        assert_eq!(out, items);
        // One state per worker (4), not one per item (100).
        assert!(inits.load(Ordering::Relaxed) <= 4);
        // Sequential path: exactly one state.
        let inits_seq = AtomicUsize::new(0);
        let _ = parallel_map_with(
            &items,
            1,
            || inits_seq.fetch_add(1, Ordering::Relaxed),
            |_, &x| x,
        );
        assert_eq!(inits_seq.load(Ordering::Relaxed), 1);
    }
}
