//! Chunk-policy extension experiment: how the data plane's chunk-selection policy affects the
//! delivered rate on the overlays computed by the paper's algorithms.
//!
//! Massoulié et al. prove the *random useful chunk* policy optimal in the fluid limit; this
//! experiment measures, at chunk granularity, the fraction of the nominal overlay throughput
//! that each policy actually delivers (worst receiver, file broadcast), over random platforms
//! generated with the Figure 19 protocol.

use crate::csvout::CsvTable;
use crate::parallel::parallel_map;
use crate::stats::Summary;
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_platform::distribution::NamedDistribution;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_sim::{ChunkPolicy, Overlay, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Aggregated results for one (policy, platform size) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyCell {
    /// Chunk-selection policy.
    pub policy: ChunkPolicy,
    /// Number of receivers.
    pub receivers: usize,
    /// Summary of `worst achieved rate / nominal throughput` over the trials.
    pub rate_fraction: Summary,
    /// Fraction of trials in which every receiver completed within the horizon.
    pub completion_fraction: f64,
}

/// Full report of the policy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// One cell per (policy, size) pair.
    pub cells: Vec<PolicyCell>,
}

impl PolicyReport {
    /// Renders the report as CSV.
    #[must_use]
    pub fn to_csv(&self) -> CsvTable {
        let mut table = CsvTable::new(&[
            "policy",
            "receivers",
            "rate_fraction_mean",
            "rate_fraction_median",
            "rate_fraction_p05",
            "completion_fraction",
        ]);
        for cell in &self.cells {
            table.push_row(vec![
                cell.policy.label().to_string(),
                cell.receivers.to_string(),
                format!("{:.4}", cell.rate_fraction.mean),
                format!("{:.4}", cell.rate_fraction.median),
                format!("{:.4}", cell.rate_fraction.p05),
                format!("{:.4}", cell.completion_fraction),
            ]);
        }
        table
    }
}

/// One simulation trial: returns `(worst rate / nominal, completed)`.
fn run_trial(receivers: usize, policy: ChunkPolicy, seed: u64) -> Option<(f64, bool)> {
    let config = GeneratorConfig::new(receivers, 0.7).ok()?;
    let generator = InstanceGenerator::new(config, NamedDistribution::Unif100.build());
    let instance = generator.generate(&mut StdRng::seed_from_u64(seed));
    let solution = AcyclicGuardedSolver::default().solve(&instance);
    if solution.throughput <= 1e-9 {
        return None;
    }
    let sim_config = SimConfig {
        num_chunks: 200,
        max_rounds: 20_000,
        policy,
        seed,
        ..SimConfig::default()
    }
    .scaled_to(solution.throughput, 2.0);
    let report = Simulator::new(Overlay::from_scheme(&solution.scheme), sim_config).run();
    match report.min_achieved_rate() {
        Some(rate) => Some((rate / solution.throughput, true)),
        // A starved run counts as rate 0 (its partial progress is reflected by the
        // completion_fraction column, not by the rate summary).
        None => Some((0.0, false)),
    }
}

/// Runs the policy experiment. `quick` uses fewer trials and smaller platforms.
#[must_use]
pub fn run(quick: bool, threads: usize) -> PolicyReport {
    let sizes: &[usize] = if quick { &[15] } else { &[15, 50, 150] };
    let trials = if quick { 8 } else { 50 };
    let mut cells = Vec::new();
    for &receivers in sizes {
        for policy in ChunkPolicy::all() {
            let seeds: Vec<u64> = (0..trials)
                .map(|t| t as u64 * 4099 + receivers as u64)
                .collect();
            let results: Vec<(f64, bool)> =
                parallel_map(&seeds, threads, |&seed| run_trial(receivers, policy, seed))
                    .into_iter()
                    .flatten()
                    .collect();
            if results.is_empty() {
                continue;
            }
            let fractions: Vec<f64> = results.iter().map(|&(f, _)| f).collect();
            let completed = results.iter().filter(|&&(_, done)| done).count();
            cells.push(PolicyCell {
                policy,
                receivers,
                rate_fraction: Summary::of(&fractions).expect("non-empty"),
                completion_fraction: completed as f64 / results.len() as f64,
            });
        }
    }
    PolicyReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_every_policy() {
        let report = run(true, 2);
        assert_eq!(report.cells.len(), ChunkPolicy::all().len());
        for cell in &report.cells {
            // Every policy pushes some useful chunk whenever one exists, so the delivered rate
            // stays within a constant factor of the nominal rate and everyone completes.
            assert!(
                cell.completion_fraction > 0.9,
                "{}: completion {}",
                cell.policy.label(),
                cell.completion_fraction
            );
            assert!(
                cell.rate_fraction.mean > 0.5,
                "{}: mean fraction {}",
                cell.policy.label(),
                cell.rate_fraction.mean
            );
            assert!(cell.rate_fraction.max <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn csv_rendering_lists_every_cell() {
        let report = run(true, 1);
        let csv = report.to_csv().to_csv_string();
        assert_eq!(csv.lines().count(), report.cells.len() + 1);
        assert!(csv.contains("random-useful"));
        assert!(csv.contains("rarest-first"));
    }
}
