//! Shared plumbing for the experiment binaries: output directory handling and a tiny
//! command-line convention (`--quick`, `--out <dir>`).

use std::path::{Path, PathBuf};

/// Options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Run a reduced version of the experiment (smoke-test scale).
    pub quick: bool,
    /// Directory where CSV outputs are written.
    pub output_dir: PathBuf,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            quick: false,
            output_dir: PathBuf::from("experiment-results"),
        }
    }
}

impl RunOptions {
    /// Parses the binaries' common flags from an argument iterator (anything unknown is
    /// ignored so that binaries can add their own flags later).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = RunOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" | "-q" => options.quick = true,
                "--full" => options.quick = false,
                "--out" | "-o" => {
                    if let Some(dir) = iter.next() {
                        options.output_dir = PathBuf::from(dir);
                    }
                }
                _ => {}
            }
        }
        options
    }

    /// Parses the options from the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Path of an output file inside the output directory.
    #[must_use]
    pub fn output_path(&self, name: &str) -> PathBuf {
        self.output_dir.join(name)
    }
}

/// Writes `content` to `path`, creating parent directories, and logs the destination.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_output(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let options = RunOptions::parse(
            ["--quick", "--out", "/tmp/results", "--unknown"]
                .iter()
                .map(ToString::to_string),
        );
        assert!(options.quick);
        assert_eq!(options.output_dir, PathBuf::from("/tmp/results"));
        assert_eq!(
            options.output_path("fig7.csv"),
            PathBuf::from("/tmp/results/fig7.csv")
        );
    }

    #[test]
    fn defaults() {
        let options = RunOptions::parse(std::iter::empty::<String>());
        assert!(!options.quick);
        assert_eq!(options.output_dir, PathBuf::from("experiment-results"));
    }

    #[test]
    fn full_flag_overrides_quick() {
        let options = RunOptions::parse(["--quick", "--full"].iter().map(ToString::to_string));
        assert!(!options.quick);
    }

    #[test]
    fn write_output_creates_directories() {
        let dir = std::env::temp_dir().join("bmp_runner_test");
        let path = dir.join("sub").join("file.txt");
        write_output(&path, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
