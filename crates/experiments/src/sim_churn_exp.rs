//! Repair-vs-static churn *simulation* sweep: the closed-loop counterpart of
//! [`crate::churn_exp`].
//!
//! The static churn experiment predicts, by max-flow analysis, how much throughput a
//! frozen overlay loses when a node departs and how much a re-solve recovers. This sweep
//! checks the prediction *dynamically*: for every trial it runs the chunk-level session
//! engine twice under the **same seed and churn trace** — once with the static baseline
//! ([`bmp_sim::StaticPolicy`], the paper's control plane) and once with the adaptive
//! controller ([`bmp_sim::RepairController`], incremental re-solve + mid-broadcast
//! hot-swap) — and compares *delivered* goodput against the nominal throughput, along
//! with the post-churn recovery time of the repaired run.
//!
//! The controller's evaluation cost (degradation probes riding the dirty-edge journal,
//! residual evaluations on the per-call explicit arena) is aggregated into the shared
//! telemetry CSV columns next to the results.

use crate::csvout::{telemetry_cells, telemetry_sum, CsvTable, TELEMETRY_COLUMNS};
use crate::parallel::parallel_map_with;
use crate::stats::Summary;
use bmp_core::solver::{AcyclicGuardedAlgorithm, EvalCtx, SolveRecorder, Solver, Telemetry};
use bmp_platform::distribution::NamedDistribution;
use bmp_platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp_platform::NodeId;
use bmp_sim::{
    run_adaptive, AdaptDecision, AdaptationPolicy, ChurnSchedule, Overlay, RepairController,
    SimConfig, StaticPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Wraps a policy and measures the wall-clock latency of every `adapt` call — the
/// end-to-end cost of one repair decision (degradation probe, incremental re-solve,
/// overlay extraction). The timings feed the `repair_ms_*` CSV columns only; they
/// never enter a deterministic report or any simulated-time metric.
struct TimedPolicy<'a, P: AdaptationPolicy> {
    inner: &'a mut P,
    latencies_ms: Vec<f64>,
}

impl<'a, P: AdaptationPolicy> TimedPolicy<'a, P> {
    fn new(inner: &'a mut P) -> Self {
        TimedPolicy {
            inner,
            latencies_ms: Vec::new(),
        }
    }
}

impl<P: AdaptationPolicy> AdaptationPolicy for TimedPolicy<'_, P> {
    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn adapt(&mut self, departed: &[NodeId], time: f64) -> Option<AdaptDecision> {
        let start = std::time::Instant::now();
        let decision = self.inner.adapt(departed, time);
        self.latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        decision
    }

    fn degraded_floor(&self) -> Option<f64> {
        self.inner.degraded_floor()
    }
}

/// Result of one (instance, churn trace) trial: the same trace simulated twice.
#[derive(Debug, Clone, PartialEq)]
pub struct SimChurnTrial {
    /// Number of receivers of the platform.
    pub receivers: usize,
    /// Nominal throughput of the solved overlay.
    pub nominal: f64,
    /// Static residual prediction of the frozen overlay (controller diagnostics).
    pub residual_prediction: f64,
    /// Nominal throughput of the repaired overlay the controller swapped in.
    pub repaired_nominal: f64,
    /// Delivered goodput of the static run, as a fraction of nominal.
    pub static_ratio: f64,
    /// Delivered goodput of the repaired run, as a fraction of nominal.
    pub repaired_ratio: f64,
    /// Time from the hot-swap to the first starvation-free round.
    pub recovery_time: Option<f64>,
    /// Wall-clock latency of each repair decision in the adaptive run, in
    /// milliseconds (one entry per `adapt` call).
    pub repair_ms: Vec<f64>,
    /// Evaluation cost: the solve plus the controller's probes.
    pub telemetry: Telemetry,
}

/// Aggregate over the trials of one platform size.
#[derive(Debug, Clone, PartialEq)]
pub struct SimChurnCell {
    /// Number of receivers.
    pub receivers: usize,
    /// Trials that contributed (solvable instance, load-bearing victim).
    pub trials: usize,
    /// Summary of the static goodput ratios.
    pub static_ratio: Summary,
    /// Summary of the repaired goodput ratios.
    pub repaired_ratio: Summary,
    /// Summary of `repaired − static` goodput-ratio gains.
    pub gain: Summary,
    /// Summary of the recovery times (trials that recovered).
    pub recovery: Option<Summary>,
    /// Summary of per-decision repair latencies (wall-clock milliseconds) across
    /// the cell's adaptive runs.
    pub repair_ms: Option<Summary>,
    /// Total evaluation cost of the cell.
    pub telemetry: Telemetry,
}

/// Full report of the repair-vs-static simulation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SimChurnReport {
    /// One cell per platform size.
    pub cells: Vec<SimChurnCell>,
}

impl SimChurnReport {
    /// Renders the report as CSV with the shared telemetry columns appended.
    #[must_use]
    pub fn to_csv(&self) -> CsvTable {
        let header: Vec<&str> = [
            "receivers",
            "trials",
            "static_goodput_mean",
            "static_goodput_median",
            "repaired_goodput_mean",
            "repaired_goodput_median",
            "gain_mean",
            "gain_min",
            "recovery_mean",
            "recovery_max",
            "repair_ms_mean",
            "repair_ms_max",
        ]
        .into_iter()
        .chain(TELEMETRY_COLUMNS)
        .collect();
        let mut table = CsvTable::new(&header);
        for cell in &self.cells {
            let (recovery_mean, recovery_max) = match &cell.recovery {
                Some(summary) => (
                    format!("{:.4}", summary.mean),
                    format!("{:.4}", summary.max),
                ),
                None => ("n/a".to_string(), "n/a".to_string()),
            };
            let (repair_mean, repair_max) = match &cell.repair_ms {
                Some(summary) => (
                    format!("{:.3}", summary.mean),
                    format!("{:.3}", summary.max),
                ),
                None => ("n/a".to_string(), "n/a".to_string()),
            };
            let mut row = vec![
                cell.receivers.to_string(),
                cell.trials.to_string(),
                format!("{:.6}", cell.static_ratio.mean),
                format!("{:.6}", cell.static_ratio.median),
                format!("{:.6}", cell.repaired_ratio.mean),
                format!("{:.6}", cell.repaired_ratio.median),
                format!("{:.6}", cell.gain.mean),
                format!("{:.6}", cell.gain.min),
                recovery_mean,
                recovery_max,
                repair_mean,
                repair_max,
            ];
            row.extend(telemetry_cells(&cell.telemetry));
            table.push_row(row);
        }
        table
    }
}

/// Floor fraction below which the controller repairs: chosen high so that any
/// load-bearing departure triggers a swap, matching the 0.9 floor of the static
/// churn experiment's degradation probes.
const FLOOR_FRACTION: f64 = 0.9;

fn run_trial(
    ctx: &mut EvalCtx,
    receivers: usize,
    num_chunks: usize,
    seed: u64,
) -> Option<SimChurnTrial> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GeneratorConfig::new(receivers, 0.7).ok()?;
    let generator = InstanceGenerator::new(config, NamedDistribution::Unif100.build());
    let instance = generator.generate(&mut rng);
    let recorder = SolveRecorder::start(ctx);
    let solution = AcyclicGuardedAlgorithm.solve(&instance, ctx).ok()?;
    if solution.throughput <= 1e-9 {
        return None;
    }
    let nominal = solution.throughput;
    let victim = solution.scheme.busiest_receiver()?;
    let overlay = Overlay::from_scheme(&solution.scheme);

    // The busiest relay departs mid-broadcast; both runs replay the same seed + trace.
    let sim_config = SimConfig {
        num_chunks,
        max_rounds: 40_000,
        seed,
        ..SimConfig::default()
    }
    .scaled_to(nominal, 2.0);
    let half_time = 0.5 * num_chunks as f64 * sim_config.chunk_size / nominal;
    let churn = ChurnSchedule::departures_at(half_time, &[victim]);

    let static_run = run_adaptive(
        overlay.clone(),
        sim_config,
        &churn,
        &mut StaticPolicy,
        nominal,
    );
    let mut controller = RepairController::new(
        instance.clone(),
        solution.scheme.clone(),
        nominal,
        FLOOR_FRACTION,
    );
    let mut timed = TimedPolicy::new(&mut controller);
    let repaired_run = run_adaptive(overlay, sim_config, &churn, &mut timed, nominal);
    let repair_ms = timed.latencies_ms;

    let decision = controller.decisions().first()?;
    let residual_prediction = decision.residual;
    let repaired_nominal = decision.repaired.unwrap_or(nominal);
    let mut telemetry = recorder.telemetry(ctx);
    let controller_ctx = controller.ctx();
    telemetry.flow_solves += controller_ctx.flow_solves();
    telemetry.bisection_iters += controller_ctx.bisection_iters();
    telemetry.rescans_skipped += controller_ctx.rescans_skipped();
    telemetry.edges_patched += controller_ctx.edges_patched();
    telemetry.flows_warm_started += controller_ctx.flows_warm_started();
    telemetry.augment_saved += controller_ctx.augment_saved();
    telemetry.excess_drained += controller_ctx.excess_drained();
    Some(SimChurnTrial {
        receivers,
        nominal,
        residual_prediction,
        repaired_nominal,
        static_ratio: static_run.goodput_vs_nominal(),
        repaired_ratio: repaired_run.goodput_vs_nominal(),
        recovery_time: repaired_run.recovery_time(),
        repair_ms,
        telemetry,
    })
}

/// Runs the sweep. `quick` uses fewer trials, smaller platforms and shorter messages.
#[must_use]
pub fn run(quick: bool, threads: usize) -> SimChurnReport {
    let sizes: &[usize] = if quick { &[15, 30] } else { &[20, 50, 100] };
    let trials = if quick { 6 } else { 40 };
    let num_chunks = if quick { 150 } else { 400 };
    let mut cells = Vec::new();
    for &receivers in sizes {
        let seeds: Vec<u64> = (0..trials)
            .map(|t| t as u64 * 6151 + receivers as u64)
            .collect();
        let results: Vec<SimChurnTrial> =
            parallel_map_with(&seeds, threads, EvalCtx::new, |ctx, &seed| {
                run_trial(ctx, receivers, num_chunks, seed)
            })
            .into_iter()
            .flatten()
            .collect();
        let static_ratio: Vec<f64> = results.iter().map(|t| t.static_ratio).collect();
        let repaired_ratio: Vec<f64> = results.iter().map(|t| t.repaired_ratio).collect();
        let gain: Vec<f64> = results
            .iter()
            .map(|t| t.repaired_ratio - t.static_ratio)
            .collect();
        let recovery: Vec<f64> = results.iter().filter_map(|t| t.recovery_time).collect();
        let repair_ms: Vec<f64> = results
            .iter()
            .flat_map(|t| t.repair_ms.iter().copied())
            .collect();
        if let (Some(static_ratio), Some(repaired_ratio), Some(gain)) = (
            Summary::of(&static_ratio),
            Summary::of(&repaired_ratio),
            Summary::of(&gain),
        ) {
            cells.push(SimChurnCell {
                receivers,
                trials: results.len(),
                static_ratio,
                repaired_ratio,
                gain,
                recovery: Summary::of(&recovery),
                repair_ms: Summary::of(&repair_ms),
                telemetry: telemetry_sum(results.iter().map(|t| &t.telemetry)),
            });
        }
    }
    SimChurnReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_repair_beating_static_on_delivered_goodput() {
        let report = run(true, 2);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.trials > 0, "{cell:?}");
            // The acceptance bar: under the same seed and churn trace, the repaired
            // session delivers strictly more than the frozen overlay on average…
            assert!(
                cell.repaired_ratio.mean > cell.static_ratio.mean,
                "repair {} does not beat static {} at n = {}",
                cell.repaired_ratio.mean,
                cell.static_ratio.mean,
                cell.receivers
            );
            // …and the goodput ratios are sane fractions of nominal.
            assert!(cell.static_ratio.min >= 0.0);
            assert!(cell.repaired_ratio.max <= 1.5, "{cell:?}");
            assert!(cell.telemetry.flow_solves > 0);
            assert!(cell.telemetry.bisection_iters > 0);
            // Every cell repaired at least once, so repair latencies were measured
            // (wall-clock, strictly positive).
            let repair_ms = cell.repair_ms.as_ref().expect("repairs were timed");
            assert!(repair_ms.mean > 0.0, "{cell:?}");
        }
        // The controller's re-probes rode the dirty-edge journal (unless the CI matrix
        // disabled it process-wide via BMP_DISABLE_JOURNAL).
        if EvalCtx::new().journal_enabled() {
            let skipped: u64 = report
                .cells
                .iter()
                .map(|c| c.telemetry.rescans_skipped)
                .sum();
            assert!(skipped > 0, "controller probes never rode the journal");
        }
    }

    #[test]
    fn csv_has_one_row_per_cell_with_telemetry_columns() {
        let report = run(true, 2);
        let csv = report.to_csv().to_csv_string();
        assert_eq!(csv.lines().count(), report.cells.len() + 1);
        let header = csv.lines().next().unwrap();
        assert!(header.starts_with("receivers,trials,static_goodput_mean"));
        for column in TELEMETRY_COLUMNS {
            assert!(header.contains(column), "missing column {column}: {header}");
        }
        assert!(header.contains("recovery_mean"));
        assert!(header.contains("repair_ms_mean"));
        assert!(header.contains("repair_ms_max"));
    }
}
