//! Summary statistics used by the experiment reports (boxplot five-number summaries,
//! means and quantiles), implemented from scratch to avoid extra dependencies.

use serde::{Deserialize, Serialize};

/// A boxplot-style summary of a sample, matching what Figure 19 of the paper displays
/// (median, quartiles, 5%/95% whiskers) plus the mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 5% quantile (lower whisker).
    pub p05: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// 95% quantile (upper whisker).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample. Returns `None` for an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let variance = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            p05: quantile_sorted(&sorted, 0.05),
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            max: sorted[count - 1],
        })
    }
}

/// Quantile of an already-sorted sample, with linear interpolation between order statistics.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let position = q * (sorted.len() - 1) as f64;
    let low = position.floor() as usize;
    let high = position.ceil() as usize;
    let weight = position - low as f64;
    sorted[low] * (1.0 - weight) + sorted[high] * weight
}

/// Arithmetic mean (0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::of(&values).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.q1 - 2.0).abs() < 1e-12);
        assert!((s.q3 - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::of(&[7.5]).unwrap();
        assert_eq!(s.median, 7.5);
        assert_eq!(s.p05, 7.5);
        assert_eq!(s.p95, 7.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = vec![0.0, 10.0];
        assert!((quantile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert!((quantile_sorted(&sorted, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&sorted, -1.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 2.0), 10.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 6.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_of_empty_panics() {
        let _ = quantile_sorted(&[], 0.5);
    }
}
