//! Table I: execution trace of Algorithm 2 (GreedyTest, T = 4) on the Figure 1 instance.

use bmp_core::greedy::{greedy_test, GreedyOutcome};
use bmp_core::word::Symbol;
use bmp_platform::paper::figure1;
use bmp_platform::Instance;

/// One column of Table I: the prefix reached so far and its `(O, G, W)` state.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceColumn {
    /// The prefix as a string of `o`/`g` letters (empty string for `ε`).
    pub prefix: String,
    /// Open bandwidth available `O(π)`.
    pub open_avail: f64,
    /// Guarded bandwidth available `G(π)`.
    pub guarded_avail: f64,
    /// Open → open transfer `W(π)`.
    pub open_waste: f64,
}

/// The full Table I reproduction: the greedy trace on a given instance and throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Target throughput of the greedy test.
    pub throughput: f64,
    /// Whether the throughput was feasible.
    pub feasible: bool,
    /// The columns of the table (the first column is the empty prefix).
    pub columns: Vec<TraceColumn>,
}

impl Table1 {
    /// Renders the table in the same layout as the paper (one row per quantity).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let prefix_row: Vec<String> = self
            .columns
            .iter()
            .map(|c| {
                if c.prefix.is_empty() {
                    "e".to_string()
                } else {
                    c.prefix.clone()
                }
            })
            .collect();
        out.push_str(&format!("pi    | {}\n", prefix_row.join(" | ")));
        for (label, accessor) in [
            (
                "O(pi)",
                &(|c: &TraceColumn| c.open_avail) as &dyn Fn(&TraceColumn) -> f64,
            ),
            ("G(pi)", &|c: &TraceColumn| c.guarded_avail),
            ("W(pi)", &|c: &TraceColumn| c.open_waste),
        ] {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| format!("{}", accessor(c)))
                .collect();
            out.push_str(&format!("{label} | {}\n", cells.join(" | ")));
        }
        out
    }
}

/// Runs Algorithm 2 on `instance` at `throughput` and returns the Table-I-style trace.
#[must_use]
pub fn greedy_trace(instance: &Instance, throughput: f64) -> Table1 {
    match greedy_test(instance, throughput) {
        GreedyOutcome::Feasible { word, trace } => {
            let mut prefix = String::new();
            let mut columns = Vec::with_capacity(trace.len());
            for (index, state) in trace.iter().enumerate() {
                if index > 0 {
                    prefix.push(match word.symbols()[index - 1] {
                        Symbol::Open => 'o',
                        Symbol::Guarded => 'g',
                    });
                }
                columns.push(TraceColumn {
                    prefix: prefix.clone(),
                    open_avail: state.open_avail,
                    guarded_avail: state.guarded_avail,
                    open_waste: state.open_waste,
                });
            }
            Table1 {
                throughput,
                feasible: true,
                columns,
            }
        }
        GreedyOutcome::Infeasible { .. } => Table1 {
            throughput,
            feasible: false,
            columns: Vec::new(),
        },
    }
}

/// The exact Table I of the paper: the Figure 1 instance at throughput 4.
#[must_use]
pub fn paper_table1() -> Table1 {
    greedy_trace(&figure1(), 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_values() {
        let table = paper_table1();
        assert!(table.feasible);
        assert_eq!(table.columns.len(), 6);
        let open: Vec<f64> = table.columns.iter().map(|c| c.open_avail).collect();
        let guarded: Vec<f64> = table.columns.iter().map(|c| c.guarded_avail).collect();
        let waste: Vec<f64> = table.columns.iter().map(|c| c.open_waste).collect();
        assert_eq!(open, vec![6.0, 2.0, 7.0, 3.0, 5.0, 1.0]);
        assert_eq!(guarded, vec![0.0, 4.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(waste, vec![0.0, 0.0, 0.0, 0.0, 3.0, 3.0]);
        assert_eq!(table.columns.last().unwrap().prefix, "gogog");
    }

    #[test]
    fn render_contains_all_rows() {
        let rendered = paper_table1().render();
        assert!(rendered.contains("O(pi)"));
        assert!(rendered.contains("G(pi)"));
        assert!(rendered.contains("W(pi)"));
        assert!(rendered.contains("gogog"));
    }

    #[test]
    fn infeasible_throughput_yields_empty_table() {
        let table = greedy_trace(&figure1(), 5.0);
        assert!(!table.feasible);
        assert!(table.columns.is_empty());
    }
}
