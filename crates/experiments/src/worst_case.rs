//! Worst-case experiments: the 5/7 instance of Figure 18, the `I(α, k)` family of
//! Theorem 6.3, the unbounded-degree family of Figure 6, and the `1 − 1/n` bound of
//! Theorem 6.1.

use crate::csvout::CsvTable;
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::bounds::{
    acyclic_open_optimum, cyclic_open_optimum, cyclic_upper_bound, theorem61_ratio_bound,
};
use bmp_core::solver::batched_guarded_throughputs;
use bmp_core::worst_case::{
    theorem63_acyclic_upper_bound, theorem63_instance, unbounded_degree_instance,
    unbounded_degree_optimal_scheme,
};
use bmp_platform::paper::{figure18, theorem63_rational_alpha};
use bmp_platform::Instance;

/// One row of the ε-sweep on the Figure 18 family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure18Row {
    /// ε parameter of the instance.
    pub epsilon: f64,
    /// Optimal acyclic throughput.
    pub acyclic: f64,
    /// Optimal cyclic throughput (always 1 on this family).
    pub cyclic: f64,
    /// Their ratio.
    pub ratio: f64,
}

/// Sweeps ε over the Figure 18 family and reports the acyclic/cyclic ratio. The minimum is
/// reached at ε = 1/14 with ratio exactly 5/7.
///
/// The cells are independent, so their bisection probes are interleaved into shared
/// pool passes ([`batched_guarded_throughputs`]) — bit-identical to solving each cell
/// alone, and on a single-core host the batch degenerates to the per-cell loop.
#[must_use]
pub fn figure18_sweep(steps: usize) -> Vec<Figure18Row> {
    let steps = steps.max(2);
    // ε ranges over [0, 0.25]; the interesting region is around 1/14 ≈ 0.0714.
    let epsilons: Vec<f64> = (0..steps)
        .map(|k| 0.25 * k as f64 / (steps - 1) as f64)
        .collect();
    let instances: Vec<Instance> = epsilons
        .iter()
        .map(|&epsilon| figure18(epsilon).expect("epsilon in range"))
        .collect();
    let solver = AcyclicGuardedSolver::default();
    let solved = batched_guarded_throughputs(&instances, solver.tolerance, 0);
    epsilons
        .iter()
        .zip(instances.iter().zip(&solved))
        .map(|(&epsilon, (instance, (acyclic, _, _)))| {
            let cyclic = cyclic_upper_bound(instance);
            Figure18Row {
                epsilon,
                acyclic: *acyclic,
                cyclic,
                ratio: acyclic / cyclic,
            }
        })
        .collect()
}

/// One row of the `I(α, k)` sweep of Theorem 6.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem63Row {
    /// Scale factor `k` (the instance has `k·q` open and `k·p` guarded nodes).
    pub k: u32,
    /// Number of open nodes.
    pub n: usize,
    /// Number of guarded nodes.
    pub m: usize,
    /// Optimal acyclic throughput (the cyclic optimum is 1).
    pub acyclic: f64,
    /// The analytic upper bound `max(f_α(⌊1/α⌋), g_α(⌈1/α⌉))`.
    pub analytic_bound: f64,
}

/// Sweeps `k` over the `I(α, k)` family with the rational `α = 17/40`.
#[must_use]
pub fn theorem63_sweep(max_k: u32) -> Vec<Theorem63Row> {
    let solver = AcyclicGuardedSolver::default();
    let (p, q) = theorem63_rational_alpha();
    let alpha = f64::from(p) / f64::from(q);
    let bound = theorem63_acyclic_upper_bound(alpha);
    let ks: Vec<u32> = (1..=max_k.max(1)).collect();
    let instances: Vec<Instance> = ks
        .iter()
        .map(|&k| theorem63_instance(p, q, k).expect("valid parameters"))
        .collect();
    // Independent cells → interleave their bisection probes into shared pool passes.
    let solved = batched_guarded_throughputs(&instances, solver.tolerance, 0);
    ks.iter()
        .zip(instances.iter().zip(&solved))
        .map(|(&k, (instance, (acyclic, _, _)))| Theorem63Row {
            k,
            n: instance.n(),
            m: instance.m(),
            acyclic: *acyclic,
            analytic_bound: bound,
        })
        .collect()
}

/// One row of the Figure 6 sweep: degree needed by the optimal cyclic scheme versus the
/// degree lower bound, and the throughput price paid by low-degree acyclic schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure6Row {
    /// Number of guarded nodes.
    pub m: usize,
    /// Source outdegree in the optimal cyclic scheme.
    pub cyclic_source_degree: usize,
    /// Degree lower bound `⌈b_0/T*⌉` (always 1 here).
    pub degree_lower_bound: usize,
    /// Optimal acyclic throughput (the cyclic optimum is 1).
    pub acyclic_throughput: f64,
}

/// Sweeps the Figure 6 family over `m`.
#[must_use]
pub fn figure6_sweep(ms: &[usize]) -> Vec<Figure6Row> {
    let solver = AcyclicGuardedSolver::default();
    ms.iter()
        .filter(|&&m| m >= 2)
        .map(|&m| {
            let scheme = unbounded_degree_optimal_scheme(m).expect("m >= 2");
            let instance = unbounded_degree_instance(m).expect("m >= 2");
            let (acyclic, _) = solver.optimal_throughput(&instance);
            Figure6Row {
                m,
                cyclic_source_degree: scheme.outdegree(0),
                degree_lower_bound: bmp_platform::node::degree_lower_bound(
                    instance.source_bandwidth(),
                    1.0,
                ),
                acyclic_throughput: acyclic,
            }
        })
        .collect()
}

/// One row of the Theorem 6.1 validation: random open-only instances and the `1 − 1/n` bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem61Row {
    /// Number of open nodes.
    pub n: usize,
    /// Measured ratio `T*_ac / T*`.
    pub ratio: f64,
    /// The bound `1 − 1/n`.
    pub bound: f64,
}

/// Validates Theorem 6.1 on geometric bandwidth profiles of increasing size.
#[must_use]
pub fn theorem61_sweep(sizes: &[usize]) -> Vec<Theorem61Row> {
    sizes
        .iter()
        .filter(|&&n| n >= 1)
        .map(|&n| {
            let open: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) / n as f64).collect();
            let instance = Instance::open_only(10.0, open).expect("valid instance");
            let acyclic = acyclic_open_optimum(&instance).expect("open only");
            let cyclic = cyclic_open_optimum(&instance).expect("open only");
            Theorem61Row {
                n,
                ratio: acyclic / cyclic,
                bound: theorem61_ratio_bound(n),
            }
        })
        .collect()
}

/// Bundled worst-case report (all four sweeps), used by the `worst_case` binary and bench.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCaseReport {
    /// ε sweep of the 5/7 family.
    pub figure18: Vec<Figure18Row>,
    /// `k` sweep of the Theorem 6.3 family.
    pub theorem63: Vec<Theorem63Row>,
    /// `m` sweep of the Figure 6 family.
    pub figure6: Vec<Figure6Row>,
    /// `n` sweep of the Theorem 6.1 bound.
    pub theorem61: Vec<Theorem61Row>,
}

/// Runs all four worst-case sweeps with default parameters (`quick` shrinks them).
#[must_use]
pub fn run(quick: bool) -> WorstCaseReport {
    if quick {
        WorstCaseReport {
            figure18: figure18_sweep(15),
            theorem63: theorem63_sweep(2),
            figure6: figure6_sweep(&[2, 4, 8, 16]),
            theorem61: theorem61_sweep(&[2, 5, 10, 20]),
        }
    } else {
        WorstCaseReport {
            figure18: figure18_sweep(101),
            theorem63: theorem63_sweep(8),
            figure6: figure6_sweep(&[2, 4, 8, 16, 32, 64, 128, 256]),
            theorem61: theorem61_sweep(&[2, 5, 10, 20, 50, 100, 200, 500]),
        }
    }
}

impl WorstCaseReport {
    /// Renders all sweeps as a single CSV table with a `family` discriminating column.
    #[must_use]
    pub fn to_csv(&self) -> CsvTable {
        let mut table = CsvTable::new(&["family", "parameter", "value1", "value2", "value3"]);
        for row in &self.figure18 {
            table.push_row(vec![
                "figure18".into(),
                format!("{:.6}", row.epsilon),
                format!("{:.6}", row.acyclic),
                format!("{:.6}", row.cyclic),
                format!("{:.6}", row.ratio),
            ]);
        }
        for row in &self.theorem63 {
            table.push_row(vec![
                "theorem63".into(),
                format!("{}", row.k),
                format!("{:.6}", row.acyclic),
                format!("{:.6}", row.analytic_bound),
                format!("{}", row.n + row.m),
            ]);
        }
        for row in &self.figure6 {
            table.push_row(vec![
                "figure6".into(),
                format!("{}", row.m),
                format!("{}", row.cyclic_source_degree),
                format!("{}", row.degree_lower_bound),
                format!("{:.6}", row.acyclic_throughput),
            ]);
        }
        for row in &self.theorem61 {
            table.push_row(vec![
                "theorem61".into(),
                format!("{}", row.n),
                format!("{:.6}", row.ratio),
                format!("{:.6}", row.bound),
                String::new(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::bounds::{five_sevenths, theorem63_limit_ratio};

    #[test]
    fn figure18_minimum_is_five_sevenths_at_one_fourteenth() {
        let rows = figure18_sweep(57); // includes ε very close to 1/14
        let min = rows
            .iter()
            .min_by(|a, b| a.ratio.partial_cmp(&b.ratio).unwrap())
            .unwrap();
        assert!(
            (min.ratio - five_sevenths()).abs() < 5e-3,
            "min = {}",
            min.ratio
        );
        assert!((min.epsilon - 1.0 / 14.0).abs() < 0.02);
        // Everywhere the ratio stays within [5/7, 1].
        for row in &rows {
            assert!(row.ratio >= five_sevenths() - 1e-6);
            assert!(row.ratio <= 1.0 + 1e-6);
            assert!((row.cyclic - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn theorem63_rows_stay_below_the_analytic_bound() {
        let rows = theorem63_sweep(2);
        for row in &rows {
            assert!(row.acyclic <= row.analytic_bound + 1e-6);
            assert!(row.acyclic >= five_sevenths() - 1e-6);
            assert!((row.analytic_bound - theorem63_limit_ratio()).abs() < 0.01);
        }
    }

    #[test]
    fn figure6_degrees_grow_linearly() {
        let rows = figure6_sweep(&[2, 4, 8]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.cyclic_source_degree, row.m);
            assert_eq!(row.degree_lower_bound, 1);
            assert!(row.acyclic_throughput < 1.0);
        }
        // m = 1 entries are skipped.
        assert_eq!(figure6_sweep(&[1, 2]).len(), 1);
    }

    #[test]
    fn theorem61_bound_holds_and_tends_to_one() {
        let rows = theorem61_sweep(&[2, 10, 100]);
        for row in &rows {
            assert!(row.ratio + 1e-9 >= row.bound);
            assert!(row.ratio <= 1.0 + 1e-9);
        }
        assert!(rows[2].ratio > rows[0].ratio);
        assert!(rows[2].ratio > 0.99);
    }

    #[test]
    fn bundled_report_and_csv() {
        let report = run(true);
        let csv = report.to_csv();
        assert_eq!(
            csv.len(),
            report.figure18.len()
                + report.theorem63.len()
                + report.figure6.len()
                + report.theorem61.len()
        );
        assert!(csv.to_csv_string().contains("figure18"));
        assert!(csv.to_csv_string().contains("theorem61"));
    }
}
