//! CSR flow kernel: a flat arc arena plus a reusable solver workspace.
//!
//! Every algorithm in the workspace scores schemes through `min_k maxflow(source → C_k)`,
//! so the flow substrate is the hottest layer of the codebase. This module replaces the
//! former pointer-chasing `Vec<Vec<usize>>` residual representation with:
//!
//! * [`FlowArena`] — an immutable compressed-sparse-row (CSR) arc arena built once per
//!   network: flat `start`/`to`/`partner`/`base_cap` arrays, residual arcs of a node stored
//!   contiguously for cache-friendly scans, plus a precomputed per-node in-capacity.
//! * [`FlowSolver`] — a reusable workspace owning every mutable buffer the solvers need
//!   (residual capacities, BFS levels, current-arc cursors, queues, push-relabel state).
//!   After warm-up, repeated solves perform **no heap allocation**: buffers are cleared and
//!   refilled in place (this is asserted by a counting-allocator test).
//! * [`FlowSolver::min_max_flow`] — the batched multi-sink evaluator behind
//!   `BroadcastScheme::throughput`: sinks are visited in ascending in-capacity order so a
//!   tight minimum is found early, and each subsequent max-flow is capped at the running
//!   minimum (a sink whose flow reaches the cap cannot lower the minimum, so its solve
//!   terminates early). The result is exactly equal to evaluating every sink in full.
//! * [`min_max_flow_parallel`] — the same evaluation fanned out over the persistent
//!   worker pool ([`crate::pool::FlowPool`]) for large instances, one long-lived solver
//!   workspace per worker, sharing the running minimum through an atomic so late sinks
//!   still benefit from early-exit caps. [`min_max_flow_scoped`] keeps the old per-call
//!   scoped-thread fan-out as the A/B baseline.

use crate::eps;
use crate::graph::{FlowNetwork, FlowResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "no arc" in parent arrays.
pub(crate) const NO_ARC: u32 = u32::MAX;

/// Process-wide structure-epoch counter for [`FlowArena`].
///
/// Each [`FlowArena::from_edges`] call mints a fresh epoch, so two arenas share an epoch
/// only if one was cloned from the other (same node count, same arc layout, same edge
/// insertion order). In-place capacity mutation (`set_edge_capacities`,
/// `patch_edge_capacities`) deliberately keeps the epoch: the *structure* is unchanged,
/// and warm residual states (see [`crate::incremental`]) detect capacity drift by
/// snapshot diffing, not by epoch.
static ARENA_EPOCHS: AtomicU64 = AtomicU64::new(1);

/// Immutable CSR residual arena for one network.
///
/// Input edge `k` contributes a forward arc (capacity `c_k`) and a backward arc
/// (capacity 0); both live in the flat arrays below, grouped by tail node. The arena
/// carries no mutable solver state — residual capacities live in [`FlowSolver`], so one
/// arena can be shared by any number of solvers (including across threads).
#[derive(Debug, Clone)]
pub struct FlowArena {
    pub(crate) num_nodes: usize,
    pub(crate) num_edges: usize,
    /// `start[v]..start[v + 1]` is the CSR arc range of node `v` (length `n + 1`).
    pub(crate) start: Vec<u32>,
    /// Head node of each arc (length `2m`).
    pub(crate) to: Vec<u32>,
    /// Position of each arc's reverse arc (length `2m`).
    pub(crate) partner: Vec<u32>,
    /// Initial residual capacity of each arc: `c_k` forward, `0` backward (length `2m`).
    pub(crate) base_cap: Vec<f64>,
    /// CSR position of the forward arc of input edge `k` (length `m`).
    pub(crate) edge_pos: Vec<u32>,
    /// Structure identity: minted by [`FlowArena::from_edges`], preserved by clones and
    /// in-place capacity updates. Warm residual caches key on this (see
    /// [`crate::incremental`]).
    epoch: u64,
    /// Total capacity entering each node (length `n`).
    in_cap: Vec<f64>,
    /// `in_start[v]..in_start[v + 1]` indexes `in_edges` (length `n + 1`).
    in_start: Vec<u32>,
    /// Input-edge ids grouped by head node, ascending within each group (length `m`).
    /// This is the summation order of [`FlowArena::from_edges`] restricted to one head,
    /// which is what lets [`FlowArena::patch_edge_capacities`] recompute a patched node's
    /// in-capacity bit-for-bit identically to a full rebuild.
    in_edges: Vec<u32>,
}

/// Structural + capacity equality. The `epoch` is deliberately excluded: an arena
/// rebuilt from scratch over the same edges compares equal to one updated in place even
/// though their warm-cache identities differ (equality answers "same network?", the
/// epoch answers "may residual state be reused without re-validation?").
impl PartialEq for FlowArena {
    fn eq(&self, other: &Self) -> bool {
        self.num_nodes == other.num_nodes
            && self.num_edges == other.num_edges
            && self.start == other.start
            && self.to == other.to
            && self.partner == other.partner
            && self.base_cap == other.base_cap
            && self.edge_pos == other.edge_pos
            && self.in_cap == other.in_cap
            && self.in_start == other.in_start
            && self.in_edges == other.in_edges
    }
}

impl FlowArena {
    /// Builds the arena from explicit edge triples.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or a capacity is negative or not finite.
    #[must_use]
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize, f64)]) -> Self {
        let num_edges = edges.len();
        assert!(
            2 * num_edges < u32::MAX as usize && num_nodes < u32::MAX as usize,
            "network too large for u32 arc indices"
        );
        let mut degree = vec![0u32; num_nodes + 1];
        for &(from, to, capacity) in edges {
            assert!(from < num_nodes, "edge tail {from} out of range");
            assert!(to < num_nodes, "edge head {to} out of range");
            assert!(
                capacity.is_finite() && capacity >= 0.0,
                "capacity must be finite and non-negative, got {capacity}"
            );
            degree[from] += 1;
            degree[to] += 1;
        }
        let mut start = vec![0u32; num_nodes + 1];
        for v in 0..num_nodes {
            start[v + 1] = start[v] + degree[v];
        }
        let mut cursor: Vec<u32> = start[..num_nodes].to_vec();
        let mut to_arr = vec![0u32; 2 * num_edges];
        let mut partner = vec![0u32; 2 * num_edges];
        let mut base_cap = vec![0.0f64; 2 * num_edges];
        let mut edge_pos = vec![0u32; num_edges];
        let mut in_cap = vec![0.0f64; num_nodes];
        let mut in_start = vec![0u32; num_nodes + 1];
        for &(_, to, _) in edges {
            in_start[to + 1] += 1;
        }
        for v in 0..num_nodes {
            in_start[v + 1] += in_start[v];
        }
        let mut in_cursor: Vec<u32> = in_start[..num_nodes].to_vec();
        let mut in_edges = vec![0u32; num_edges];
        for (k, &(from, to, capacity)) in edges.iter().enumerate() {
            let forward = cursor[from];
            cursor[from] += 1;
            let backward = cursor[to];
            cursor[to] += 1;
            to_arr[forward as usize] = to as u32;
            base_cap[forward as usize] = capacity;
            to_arr[backward as usize] = from as u32;
            base_cap[backward as usize] = 0.0;
            partner[forward as usize] = backward;
            partner[backward as usize] = forward;
            edge_pos[k] = forward;
            in_cap[to] += capacity;
            in_edges[in_cursor[to] as usize] = k as u32;
            in_cursor[to] += 1;
        }
        FlowArena {
            num_nodes,
            num_edges,
            start,
            to: to_arr,
            partner,
            base_cap,
            edge_pos,
            epoch: ARENA_EPOCHS.fetch_add(1, Ordering::Relaxed),
            in_cap,
            in_start,
            in_edges,
        }
    }

    /// Builds the arena from a [`FlowNetwork`] (same arc order as edge insertion order).
    #[must_use]
    pub fn from_network(network: &FlowNetwork) -> Self {
        let edges: Vec<(usize, usize, f64)> = network
            .edges()
            .iter()
            .map(|e| (e.from, e.to, e.capacity))
            .collect();
        FlowArena::from_edges(network.num_nodes(), &edges)
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Structure epoch: a process-unique id minted when the arena was built from edges.
    ///
    /// Clones and in-place capacity updates ([`FlowArena::set_edge_capacities`],
    /// [`FlowArena::patch_edge_capacities`]) keep the epoch — the arc layout is
    /// unchanged, and warm residual states track capacity drift themselves via snapshot
    /// diffing. A rebuild through [`FlowArena::from_edges`] always mints a new epoch,
    /// which is what invalidates warm states across edge-set changes.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of input edges (half the number of residual arcs).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total capacity entering `node` (precomputed; `O(1)`).
    #[must_use]
    pub fn in_capacity(&self, node: usize) -> f64 {
        self.in_cap[node]
    }

    /// Endpoints `(tail, head)` of input edge `edge` (insertion order of
    /// [`FlowArena::from_edges`]).
    ///
    /// # Panics
    ///
    /// Panics if `edge >= num_edges`.
    #[must_use]
    pub fn edge_endpoints(&self, edge: usize) -> (usize, usize) {
        let forward = self.edge_pos[edge] as usize;
        let head = self.to[forward] as usize;
        let tail = self.to[self.partner[forward] as usize] as usize;
        (tail, head)
    }

    /// Capacity currently assigned to input edge `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge >= num_edges`.
    #[must_use]
    pub fn edge_capacity(&self, edge: usize) -> f64 {
        self.base_cap[self.edge_pos[edge] as usize]
    }

    /// Overwrites every input edge's capacity in place (`capacities[k]` is the new
    /// capacity of edge `k`).
    ///
    /// This is the incremental-update path used by evaluation contexts that re-score
    /// near-identical networks (e.g. the dichotomic search probing a scheme whose edge
    /// *set* is fixed while the rates move): instead of rebuilding the arena — degree
    /// counting, prefix sums, and five array allocations — only the capacities and the
    /// in-capacity sums are rewritten. The result is bit-for-bit the arena that
    /// [`FlowArena::from_edges`] would build over the same edge set with the new
    /// capacities — in-capacities are resummed in insertion order — without any
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len() != num_edges` or any capacity is negative or not
    /// finite.
    pub fn set_edge_capacities(&mut self, capacities: &[f64]) {
        assert_eq!(
            capacities.len(),
            self.num_edges,
            "expected one capacity per input edge"
        );
        self.in_cap.fill(0.0);
        for (edge, &capacity) in capacities.iter().enumerate() {
            assert!(
                capacity.is_finite() && capacity >= 0.0,
                "capacity must be finite and non-negative, got {capacity}"
            );
            let forward = self.edge_pos[edge] as usize;
            self.base_cap[forward] = capacity;
            self.in_cap[self.to[forward] as usize] += capacity;
        }
    }

    /// Overwrites the capacities of a *sparse* set of input edges in place
    /// (`patches[i] = (edge_idx, new_capacity)`, insertion-order edge indices).
    ///
    /// This is the journaled-update path used by evaluation contexts whose caller knows
    /// exactly which edges moved since the arena was last current (a dirty-edge journal on
    /// the scheme being probed): instead of rewriting every capacity
    /// ([`FlowArena::set_edge_capacities`]) — let alone rescanning an O(n²) rate matrix to
    /// find the changes — only the touched capacities are written and only the affected
    /// heads' in-capacities are recomputed. Each affected head is resummed over its
    /// incoming edges in insertion order, so the result is bit-for-bit the arena that
    /// [`FlowArena::from_edges`] would build with the patched capacities. Duplicate edge
    /// indices are allowed (the last write wins), and no allocation is performed.
    ///
    /// # Panics
    ///
    /// Panics if an edge index is `>= num_edges` or a capacity is negative or not finite.
    pub fn patch_edge_capacities(&mut self, patches: &[(usize, f64)]) {
        for &(edge, capacity) in patches {
            assert!(edge < self.num_edges, "edge index {edge} out of range");
            assert!(
                capacity.is_finite() && capacity >= 0.0,
                "capacity must be finite and non-negative, got {capacity}"
            );
            self.base_cap[self.edge_pos[edge] as usize] = capacity;
        }
        // Second pass so duplicate heads are resummed only over final capacities
        // (resumming the same head more than once is redundant but harmless).
        for &(edge, _) in patches {
            let head = self.to[self.edge_pos[edge] as usize] as usize;
            let incoming = self.in_start[head] as usize..self.in_start[head + 1] as usize;
            self.in_cap[head] = incoming
                .map(|slot| self.base_cap[self.edge_pos[self.in_edges[slot] as usize] as usize])
                .sum();
        }
    }

    /// Total capacity leaving `node` (`O(out-degree)`).
    #[must_use]
    pub fn out_capacity(&self, node: usize) -> f64 {
        let range = self.start[node] as usize..self.start[node + 1] as usize;
        range.map(|arc| self.base_cap[arc]).sum()
    }

    /// Fills `order` with `sinks` sorted ascending by in-capacity (ties by node id).
    ///
    /// This is the evaluation order shared by [`FlowSolver::min_max_flow`] and
    /// [`min_max_flow_parallel`]; the two must visit sinks identically, so the ordering
    /// lives in one place. Reuses `order`'s allocation.
    ///
    /// # Panics
    ///
    /// Panics if a sink is out of range.
    pub(crate) fn order_sinks_into(&self, sinks: &[usize], order: &mut Vec<u32>) {
        order.clear();
        order.extend(sinks.iter().map(|&sink| {
            assert!(sink < self.num_nodes, "sink out of range");
            sink as u32
        }));
        order.sort_unstable_by(|&a, &b| {
            self.in_cap[a as usize]
                .partial_cmp(&self.in_cap[b as usize])
                .expect("capacities are finite")
                .then(a.cmp(&b))
        });
    }
}

/// Reusable max-flow workspace.
///
/// All buffers are owned by the solver and resized lazily to the arena's dimensions, so a
/// solver can be reused across networks of different sizes; in steady state (same-or-smaller
/// arena) a solve performs no heap allocation. A fresh default solver is cheap — reuse is
/// what makes the batched evaluators fast, not construction cost.
#[derive(Debug, Default, Clone)]
pub struct FlowSolver {
    /// Residual capacities, indexed like the arena's arc arrays.
    pub(crate) cap: Vec<f64>,
    /// BFS level of each node (Dinic).
    pub(crate) level: Vec<i32>,
    /// Current-arc cursor of each node, an absolute CSR position (Dinic).
    pub(crate) iter: Vec<u32>,
    /// BFS queue (Dinic, Edmonds–Karp) / FIFO ring buffer (push-relabel).
    pub(crate) queue: Vec<u32>,
    /// Arc used to reach each node (Edmonds–Karp).
    pub(crate) parent_arc: Vec<u32>,
    /// Bottleneck capacity along the BFS tree path (Edmonds–Karp).
    bottleneck: Vec<f64>,
    /// Node heights (push-relabel).
    height: Vec<u32>,
    /// Node excesses (push-relabel).
    excess: Vec<f64>,
    /// Whether a node is queued (push-relabel).
    in_queue: Vec<bool>,
    /// Sink ordering scratch for [`FlowSolver::min_max_flow`].
    pub(crate) sinks: Vec<u32>,
}

impl FlowSolver {
    /// Creates an empty solver; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        FlowSolver::default()
    }

    /// Creates a solver with buffers pre-sized for `num_nodes` / `num_edges`.
    #[must_use]
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        let mut solver = FlowSolver::default();
        solver.cap.reserve(2 * num_edges);
        solver.level.reserve(num_nodes);
        solver.iter.reserve(num_nodes);
        solver.queue.reserve(num_nodes + 1);
        solver
    }

    /// Resets residual capacities to the arena's base capacities.
    fn load_caps(&mut self, arena: &FlowArena) {
        self.cap.clear();
        self.cap.extend_from_slice(&arena.base_cap);
    }

    /// Maximum-flow value from `source` to `sink` (Dinic). Buffers are reused.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `sink` is out of range.
    pub fn max_flow(&mut self, arena: &FlowArena, source: usize, sink: usize) -> f64 {
        self.max_flow_limited(arena, source, sink, f64::INFINITY)
    }

    /// Like [`FlowSolver::max_flow`], but stops augmenting as soon as the accumulated flow
    /// reaches `limit`.
    ///
    /// The return value is exact when it is below `limit`; when it is `>= limit` it is a
    /// certificate that the true maximum flow is at least that large (the batched
    /// evaluators only need this one-sided information).
    pub fn max_flow_limited(
        &mut self,
        arena: &FlowArena,
        source: usize,
        sink: usize,
        limit: f64,
    ) -> f64 {
        assert!(source < arena.num_nodes, "source out of range");
        assert!(sink < arena.num_nodes, "sink out of range");
        if source == sink || limit <= 0.0 {
            return 0.0;
        }
        self.load_caps(arena);
        self.level.resize(arena.num_nodes, -1);
        self.iter.resize(arena.num_nodes, 0);
        self.queue.resize(arena.num_nodes + 1, 0);
        let mut total = 0.0;
        while total < limit
            && Self::bfs_levels(
                arena,
                &self.cap,
                &mut self.level,
                &mut self.queue,
                source,
                sink,
            )
        {
            for v in 0..arena.num_nodes {
                self.iter[v] = arena.start[v];
            }
            loop {
                let pushed = Self::dfs_augment(
                    arena,
                    &mut self.cap,
                    &self.level,
                    &mut self.iter,
                    source as u32,
                    sink as u32,
                    f64::INFINITY,
                );
                if !eps::is_positive(pushed) {
                    break;
                }
                total += pushed;
                if total >= limit {
                    return total;
                }
            }
        }
        total
    }

    /// Maximum flow with per-edge flow extraction (Dinic).
    pub fn max_flow_result(&mut self, arena: &FlowArena, source: usize, sink: usize) -> FlowResult {
        let mut edge_flows = Vec::new();
        let value = self.max_flow_result_into(arena, source, sink, &mut edge_flows);
        FlowResult { value, edge_flows }
    }

    /// Like [`FlowSolver::max_flow_result`], but writes the per-edge flows into a
    /// caller-owned buffer instead of allocating a fresh `Vec` per call.
    ///
    /// `edge_flows` is cleared and refilled (one entry per input edge, insertion order);
    /// in steady state — a buffer that has already reached `num_edges` capacity — the
    /// call performs no heap allocation, which is what the repair / simulation loops
    /// that extract flows every tick rely on. Returns the flow value.
    pub fn max_flow_result_into(
        &mut self,
        arena: &FlowArena,
        source: usize,
        sink: usize,
        edge_flows: &mut Vec<f64>,
    ) -> f64 {
        assert!(source < arena.num_nodes, "source out of range");
        assert!(sink < arena.num_nodes, "sink out of range");
        if source == sink {
            // `max_flow` skips the solve (and the capacity load) for this case, so there
            // is no residual state to extract flows from.
            edge_flows.clear();
            edge_flows.resize(arena.num_edges, 0.0);
            return 0.0;
        }
        let value = self.max_flow(arena, source, sink);
        self.extract_edge_flows_into(arena, edge_flows);
        value
    }

    /// Per-edge flows of the last solve, reusing `edge_flows`' allocation: original
    /// capacity minus remaining forward residual, clamped to `[0, ∞)`.
    pub fn extract_edge_flows_into(&self, arena: &FlowArena, edge_flows: &mut Vec<f64>) {
        edge_flows.clear();
        edge_flows.extend(arena.edge_pos.iter().map(|&pos| {
            eps::clamp_nonnegative(arena.base_cap[pos as usize] - self.cap[pos as usize]).max(0.0)
        }));
    }

    /// Breadth-first search building the Dinic level graph; `true` iff the sink is reachable.
    // The CSR range indexes two parallel arrays (`to` and `cap`); an iterator over one of
    // them would hide that coupling.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn bfs_levels(
        arena: &FlowArena,
        cap: &[f64],
        level: &mut [i32],
        queue: &mut [u32],
        source: usize,
        sink: usize,
    ) -> bool {
        level.fill(-1);
        level[source] = 0;
        queue[0] = source as u32;
        let (mut head, mut tail) = (0usize, 1usize);
        while head < tail {
            let node = queue[head] as usize;
            head += 1;
            for arc in arena.start[node] as usize..arena.start[node + 1] as usize {
                let to = arena.to[arc] as usize;
                if level[to] < 0 && eps::is_positive(cap[arc]) {
                    level[to] = level[node] + 1;
                    queue[tail] = to as u32;
                    tail += 1;
                }
            }
        }
        level[sink] >= 0
    }

    /// Depth-first search pushing flow along the level graph (current-arc variant).
    pub(crate) fn dfs_augment(
        arena: &FlowArena,
        cap: &mut [f64],
        level: &[i32],
        iter: &mut [u32],
        node: u32,
        sink: u32,
        limit: f64,
    ) -> f64 {
        if node == sink {
            return limit;
        }
        let node_idx = node as usize;
        let end = arena.start[node_idx + 1];
        while iter[node_idx] < end {
            let arc = iter[node_idx] as usize;
            let to = arena.to[arc];
            if level[to as usize] == level[node_idx] + 1 && eps::is_positive(cap[arc]) {
                let pushed =
                    Self::dfs_augment(arena, cap, level, iter, to, sink, limit.min(cap[arc]));
                if eps::is_positive(pushed) {
                    cap[arc] -= pushed;
                    cap[arena.partner[arc] as usize] += pushed;
                    return pushed;
                }
            }
            iter[node_idx] += 1;
        }
        0.0
    }

    /// Maximum flow via shortest augmenting paths (Edmonds–Karp), with edge flows.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `sink` is out of range.
    pub fn edmonds_karp(&mut self, arena: &FlowArena, source: usize, sink: usize) -> FlowResult {
        assert!(source < arena.num_nodes, "source out of range");
        assert!(sink < arena.num_nodes, "sink out of range");
        if source == sink {
            return FlowResult {
                value: 0.0,
                edge_flows: vec![0.0; arena.num_edges],
            };
        }
        self.load_caps(arena);
        self.parent_arc.resize(arena.num_nodes, NO_ARC);
        self.bottleneck.resize(arena.num_nodes, 0.0);
        self.queue.resize(arena.num_nodes + 1, 0);
        let mut total = 0.0;
        loop {
            self.parent_arc.fill(NO_ARC);
            self.bottleneck[source] = f64::INFINITY;
            self.queue[0] = source as u32;
            let (mut head, mut tail) = (0usize, 1usize);
            let mut found = 0.0;
            'bfs: while head < tail {
                let node = self.queue[head] as usize;
                head += 1;
                for arc in arena.start[node] as usize..arena.start[node + 1] as usize {
                    let to = arena.to[arc] as usize;
                    if to != source
                        && self.parent_arc[to] == NO_ARC
                        && eps::is_positive(self.cap[arc])
                    {
                        self.parent_arc[to] = arc as u32;
                        self.bottleneck[to] = self.bottleneck[node].min(self.cap[arc]);
                        if to == sink {
                            found = self.bottleneck[sink];
                            break 'bfs;
                        }
                        self.queue[tail] = to as u32;
                        tail += 1;
                    }
                }
            }
            if !eps::is_positive(found) {
                break;
            }
            total += found;
            let mut node = sink;
            while node != source {
                let arc = self.parent_arc[node] as usize;
                self.cap[arc] -= found;
                let partner = arena.partner[arc] as usize;
                self.cap[partner] += found;
                node = arena.to[partner] as usize;
            }
        }
        let mut edge_flows = Vec::new();
        self.extract_edge_flows_into(arena, &mut edge_flows);
        FlowResult {
            value: total,
            edge_flows,
        }
    }

    /// Maximum flow via FIFO push-relabel, with edge flows.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `sink` is out of range.
    pub fn push_relabel(&mut self, arena: &FlowArena, source: usize, sink: usize) -> FlowResult {
        assert!(source < arena.num_nodes, "source out of range");
        assert!(sink < arena.num_nodes, "sink out of range");
        if source == sink {
            return FlowResult {
                value: 0.0,
                edge_flows: vec![0.0; arena.num_edges],
            };
        }
        self.load_caps(arena);
        let n = arena.num_nodes;
        self.height.resize(n, 0);
        self.height.fill(0);
        self.excess.resize(n, 0.0);
        self.excess.fill(0.0);
        self.in_queue.resize(n, false);
        self.in_queue.fill(false);
        // FIFO ring buffer: `in_queue` guarantees at most one entry per node, so `n + 1`
        // slots can never overflow.
        self.queue.resize(n + 1, 0);
        let ring = n + 1;
        let (mut head, mut tail) = (0usize, 0usize);
        self.height[source] = n as u32;

        // Saturate every arc leaving the source.
        for arc in arena.start[source] as usize..arena.start[source + 1] as usize {
            let capacity = self.cap[arc];
            if !eps::is_positive(capacity) {
                continue;
            }
            let to = arena.to[arc] as usize;
            self.cap[arc] = 0.0;
            self.cap[arena.partner[arc] as usize] += capacity;
            self.excess[to] += capacity;
            self.excess[source] -= capacity;
            if to != sink && to != source && !self.in_queue[to] {
                self.in_queue[to] = true;
                self.queue[tail] = to as u32;
                tail = (tail + 1) % ring;
            }
        }

        while head != tail {
            let node = self.queue[head] as usize;
            head = (head + 1) % ring;
            self.in_queue[node] = false;
            // Discharge `node`.
            while eps::is_positive(self.excess[node]) {
                let mut pushed_any = false;
                for arc in arena.start[node] as usize..arena.start[node + 1] as usize {
                    if !eps::is_positive(self.excess[node]) {
                        break;
                    }
                    let to = arena.to[arc] as usize;
                    if eps::is_positive(self.cap[arc]) && self.height[node] == self.height[to] + 1 {
                        let delta = self.excess[node].min(self.cap[arc]);
                        self.cap[arc] -= delta;
                        self.cap[arena.partner[arc] as usize] += delta;
                        self.excess[node] -= delta;
                        self.excess[to] += delta;
                        pushed_any = true;
                        if to != source && to != sink && !self.in_queue[to] {
                            self.in_queue[to] = true;
                            self.queue[tail] = to as u32;
                            tail = (tail + 1) % ring;
                        }
                    }
                }
                if eps::is_positive(self.excess[node]) && !pushed_any {
                    // Relabel just above the lowest admissible neighbour.
                    let mut min_height = u32::MAX;
                    for arc in arena.start[node] as usize..arena.start[node + 1] as usize {
                        if eps::is_positive(self.cap[arc]) {
                            min_height = min_height.min(self.height[arena.to[arc] as usize]);
                        }
                    }
                    if min_height == u32::MAX || min_height as usize + 1 > 2 * n {
                        // The remaining excess cannot reach the sink.
                        break;
                    }
                    self.height[node] = min_height + 1;
                }
            }
        }

        let mut edge_flows = Vec::new();
        self.extract_edge_flows_into(arena, &mut edge_flows);
        FlowResult {
            value: self.excess[sink].max(0.0),
            edge_flows,
        }
    }

    /// Minimum over `sinks` of the maximum flow from `source` — the batched evaluator
    /// behind `BroadcastScheme::throughput`.
    ///
    /// Returns `f64::INFINITY` when `sinks` is empty (the identity of `min`), mirroring a
    /// fold over individually computed flows. The result is **exactly** equal to computing
    /// every max-flow in full and taking the minimum:
    ///
    /// * sinks are evaluated in ascending in-capacity order, so a tight minimum is usually
    ///   established after the first solve;
    /// * each subsequent solve is capped at the running minimum — a sink whose flow reaches
    ///   the cap cannot lower the minimum, so terminating it early never changes the result,
    ///   and a sink whose true flow is below the cap is computed exactly;
    /// * a running minimum of zero short-circuits the remaining sinks.
    pub fn min_max_flow(&mut self, arena: &FlowArena, source: usize, sinks: &[usize]) -> f64 {
        let mut order = std::mem::take(&mut self.sinks);
        arena.order_sinks_into(sinks, &mut order);
        let mut minimum = f64::INFINITY;
        for &sink in &order {
            if minimum <= 0.0 {
                break;
            }
            let flow = self.max_flow_limited(arena, source, sink as usize, minimum);
            if flow < minimum {
                minimum = flow;
            }
        }
        self.sinks = order;
        minimum
    }
}

/// Worker-count heuristic for [`min_max_flow_parallel`]: how many threads are worth
/// spawning for a multi-sink evaluation of `num_sinks` sinks on a `num_nodes`-node arena.
///
/// Small evaluations are dominated by per-lane warm-up, so the heuristic stays
/// sequential below 512 nodes or 96 sinks. The original thresholds (1000 nodes / 128
/// sinks) were tuned against the scoped-thread fan-out, whose per-call cost was a
/// thread spawn and join per lane; the persistent [`crate::pool::FlowPool`] replaced
/// that with a queue push to already-warm workers, so the entry bar dropped — the
/// `worker_pool` group of `crates/bench/benches/throughput.rs` shows the pool matching
/// the sequential evaluator at sizes where the scoped fan-out still lost. Above the
/// thresholds it uses the machine's available parallelism, capped at 8 so evaluation
/// fan-out stays polite inside already-parallel sweeps (on a single-core host it
/// therefore always returns 1, and fan-out costs nothing where it cannot win).
#[must_use]
pub fn suggested_flow_threads(num_nodes: usize, num_sinks: usize) -> usize {
    if num_nodes < 512 || num_sinks < 96 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// [`FlowSolver::min_max_flow`] fanned out over the persistent worker pool
/// ([`crate::pool::FlowPool::global`]).
///
/// This is a thin convenience wrapper for borrowed arenas: the pool hands work to
/// long-lived threads, so the arena is cloned into an [`std::sync::Arc`] for the call
/// (one memcpy of the CSR arrays — noise next to a multi-sink solve at the sizes where
/// fan-out pays). Hot paths that evaluate repeatedly should hold an
/// `Arc<FlowArena>` themselves and call [`crate::pool::FlowPool::min_max_flow_with`]
/// directly, reusing their submitter workspace and skipping the clone; `bmp-core`'s
/// evaluation context does exactly that.
///
/// `threads <= 1` falls back to the sequential evaluator. Returns `f64::INFINITY` for an
/// empty `sinks`. The result is bit-for-bit the sequential evaluation either way.
#[must_use]
pub fn min_max_flow_parallel(
    arena: &FlowArena,
    source: usize,
    sinks: &[usize],
    threads: usize,
) -> f64 {
    let mut solver = FlowSolver::new();
    if threads.min(sinks.len()) <= 1 {
        return solver.min_max_flow(arena, source, sinks);
    }
    let arena = std::sync::Arc::new(arena.clone());
    crate::pool::FlowPool::global().min_max_flow_with(&mut solver, &arena, source, sinks, threads)
}

/// [`FlowSolver::min_max_flow`] fanned out over per-call scoped threads — the PR-3
/// fan-out, kept as the A/B baseline the `worker_pool` benchmark group measures the
/// persistent pool against (and as a fallback for callers that must not share the
/// process-wide pool).
///
/// Each worker owns a private [`FlowSolver`] and pulls sinks from the same
/// ascending-in-capacity order (strided), publishing the running minimum through an atomic
/// so every solve is capped by the best bound known so far. Exactness is preserved: a solve
/// stopped by a (possibly stale, therefore never too small) cap had a flow at least as
/// large as the final minimum, so discarding its exact value cannot change the result.
///
/// `threads <= 1` falls back to the sequential evaluator. Returns `f64::INFINITY` for an
/// empty `sinks`.
#[must_use]
pub fn min_max_flow_scoped(
    arena: &FlowArena,
    source: usize,
    sinks: &[usize],
    threads: usize,
) -> f64 {
    use std::sync::atomic::{AtomicU64, Ordering};

    let workers = threads.min(sinks.len());
    if workers <= 1 {
        return FlowSolver::new().min_max_flow(arena, source, sinks);
    }
    let mut order = Vec::new();
    arena.order_sinks_into(sinks, &mut order);
    // Non-negative IEEE-754 doubles (flows and +inf) order identically to their bit
    // patterns, so the shared minimum can be a single `AtomicU64` updated with `fetch_min`.
    let shared_min = AtomicU64::new(f64::INFINITY.to_bits());
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let order = &order;
            let shared_min = &shared_min;
            scope.spawn(move || {
                let mut solver = FlowSolver::new();
                let mut index = worker;
                while index < order.len() {
                    let cap = f64::from_bits(shared_min.load(Ordering::Acquire));
                    if cap <= 0.0 {
                        break;
                    }
                    let flow = solver.max_flow_limited(arena, source, order[index] as usize, cap);
                    shared_min.fetch_min(flow.to_bits(), Ordering::AcqRel);
                    index += workers;
                }
            });
        }
    });
    f64::from_bits(shared_min.load(Ordering::Acquire))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_arena() -> FlowArena {
        FlowArena::from_edges(
            4,
            &[
                (0, 1, 3.0),
                (0, 2, 2.0),
                (1, 3, 2.0),
                (2, 3, 4.0),
                (1, 2, 5.0),
            ],
        )
    }

    #[test]
    fn arena_layout_is_consistent() {
        let arena = diamond_arena();
        assert_eq!(arena.num_nodes(), 4);
        assert_eq!(arena.num_edges(), 5);
        assert_eq!(arena.start.len(), 5);
        assert_eq!(arena.to.len(), 10);
        // Every arc's partner points back.
        for arc in 0..arena.to.len() {
            assert_eq!(arena.partner[arena.partner[arc] as usize] as usize, arc);
        }
        // In-capacities are maintained.
        assert!((arena.in_capacity(3) - 6.0).abs() < 1e-12);
        assert!((arena.in_capacity(2) - 7.0).abs() < 1e-12);
        assert_eq!(arena.in_capacity(0), 0.0);
        assert!((arena.out_capacity(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dinic_on_arena_matches_known_value() {
        let arena = diamond_arena();
        let mut solver = FlowSolver::new();
        assert!((solver.max_flow(&arena, 0, 3) - 5.0).abs() < 1e-9);
        // Reuse for a different terminal pair without rebuilding anything.
        assert!((solver.max_flow(&arena, 0, 2) - 5.0).abs() < 1e-9);
        assert!((solver.max_flow(&arena, 1, 3) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn limited_solve_stops_early_but_never_underreports() {
        let arena = diamond_arena();
        let mut solver = FlowSolver::new();
        let limited = solver.max_flow_limited(&arena, 0, 3, 1.0);
        assert!(limited >= 1.0);
        let full = solver.max_flow(&arena, 0, 3);
        assert!(limited <= full + 1e-12);
    }

    #[test]
    fn min_max_flow_matches_per_sink_evaluation() {
        let arena = diamond_arena();
        let mut solver = FlowSolver::new();
        let naive = [1usize, 2, 3]
            .iter()
            .map(|&sink| FlowSolver::new().max_flow(&arena, 0, sink))
            .fold(f64::INFINITY, f64::min);
        let batched = solver.min_max_flow(&arena, 0, &[1, 2, 3]);
        assert_eq!(batched, naive);
        assert_eq!(min_max_flow_parallel(&arena, 0, &[1, 2, 3], 3), naive);
        assert_eq!(min_max_flow_scoped(&arena, 0, &[1, 2, 3], 3), naive);
    }

    #[test]
    fn min_max_flow_empty_sinks_is_infinite() {
        let arena = diamond_arena();
        assert_eq!(
            FlowSolver::new().min_max_flow(&arena, 0, &[]),
            f64::INFINITY
        );
        assert_eq!(min_max_flow_parallel(&arena, 0, &[], 4), f64::INFINITY);
    }

    #[test]
    fn min_max_flow_zero_short_circuits() {
        // Node 3 is unreachable: the batched evaluator must report 0 and may skip the rest.
        let arena = FlowArena::from_edges(4, &[(0, 1, 2.0), (1, 2, 2.0)]);
        let mut solver = FlowSolver::new();
        assert_eq!(solver.min_max_flow(&arena, 0, &[1, 2, 3]), 0.0);
    }

    #[test]
    fn solver_reuse_across_different_arenas() {
        let mut solver = FlowSolver::new();
        let small = FlowArena::from_edges(2, &[(0, 1, 1.5)]);
        assert!((solver.max_flow(&small, 0, 1) - 1.5).abs() < 1e-12);
        let larger = diamond_arena();
        assert!((solver.max_flow(&larger, 0, 3) - 5.0).abs() < 1e-9);
        let tiny = FlowArena::from_edges(3, &[(0, 2, 0.25)]);
        assert!((solver.max_flow(&tiny, 0, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn edmonds_karp_and_push_relabel_agree_on_arena() {
        let arena = diamond_arena();
        let mut solver = FlowSolver::new();
        let dinic = solver.max_flow(&arena, 0, 3);
        let ek = solver.edmonds_karp(&arena, 0, 3);
        let pr = solver.push_relabel(&arena, 0, 3);
        assert!((ek.value - dinic).abs() < 1e-9);
        assert!((pr.value - dinic).abs() < 1e-9);
        assert_eq!(ek.edge_flows.len(), arena.num_edges());
        assert_eq!(pr.edge_flows.len(), arena.num_edges());
    }

    #[test]
    fn edge_accessors_follow_insertion_order() {
        let arena = diamond_arena();
        assert_eq!(arena.edge_endpoints(0), (0, 1));
        assert_eq!(arena.edge_endpoints(4), (1, 2));
        assert_eq!(arena.edge_capacity(0), 3.0);
        assert_eq!(arena.edge_capacity(3), 4.0);
    }

    #[test]
    fn in_place_capacity_update_matches_rebuild() {
        let edges = [
            (0usize, 1usize, 3.0),
            (0, 2, 2.0),
            (1, 3, 2.0),
            (2, 3, 4.0),
            (1, 2, 5.0),
        ];
        let mut updated = FlowArena::from_edges(4, &edges);
        let new_caps = [1.0, 7.0, 0.0, 2.5, 3.0];
        updated.set_edge_capacities(&new_caps);
        let rebuilt = FlowArena::from_edges(
            4,
            &edges
                .iter()
                .zip(new_caps)
                .map(|(&(from, to, _), cap)| (from, to, cap))
                .collect::<Vec<_>>(),
        );
        // The updated arena must be bit-for-bit the rebuilt one (same CSR layout, same
        // capacities, same in-capacities), so every downstream solve agrees exactly.
        assert_eq!(updated, rebuilt);
        let mut solver = FlowSolver::new();
        assert_eq!(
            solver.max_flow(&updated, 0, 3),
            solver.max_flow(&rebuilt, 0, 3)
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_capacity_update_is_rejected() {
        let mut arena = diamond_arena();
        arena.set_edge_capacities(&[1.0, 2.0, -1.0, 4.0, 5.0]);
    }

    #[test]
    fn sparse_patch_matches_rebuild() {
        let edges = [
            (0usize, 1usize, 3.0),
            (0, 2, 2.0),
            (1, 3, 2.0),
            (2, 3, 4.0),
            (1, 2, 5.0),
        ];
        let mut patched = FlowArena::from_edges(4, &edges);
        // Touch two edges, one of them twice (the last write must win).
        patched.patch_edge_capacities(&[(3, 9.0), (0, 1.25), (3, 0.75)]);
        let rebuilt = FlowArena::from_edges(
            4,
            &[
                (0, 1, 1.25),
                (0, 2, 2.0),
                (1, 3, 2.0),
                (2, 3, 0.75),
                (1, 2, 5.0),
            ],
        );
        // Bit-for-bit the rebuilt arena, including the resummed in-capacities.
        assert_eq!(patched, rebuilt);
        let mut solver = FlowSolver::new();
        assert_eq!(
            solver.max_flow(&patched, 0, 3),
            solver.max_flow(&rebuilt, 0, 3)
        );
        // An empty patch is a no-op.
        patched.patch_edge_capacities(&[]);
        assert_eq!(patched, rebuilt);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn patch_rejects_bad_edge_index() {
        diamond_arena().patch_edge_capacities(&[(5, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn patch_rejects_negative_capacity() {
        diamond_arena().patch_edge_capacities(&[(0, -2.0)]);
    }

    #[test]
    fn suggested_threads_stays_sequential_for_small_evaluations() {
        assert_eq!(suggested_flow_threads(511, 499), 1);
        assert_eq!(suggested_flow_threads(5000, 64), 1);
        assert_eq!(suggested_flow_threads(500, 95), 1);
        // At or above the pool-tuned thresholds the heuristic defers to available
        // parallelism (so it still returns 1 on a single-core host).
        for eligible in [
            suggested_flow_threads(512, 96),
            suggested_flow_threads(2000, 1999),
        ] {
            assert!((1..=8).contains(&eligible));
        }
    }

    #[test]
    fn parallel_workers_cap_from_shared_minimum() {
        // A wide instance where one sink has a much smaller flow than the others.
        let mut edges = Vec::new();
        let n = 40;
        for v in 1..n {
            edges.push((0, v, if v == 17 { 0.5 } else { 10.0 }));
        }
        let arena = FlowArena::from_edges(n, &edges);
        let sinks: Vec<usize> = (1..n).collect();
        let sequential = FlowSolver::new().min_max_flow(&arena, 0, &sinks);
        assert_eq!(sequential, 0.5);
        assert_eq!(min_max_flow_parallel(&arena, 0, &sinks, 8), 0.5);
        assert_eq!(min_max_flow_scoped(&arena, 0, &sinks, 8), 0.5);
    }
}
