//! Dinic's blocking-flow maximum-flow algorithm.
//!
//! Dinic's algorithm runs in `O(V² E)` independently of the capacity values, which makes it
//! safe for the real-valued capacities used throughout this workspace (no pseudo-polynomial
//! behaviour). Capacities below the workspace tolerance are ignored.
//!
//! The implementation lives in the CSR kernel ([`crate::csr::FlowSolver`]); this module is
//! the stable free-function entry point. Callers solving many flows on the same network
//! should build a [`crate::csr::FlowArena`] once and reuse a solver instead.

use crate::csr::FlowSolver;
use crate::graph::{FlowNetwork, FlowResult};

/// Computes a maximum flow from `source` to `sink` with Dinic's algorithm.
///
/// Convenience wrapper building a one-shot CSR arena and solver workspace.
///
/// # Panics
///
/// Panics if `source` or `sink` is out of range.
#[must_use]
pub fn dinic_max_flow(network: &FlowNetwork, source: usize, sink: usize) -> FlowResult {
    assert!(source < network.num_nodes(), "source out of range");
    assert!(sink < network.num_nodes(), "sink out of range");
    let arena = network.arena();
    FlowSolver::with_capacity(network.num_nodes(), network.num_edges())
        .max_flow_result(&arena, source, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowNetwork;

    fn diamond() -> FlowNetwork {
        // 0 → 1 → 3 and 0 → 2 → 3 with a cross edge 1 → 2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(2, 3, 4.0);
        net.add_edge(1, 2, 5.0);
        net
    }

    #[test]
    fn simple_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 1.5);
        let result = dinic_max_flow(&net, 0, 2);
        assert!((result.value - 1.5).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 2));
    }

    #[test]
    fn diamond_max_flow() {
        let net = diamond();
        let result = dinic_max_flow(&net, 0, 3);
        assert!((result.value - 5.0).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 3));
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(2, 3, 2.0);
        let result = dinic_max_flow(&net, 0, 3);
        assert_eq!(result.value, 0.0);
        assert!(result.is_valid(&net, 0, 3));
    }

    #[test]
    fn source_equals_sink() {
        let net = diamond();
        let result = dinic_max_flow(&net, 1, 1);
        assert_eq!(result.value, 0.0);
    }

    #[test]
    fn respects_fractional_capacities() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 0.3);
        net.add_edge(0, 2, 0.7);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 0.25);
        let result = dinic_max_flow(&net, 0, 3);
        assert!((result.value - 0.55).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 3));
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 1, 2.5);
        let result = dinic_max_flow(&net, 0, 1);
        assert!((result.value - 3.5).abs() < 1e-9);
    }

    #[test]
    fn back_edges_are_used() {
        // Classic example where the augmenting path must undo flow on the cross edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        let result = dinic_max_flow(&net, 0, 3);
        assert!((result.value - 2.0).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 3));
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn source_out_of_range() {
        let net = diamond();
        let _ = dinic_max_flow(&net, 9, 3);
    }
}
