//! Dinic's blocking-flow maximum-flow algorithm.
//!
//! Dinic's algorithm runs in `O(V² E)` independently of the capacity values, which makes it
//! safe for the real-valued capacities used throughout this workspace (no pseudo-polynomial
//! behaviour). Capacities below the workspace tolerance are ignored.

use crate::eps;
use crate::graph::{FlowNetwork, FlowResult, Residual};

/// Computes a maximum flow from `source` to `sink` with Dinic's algorithm.
///
/// # Panics
///
/// Panics if `source` or `sink` is out of range.
#[must_use]
pub fn dinic_max_flow(network: &FlowNetwork, source: usize, sink: usize) -> FlowResult {
    assert!(source < network.num_nodes(), "source out of range");
    assert!(sink < network.num_nodes(), "sink out of range");
    if source == sink {
        return FlowResult {
            value: 0.0,
            edge_flows: vec![0.0; network.num_edges()],
        };
    }
    let mut residual = network.residual();
    let mut total = 0.0;
    let mut level = vec![-1_i32; network.num_nodes()];
    let mut iter = vec![0_usize; network.num_nodes()];
    while bfs_levels(&residual, source, sink, &mut level) {
        iter.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = dfs_augment(
                &mut residual,
                source,
                sink,
                f64::INFINITY,
                &level,
                &mut iter,
            );
            if !eps::is_positive(pushed) {
                break;
            }
            total += pushed;
        }
    }
    FlowResult {
        value: total,
        edge_flows: residual.edge_flows(),
    }
}

/// Breadth-first search building the level graph; returns whether the sink is reachable.
fn bfs_levels(residual: &Residual, source: usize, sink: usize, level: &mut [i32]) -> bool {
    level.iter_mut().for_each(|l| *l = -1);
    level[source] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(node) = queue.pop_front() {
        for &arc in &residual.adj[node] {
            let to = residual.to[arc];
            if level[to] < 0 && eps::is_positive(residual.cap[arc]) {
                level[to] = level[node] + 1;
                queue.push_back(to);
            }
        }
    }
    level[sink] >= 0
}

/// Depth-first search pushing flow along the level graph (iterative-pointer variant).
fn dfs_augment(
    residual: &mut Residual,
    node: usize,
    sink: usize,
    limit: f64,
    level: &[i32],
    iter: &mut [usize],
) -> f64 {
    if node == sink {
        return limit;
    }
    while iter[node] < residual.adj[node].len() {
        let arc = residual.adj[node][iter[node]];
        let to = residual.to[arc];
        if level[to] == level[node] + 1 && eps::is_positive(residual.cap[arc]) {
            let pushed = dfs_augment(
                residual,
                to,
                sink,
                limit.min(residual.cap[arc]),
                level,
                iter,
            );
            if eps::is_positive(pushed) {
                residual.cap[arc] -= pushed;
                residual.cap[arc ^ 1] += pushed;
                return pushed;
            }
        }
        iter[node] += 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowNetwork;

    fn diamond() -> FlowNetwork {
        // 0 → 1 → 3 and 0 → 2 → 3 with a cross edge 1 → 2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(2, 3, 4.0);
        net.add_edge(1, 2, 5.0);
        net
    }

    #[test]
    fn simple_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 1.5);
        let result = dinic_max_flow(&net, 0, 2);
        assert!((result.value - 1.5).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 2));
    }

    #[test]
    fn diamond_max_flow() {
        let net = diamond();
        let result = dinic_max_flow(&net, 0, 3);
        assert!((result.value - 5.0).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 3));
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(2, 3, 2.0);
        let result = dinic_max_flow(&net, 0, 3);
        assert_eq!(result.value, 0.0);
        assert!(result.is_valid(&net, 0, 3));
    }

    #[test]
    fn source_equals_sink() {
        let net = diamond();
        let result = dinic_max_flow(&net, 1, 1);
        assert_eq!(result.value, 0.0);
    }

    #[test]
    fn respects_fractional_capacities() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 0.3);
        net.add_edge(0, 2, 0.7);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 0.25);
        let result = dinic_max_flow(&net, 0, 3);
        assert!((result.value - 0.55).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 3));
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 1, 2.5);
        let result = dinic_max_flow(&net, 0, 1);
        assert!((result.value - 3.5).abs() < 1e-9);
    }

    #[test]
    fn back_edges_are_used() {
        // Classic example where the augmenting path must undo flow on the cross edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        let result = dinic_max_flow(&net, 0, 3);
        assert!((result.value - 2.0).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 3));
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn source_out_of_range() {
        let net = diamond();
        let _ = dinic_max_flow(&net, 9, 3);
    }
}
