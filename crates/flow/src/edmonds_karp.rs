//! Edmonds–Karp maximum-flow algorithm (shortest augmenting paths).
//!
//! Used as an independent cross-check of [`crate::dinic`]: the two solvers are compared on
//! random networks by property tests. The implementation lives in the CSR kernel
//! ([`crate::csr::FlowSolver::edmonds_karp`]); this module is the free-function entry point.

use crate::csr::FlowSolver;
use crate::graph::{FlowNetwork, FlowResult};

/// Computes a maximum flow from `source` to `sink` with the Edmonds–Karp algorithm.
///
/// Convenience wrapper building a one-shot CSR arena and solver workspace.
///
/// # Panics
///
/// Panics if `source` or `sink` is out of range.
#[must_use]
pub fn edmonds_karp_max_flow(network: &FlowNetwork, source: usize, sink: usize) -> FlowResult {
    assert!(source < network.num_nodes(), "source out of range");
    assert!(sink < network.num_nodes(), "sink out of range");
    let arena = network.arena();
    FlowSolver::with_capacity(network.num_nodes(), network.num_edges())
        .edmonds_karp(&arena, source, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::dinic_max_flow;
    use crate::graph::FlowNetwork;

    #[test]
    fn matches_dinic_on_small_networks() {
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 10.0);
        net.add_edge(0, 2, 10.0);
        net.add_edge(1, 2, 2.0);
        net.add_edge(1, 3, 4.0);
        net.add_edge(1, 4, 8.0);
        net.add_edge(2, 4, 9.0);
        net.add_edge(4, 3, 6.0);
        net.add_edge(3, 5, 10.0);
        net.add_edge(4, 5, 10.0);
        let ek = edmonds_karp_max_flow(&net, 0, 5);
        let dn = dinic_max_flow(&net, 0, 5);
        assert!((ek.value - 19.0).abs() < 1e-9);
        assert!((ek.value - dn.value).abs() < 1e-9);
        assert!(ek.is_valid(&net, 0, 5));
    }

    #[test]
    fn zero_when_no_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(1, 2, 4.0);
        let result = edmonds_karp_max_flow(&net, 0, 2);
        assert_eq!(result.value, 0.0);
    }

    #[test]
    fn handles_source_equals_sink() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        let result = edmonds_karp_max_flow(&net, 0, 0);
        assert_eq!(result.value, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0.1);
        net.add_edge(0, 1, 0.2);
        net.add_edge(1, 2, 0.25);
        let result = edmonds_karp_max_flow(&net, 0, 2);
        assert!((result.value - 0.25).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 2));
    }
}
