//! Edmonds–Karp maximum-flow algorithm (shortest augmenting paths).
//!
//! Used as an independent cross-check of [`crate::dinic`]: the two solvers are compared on
//! random networks by property tests.

use crate::eps;
use crate::graph::{FlowNetwork, FlowResult, Residual};

/// Computes a maximum flow from `source` to `sink` with the Edmonds–Karp algorithm.
///
/// # Panics
///
/// Panics if `source` or `sink` is out of range.
#[must_use]
pub fn edmonds_karp_max_flow(network: &FlowNetwork, source: usize, sink: usize) -> FlowResult {
    assert!(source < network.num_nodes(), "source out of range");
    assert!(sink < network.num_nodes(), "sink out of range");
    if source == sink {
        return FlowResult {
            value: 0.0,
            edge_flows: vec![0.0; network.num_edges()],
        };
    }
    let mut residual = network.residual();
    let mut total = 0.0;
    let mut parent_arc = vec![usize::MAX; network.num_nodes()];
    while let Some(bottleneck) = bfs_augment(&residual, source, sink, &mut parent_arc) {
        total += bottleneck;
        // Walk back from the sink applying the augmentation.
        let mut node = sink;
        while node != source {
            let arc = parent_arc[node];
            residual.cap[arc] -= bottleneck;
            residual.cap[arc ^ 1] += bottleneck;
            node = residual.to[arc ^ 1];
        }
    }
    FlowResult {
        value: total,
        edge_flows: residual.edge_flows(),
    }
}

/// Breadth-first search for a shortest augmenting path; returns its bottleneck capacity and
/// fills `parent_arc` with the arc used to reach each node.
fn bfs_augment(
    residual: &Residual,
    source: usize,
    sink: usize,
    parent_arc: &mut [usize],
) -> Option<f64> {
    parent_arc.iter_mut().for_each(|p| *p = usize::MAX);
    let mut bottleneck = vec![0.0_f64; residual.adj.len()];
    bottleneck[source] = f64::INFINITY;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(node) = queue.pop_front() {
        for &arc in &residual.adj[node] {
            let to = residual.to[arc];
            if to != source
                && parent_arc[to] == usize::MAX
                && eps::is_positive(residual.cap[arc])
            {
                parent_arc[to] = arc;
                bottleneck[to] = bottleneck[node].min(residual.cap[arc]);
                if to == sink {
                    return Some(bottleneck[sink]);
                }
                queue.push_back(to);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::dinic_max_flow;
    use crate::graph::FlowNetwork;

    #[test]
    fn matches_dinic_on_small_networks() {
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 10.0);
        net.add_edge(0, 2, 10.0);
        net.add_edge(1, 2, 2.0);
        net.add_edge(1, 3, 4.0);
        net.add_edge(1, 4, 8.0);
        net.add_edge(2, 4, 9.0);
        net.add_edge(4, 3, 6.0);
        net.add_edge(3, 5, 10.0);
        net.add_edge(4, 5, 10.0);
        let ek = edmonds_karp_max_flow(&net, 0, 5);
        let dn = dinic_max_flow(&net, 0, 5);
        assert!((ek.value - 19.0).abs() < 1e-9);
        assert!((ek.value - dn.value).abs() < 1e-9);
        assert!(ek.is_valid(&net, 0, 5));
    }

    #[test]
    fn zero_when_no_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(1, 2, 4.0);
        let result = edmonds_karp_max_flow(&net, 0, 2);
        assert_eq!(result.value, 0.0);
    }

    #[test]
    fn handles_source_equals_sink() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        let result = edmonds_karp_max_flow(&net, 0, 0);
        assert_eq!(result.value, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0.1);
        net.add_edge(0, 1, 0.2);
        net.add_edge(1, 2, 0.25);
        let result = edmonds_karp_max_flow(&net, 0, 2);
        assert!((result.value - 0.25).abs() < 1e-9);
        assert!(result.is_valid(&net, 0, 2));
    }
}
