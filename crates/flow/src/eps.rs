//! Tolerant floating-point comparisons.
//!
//! Broadcast schemes, throughputs and flows are all `f64` values obtained from dichotomic
//! searches and greedy water-filling, so exact comparisons are meaningless. The helpers in
//! this module implement comparisons with a *relative* tolerance (absolute near zero), and are
//! used consistently across the workspace.

/// Default tolerance used by the workspace.
pub const DEFAULT_EPS: f64 = 1e-9;

/// Scale-aware tolerance: `DEFAULT_EPS × max(1, |a|, |b|)`.
#[must_use]
pub fn tolerance(a: f64, b: f64) -> f64 {
    DEFAULT_EPS * a.abs().max(b.abs()).max(1.0)
}

/// `a ≈ b` under the scale-aware tolerance.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= tolerance(a, b)
}

/// `a ⪆ b` (greater than or approximately equal).
#[must_use]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - tolerance(a, b)
}

/// `a ⪅ b` (less than or approximately equal).
#[must_use]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + tolerance(a, b)
}

/// `a` is strictly greater than `b` beyond the tolerance.
#[must_use]
pub fn definitely_gt(a: f64, b: f64) -> bool {
    a > b + tolerance(a, b)
}

/// `a` is strictly less than `b` beyond the tolerance.
#[must_use]
pub fn definitely_lt(a: f64, b: f64) -> bool {
    a < b - tolerance(a, b)
}

/// Whether `x` should be treated as zero (used to decide if an edge "exists" when counting
/// outdegrees).
#[must_use]
pub fn is_zero(x: f64) -> bool {
    x.abs() <= DEFAULT_EPS
}

/// Whether `x` is a meaningful positive quantity.
#[must_use]
pub fn is_positive(x: f64) -> bool {
    x > DEFAULT_EPS
}

/// Clamps tiny negative values (arising from cancellation) to zero, leaving other values
/// untouched.
#[must_use]
pub fn clamp_nonnegative(x: f64) -> f64 {
    if x < 0.0 && x > -1e-7 {
        0.0
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_near_values() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(1e6, 1e6 * (1.0 + 1e-12)));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_eq(0.0, 1e-12));
    }

    #[test]
    fn approx_ordering() {
        assert!(approx_ge(1.0, 1.0 + 1e-12));
        assert!(approx_ge(2.0, 1.0));
        assert!(!approx_ge(1.0, 2.0));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_le(1.0, 2.0));
        assert!(!approx_le(2.0, 1.0));
    }

    #[test]
    fn strict_comparisons() {
        assert!(definitely_gt(2.0, 1.0));
        assert!(!definitely_gt(1.0 + 1e-12, 1.0));
        assert!(definitely_lt(1.0, 2.0));
        assert!(!definitely_lt(1.0, 1.0 + 1e-12));
    }

    #[test]
    fn zero_and_positive() {
        assert!(is_zero(0.0));
        assert!(is_zero(1e-12));
        assert!(!is_zero(1e-6));
        assert!(is_positive(1e-6));
        assert!(!is_positive(1e-12));
        assert!(!is_positive(-1.0));
    }

    #[test]
    fn clamp_small_negatives() {
        assert_eq!(clamp_nonnegative(-1e-10), 0.0);
        assert_eq!(clamp_nonnegative(-1.0), -1.0);
        assert_eq!(clamp_nonnegative(2.5), 2.5);
    }

    #[test]
    fn tolerance_scales_with_magnitude() {
        assert!(tolerance(1e9, 1e9) > tolerance(1.0, 1.0));
        assert!((tolerance(0.0, 0.0) - DEFAULT_EPS).abs() < 1e-18);
    }
}
