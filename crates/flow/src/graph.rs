//! Directed flow networks with real-valued capacities.

use crate::csr::FlowArena;
use crate::eps;

/// Identifier of an edge inside a [`FlowNetwork`], as returned by [`FlowNetwork::add_edge`].
pub type EdgeId = usize;

/// A directed edge with a capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Tail of the edge.
    pub from: usize,
    /// Head of the edge.
    pub to: usize,
    /// Capacity (must be non-negative).
    pub capacity: f64,
}

/// A directed graph with `f64` edge capacities, the common input of all max-flow solvers of
/// this crate.
///
/// Parallel edges and self-loops are permitted (self-loops never carry flow). Capacities below
/// the workspace tolerance are treated as zero by the solvers. The builder API is
/// edge-list-shaped; solvers run on the flat CSR [`FlowArena`] obtained from
/// [`FlowNetwork::arena`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowNetwork {
    num_nodes: usize,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<EdgeId>>,
    /// Total capacity entering each node, maintained by [`FlowNetwork::add_edge`] so that
    /// [`FlowNetwork::in_capacity`] is `O(1)` instead of a scan over every edge.
    in_caps: Vec<f64>,
}

impl FlowNetwork {
    /// Creates an empty network with `num_nodes` nodes and no edges.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        FlowNetwork {
            num_nodes,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); num_nodes],
            in_caps: vec![0.0; num_nodes],
        }
    }

    /// Creates an empty network with room for `num_edges` edges.
    #[must_use]
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        FlowNetwork {
            num_nodes,
            edges: Vec::with_capacity(num_edges),
            adjacency: vec![Vec::new(); num_nodes],
            in_caps: vec![0.0; num_nodes],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the capacity is negative or not finite.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: f64) -> EdgeId {
        assert!(from < self.num_nodes, "edge tail {from} out of range");
        assert!(to < self.num_nodes, "edge head {to} out of range");
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "capacity must be finite and non-negative, got {capacity}"
        );
        let id = self.edges.len();
        self.edges.push(Edge { from, to, capacity });
        self.adjacency[from].push(id);
        self.in_caps[to] += capacity;
        id
    }

    /// The edge with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id]
    }

    /// All edges, in insertion order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Identifiers of the edges leaving `node`.
    #[must_use]
    pub fn outgoing(&self, node: usize) -> &[EdgeId] {
        &self.adjacency[node]
    }

    /// Total capacity leaving `node`.
    #[must_use]
    pub fn out_capacity(&self, node: usize) -> f64 {
        self.adjacency[node]
            .iter()
            .map(|&e| self.edges[e].capacity)
            .sum()
    }

    /// Total capacity entering `node` (`O(1)`: maintained incrementally).
    #[must_use]
    pub fn in_capacity(&self, node: usize) -> f64 {
        self.in_caps[node]
    }

    /// Builds the flat CSR arena the solvers operate on.
    #[must_use]
    pub fn arena(&self) -> FlowArena {
        FlowArena::from_network(self)
    }
}

/// Result of a max-flow computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// Value of the maximum flow.
    pub value: f64,
    /// Flow assigned to each edge of the input network (indexed by [`EdgeId`]).
    pub edge_flows: Vec<f64>,
}

impl FlowResult {
    /// Verifies flow conservation and capacity constraints against the originating network.
    ///
    /// Returns `true` when every edge flow lies in `[0, capacity]` (up to tolerance) and the
    /// net flow of every node other than `source` and `sink` is zero.
    #[must_use]
    pub fn is_valid(&self, network: &FlowNetwork, source: usize, sink: usize) -> bool {
        if self.edge_flows.len() != network.num_edges() {
            return false;
        }
        for (id, edge) in network.edges().iter().enumerate() {
            let f = self.edge_flows[id];
            if !(eps::approx_ge(f, 0.0) && eps::approx_le(f, edge.capacity)) {
                return false;
            }
        }
        let mut net = vec![0.0; network.num_nodes()];
        for (id, edge) in network.edges().iter().enumerate() {
            net[edge.from] -= self.edge_flows[id];
            net[edge.to] += self.edge_flows[id];
        }
        for (node, &balance) in net.iter().enumerate() {
            if node == source || node == sink {
                continue;
            }
            if !eps::approx_eq(balance, 0.0) {
                return false;
            }
        }
        eps::approx_eq(-net[source], self.value) && eps::approx_eq(net[sink], self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut net = FlowNetwork::new(4);
        let e0 = net.add_edge(0, 1, 3.0);
        let e1 = net.add_edge(1, 2, 2.0);
        let e2 = net.add_edge(0, 2, 1.0);
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_edges(), 3);
        assert_eq!(net.edge(e0).to, 1);
        assert_eq!(net.edge(e1).capacity, 2.0);
        assert_eq!(net.outgoing(0), &[e0, e2]);
        assert_eq!(net.outgoing(3), &[] as &[EdgeId]);
        assert!((net.out_capacity(0) - 4.0).abs() < 1e-12);
        assert!((net.in_capacity(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn in_capacity_tracks_every_insertion() {
        let mut net = FlowNetwork::new(3);
        assert_eq!(net.in_capacity(1), 0.0);
        net.add_edge(0, 1, 1.25);
        net.add_edge(2, 1, 0.75);
        net.add_edge(1, 2, 4.0);
        assert!((net.in_capacity(1) - 2.0).abs() < 1e-12);
        assert!((net.in_capacity(2) - 4.0).abs() < 1e-12);
        assert_eq!(net.in_capacity(0), 0.0);
        // Parallel edges accumulate.
        net.add_edge(0, 1, 0.5);
        assert!((net.in_capacity(1) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_rejects_bad_endpoint() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn add_edge_rejects_negative_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1.0);
    }

    #[test]
    fn arena_conversion_preserves_dimensions() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 1.5);
        let arena = net.arena();
        assert_eq!(arena.num_nodes(), 3);
        assert_eq!(arena.num_edges(), 2);
        assert!((arena.in_capacity(2) - net.in_capacity(2)).abs() < 1e-12);
    }

    #[test]
    fn flow_result_validation_accepts_valid_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 2.0);
        let result = FlowResult {
            value: 1.5,
            edge_flows: vec![1.5, 1.5],
        };
        assert!(result.is_valid(&net, 0, 2));
    }

    #[test]
    fn flow_result_validation_rejects_violations() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 2.0);
        // Over capacity.
        let over = FlowResult {
            value: 3.0,
            edge_flows: vec![3.0, 3.0],
        };
        assert!(!over.is_valid(&net, 0, 2));
        // Conservation violated at node 1.
        let unbalanced = FlowResult {
            value: 1.0,
            edge_flows: vec![1.0, 0.5],
        };
        assert!(!unbalanced.is_valid(&net, 0, 2));
        // Wrong number of edges.
        let malformed = FlowResult {
            value: 0.0,
            edge_flows: vec![0.0],
        };
        assert!(!malformed.is_valid(&net, 0, 2));
    }

    #[test]
    fn with_capacity_preallocates() {
        let net = FlowNetwork::with_capacity(5, 10);
        assert_eq!(net.num_nodes(), 5);
        assert_eq!(net.num_edges(), 0);
    }
}
