//! Incremental max-flow: warm residual reuse across dichotomic probes.
//!
//! Consecutive probes of a dichotomic search evaluate max-flows over the *same* arc
//! structure with rescaled capacities, so the previous probe's feasible flow is one
//! capacity-delta away from a valid starting flow for the next probe. This module keeps
//! that state — per `(arena epoch, source, sink)` — in a [`WarmFlowCache`] and teaches
//! [`FlowSolver`] to solve from it instead of `load_caps` + Dinic from scratch.
//!
//! # State machine
//!
//! A [`WarmState`] holds the residual capacities (`2m` arcs), a snapshot of the input
//! edge capacities it was built against (`m` entries), and the value of the retained
//! feasible flow. A warm solve proceeds as:
//!
//! 1. **Delta apply** — diff the snapshot against the arena's current capacities.
//!    Increases widen the forward residual in place (the committed flow is untouched).
//!    A decrease below the committed flow caps the flow at the new capacity and records
//!    the severed units as *excess* at the edge's tail and *deficit* at its head.
//! 2. **Drain** — excess is pushed back to the source along residual paths that avoid
//!    the sink, deficit is cancelled by pushing from the sink backwards (each unit
//!    lowers the retained value). After draining, the state is again a feasible
//!    source→sink flow under the new capacities.
//! 3. **Certificate / re-augment** — if the retained value already clears the caller's
//!    `limit` by a safety margin (`CERTIFICATE_MARGIN`, so fp near-ties can never
//!    classify differently from cold), it is returned with zero augmentation (the
//!    batched evaluators only use `>= limit` one-sidedly). Otherwise Dinic augments
//!    *from the retained flow* until the margin-padded limit is met.
//! 4. **Cold fallback** — if augmentation converges below that, the exact maximum
//!    is recomputed from scratch and the warm state is reseeded from the cold residual.
//!    This keeps every number that can steer downstream control flow (brackets, probe
//!    verdicts, running minimums, the final `Solution`) bit-for-bit identical to cold
//!    mode: warm mode only ever short-circuits solves whose value is provably at or
//!    above the running minimum, which cold mode would discard anyway.
//!
//! Any drain that cannot complete (unreachable endpoint, iteration guard) invalidates
//! the state and falls back to the cold path, which is always correct.
//!
//! # Invalidation
//!
//! States are keyed by [`FlowArena::epoch`]: rebuilding an arena (edge-set change)
//! mints a new epoch, so stale states are simply never matched again (and are evicted
//! wholesale when the cache fills). In-place capacity updates — `set_edge_capacities`,
//! journal patches via `patch_edge_capacities` — keep the epoch, and the snapshot diff
//! in step 1 absorbs them; no explicit invalidation hook is needed.

use crate::csr::{FlowArena, FlowSolver, NO_ARC};
use crate::eps;
use std::collections::HashMap;

/// Hard cap on retained states; the cache is cleared wholesale when a new key would
/// exceed it (probe loops touch a handful of sinks, so eviction is effectively never
/// hit outside adversarial churn).
const MAX_STATES: usize = 64;

/// Iteration guard multiplier for drain path searches (defensive bound against
/// floating-point pathologies; a clean drain needs far fewer pushes).
const DRAIN_GUARD_SLACK: usize = 16;

/// Relative safety margin for warm certificates. Warm and cold augmentation
/// accumulate their totals through different push sequences, so near a tie
/// (`true max ≈ limit`) the two can land on opposite sides of the limit by a few
/// ulps. A certificate therefore only fires when the warm value clears the limit by
/// this margin — far above accumulated fp noise (~1e-14 relative), far below any
/// decision tolerance in the workspace (1e-6) — and everything inside the margin
/// falls through to the bit-identical cold recompute.
const CERTIFICATE_MARGIN: f64 = 1e-9;

/// Observability counters for warm reuse (telemetry: `flows_warm_started`,
/// `augment_saved`, `excess_drained`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Solves that entered the warm path with a matching state (delta applied).
    pub flows_warm_started: u64,
    /// Warm solves answered by the retained value alone (no augmentation at all).
    pub augment_saved: u64,
    /// Drain operations performed (excess pushed back to the source or deficit
    /// cancelled from the sink) while applying capacity deltas.
    pub excess_drained: u64,
}

impl WarmStats {
    /// Returns the counters accumulated since the last call and resets them to zero.
    pub fn take(&mut self) -> WarmStats {
        std::mem::take(self)
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &WarmStats) {
        self.flows_warm_started += other.flows_warm_started;
        self.augment_saved += other.augment_saved;
        self.excess_drained += other.excess_drained;
    }
}

/// Retained residual state of one `(arena epoch, source, sink)` solve.
#[derive(Debug, Clone)]
pub struct WarmState {
    /// Residual capacities, indexed like the arena's arc arrays (length `2m`).
    cap: Vec<f64>,
    /// Input-edge capacities the residual was built against (length `m`).
    snapshot: Vec<f64>,
    /// Value of the retained feasible source→sink flow.
    value: f64,
}

impl WarmState {
    fn sized_for(&self, arena: &FlowArena) -> bool {
        self.cap.len() == 2 * arena.num_edges && self.snapshot.len() == arena.num_edges
    }
}

/// Cache of warm residual states plus reuse telemetry.
///
/// One cache per evaluation context / pool worker; it is *not* shared across threads.
/// Cheap to construct, safe to drop at any time — losing a cache only costs the next
/// solve a cold start.
#[derive(Debug, Clone, Default)]
pub struct WarmFlowCache {
    states: HashMap<(u64, u32, u32), WarmState>,
    /// Reuse counters; drained by callers via [`WarmStats::take`].
    pub stats: WarmStats,
    /// Scratch: severed flow recorded at edge tails during delta apply.
    excess: Vec<(u32, f64)>,
    /// Scratch: severed flow recorded at edge heads during delta apply.
    deficit: Vec<(u32, f64)>,
}

impl WarmFlowCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        WarmFlowCache::default()
    }

    /// Number of retained states (diagnostic).
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the cache holds no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Drops every retained state (telemetry counters are kept).
    pub fn clear(&mut self) {
        self.states.clear();
    }

    /// (Re)seeds the state for `key` from a cold solve's residual capacities.
    fn seed(&mut self, key: (u64, u32, u32), arena: &FlowArena, residual: &[f64], value: f64) {
        if self.states.len() >= MAX_STATES && !self.states.contains_key(&key) {
            self.states.clear();
        }
        let state = self.states.entry(key).or_insert_with(|| WarmState {
            cap: Vec::new(),
            snapshot: Vec::new(),
            value: 0.0,
        });
        state.cap.clear();
        state.cap.extend_from_slice(residual);
        state.snapshot.clear();
        state.snapshot.extend(
            arena
                .edge_pos
                .iter()
                .map(|&pos| arena.base_cap[pos as usize]),
        );
        state.value = value;
    }

    /// Checks every state keyed to `arena`'s epoch against the flow invariants the
    /// delta/drain machinery must preserve (test / diagnostic hook):
    ///
    /// * per arc pair: residual + committed flow = snapshot capacity, both halves
    ///   non-negative;
    /// * per interior node: flow conservation;
    /// * the retained `value` equals the net inflow at the sink.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, arena: &FlowArena) -> Result<(), String> {
        for (&(epoch, source, sink), state) in &self.states {
            if epoch != arena.epoch() {
                continue;
            }
            if !state.sized_for(arena) {
                return Err(format!(
                    "state ({source}->{sink}) sized for a different arena"
                ));
            }
            let scale: f64 = state.snapshot.iter().fold(1.0f64, |acc, &c| acc.max(c));
            let tol = 1e-9 * scale;
            let mut net = vec![0.0f64; arena.num_nodes];
            for (k, &snap) in state.snapshot.iter().enumerate() {
                let fwd = arena.edge_pos[k] as usize;
                let bwd = arena.partner[fwd] as usize;
                if state.cap[fwd] < -tol || state.cap[bwd] < -tol {
                    return Err(format!("edge {k}: negative residual"));
                }
                if (state.cap[fwd] + state.cap[bwd] - snap).abs() > tol {
                    return Err(format!(
                        "edge {k}: residual {} + flow {} != snapshot capacity {snap}",
                        state.cap[fwd], state.cap[bwd]
                    ));
                }
                let flow = (snap - state.cap[fwd]).clamp(0.0, snap);
                let head = arena.to[fwd] as usize;
                let tail = arena.to[bwd] as usize;
                net[head] += flow;
                net[tail] -= flow;
            }
            for (node, &imbalance) in net.iter().enumerate() {
                if node == source as usize || node == sink as usize {
                    continue;
                }
                if imbalance.abs() > tol {
                    return Err(format!(
                        "node {node}: conservation violated by {imbalance} in state ({source}->{sink})"
                    ));
                }
            }
            if (net[sink as usize] - state.value).abs() > tol {
                return Err(format!(
                    "state ({source}->{sink}): value {} != net sink inflow {}",
                    state.value, net[sink as usize]
                ));
            }
        }
        Ok(())
    }
}

impl FlowSolver {
    /// Like [`FlowSolver::max_flow_limited`], but reuses the residual state retained in
    /// `cache` for `(arena.epoch(), source, sink)` when one exists.
    ///
    /// The return value obeys the same contract as the cold evaluator — exact below
    /// `limit`, a one-sided `>= limit` certificate otherwise — **and is bit-for-bit the
    /// value cold mode would produce**: warm short-circuits only resolve at-or-above
    /// the limit (which the batched evaluators discard), and any solve whose exact
    /// value matters falls through to the identical cold arithmetic, reseeding the
    /// warm state from its residual.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `sink` is out of range.
    pub fn max_flow_limited_warm(
        &mut self,
        arena: &FlowArena,
        source: usize,
        sink: usize,
        limit: f64,
        cache: &mut WarmFlowCache,
    ) -> f64 {
        assert!(source < arena.num_nodes, "source out of range");
        assert!(sink < arena.num_nodes, "sink out of range");
        if source == sink || limit <= 0.0 {
            return 0.0;
        }
        let key = (arena.epoch(), source as u32, sink as u32);
        // An infinite limit demands the exact maximum, which the cold path computes
        // directly (and more cheaply than warm-augmenting to convergence *and then*
        // recomputing cold for bit-identity).
        if limit.is_finite() {
            // Certificates must clear the limit by a margin that dominates the fp
            // divergence between warm and cold accumulation, or a near-tie could
            // classify differently from cold (see [`CERTIFICATE_MARGIN`]).
            let certified = limit + CERTIFICATE_MARGIN * limit.abs().max(1.0);
            let WarmFlowCache {
                states,
                stats,
                excess,
                deficit,
            } = cache;
            if let Some(state) = states.get_mut(&key) {
                if state.sized_for(arena)
                    && self.apply_capacity_delta(arena, state, source, sink, excess, deficit, stats)
                {
                    stats.flows_warm_started += 1;
                    if state.value >= certified {
                        stats.augment_saved += 1;
                        return state.value;
                    }
                    let value = self.augment_residual(
                        arena,
                        &mut state.cap,
                        source,
                        sink,
                        certified,
                        state.value,
                    );
                    state.value = value;
                    if value >= certified {
                        return value;
                    }
                    // Converged inside the margin or below the limit: the exact value
                    // (or its side of the limit) steers the caller's running minimum,
                    // so recompute it cold (fall through) and reseed.
                } else {
                    states.remove(&key);
                }
            }
        }
        let total = self.max_flow_limited(arena, source, sink, limit);
        cache.seed(key, arena, &self.cap, total);
        total
    }

    /// Warm-reuse variant of [`FlowSolver::min_max_flow`]: identical sink ordering,
    /// running-minimum caps, and zero short-circuit, with each per-sink solve routed
    /// through [`FlowSolver::max_flow_limited_warm`]. Returns bit-for-bit the cold
    /// result.
    pub fn min_max_flow_warm(
        &mut self,
        arena: &FlowArena,
        source: usize,
        sinks: &[usize],
        cache: &mut WarmFlowCache,
    ) -> f64 {
        let mut order = std::mem::take(&mut self.sinks);
        arena.order_sinks_into(sinks, &mut order);
        let mut minimum = f64::INFINITY;
        for &sink in &order {
            if minimum <= 0.0 {
                break;
            }
            let flow = self.max_flow_limited_warm(arena, source, sink as usize, minimum, cache);
            if flow < minimum {
                minimum = flow;
            }
        }
        self.sinks = order;
        minimum
    }

    /// Applies the capacity delta between `state.snapshot` and the arena's current
    /// capacities to the retained residual, draining severed flow so the state is again
    /// a feasible `source`→`sink` flow. Returns `false` (state must be discarded) if a
    /// drain cannot complete.
    #[allow(clippy::too_many_arguments)]
    fn apply_capacity_delta(
        &mut self,
        arena: &FlowArena,
        state: &mut WarmState,
        source: usize,
        sink: usize,
        excess: &mut Vec<(u32, f64)>,
        deficit: &mut Vec<(u32, f64)>,
        stats: &mut WarmStats,
    ) -> bool {
        excess.clear();
        deficit.clear();
        for k in 0..arena.num_edges {
            let fwd = arena.edge_pos[k] as usize;
            let new = arena.base_cap[fwd];
            let old = state.snapshot[k];
            if new == old {
                continue;
            }
            let flow = (old - state.cap[fwd]).clamp(0.0, old);
            if new >= flow {
                // The committed flow still fits: only the forward headroom moves.
                state.cap[fwd] = new - flow;
            } else {
                // Capacity cut below the committed flow: cap the flow at `new` and
                // record the severed units for draining.
                let cut = flow - new;
                let bwd = arena.partner[fwd] as usize;
                state.cap[fwd] = 0.0;
                state.cap[bwd] = new;
                let head = arena.to[fwd] as usize;
                let tail = arena.to[bwd] as usize;
                if head == sink {
                    state.value -= cut;
                } else if head != source {
                    deficit.push((head as u32, cut));
                }
                if tail == sink {
                    state.value += cut;
                } else if tail != source {
                    excess.push((tail as u32, cut));
                }
            }
            state.snapshot[k] = new;
        }
        for &(node, amount) in excess.iter() {
            if !self.drain_push(arena, &mut state.cap, node as usize, source, sink, amount) {
                return false;
            }
            stats.excess_drained += 1;
        }
        for &(node, amount) in deficit.iter() {
            if !self.drain_push(arena, &mut state.cap, sink, node as usize, source, amount) {
                return false;
            }
            state.value -= amount;
            stats.excess_drained += 1;
        }
        true
    }

    /// Pushes `amount` units from `from` to `to` along residual paths that never pass
    /// through `avoid` (BFS, shortest residual path per push). Returns `false` if the
    /// amount cannot be routed.
    #[allow(clippy::needless_range_loop)] // `arc` indexes three parallel CSR arrays
    fn drain_push(
        &mut self,
        arena: &FlowArena,
        cap: &mut [f64],
        from: usize,
        to: usize,
        avoid: usize,
        mut remaining: f64,
    ) -> bool {
        if from == to {
            return true;
        }
        let n = arena.num_nodes;
        self.parent_arc.resize(n, NO_ARC);
        self.level.resize(n, -1);
        self.queue.resize(n + 1, 0);
        let mut guard = DRAIN_GUARD_SLACK + 4 * arena.num_edges;
        while eps::is_positive(remaining) {
            if guard == 0 {
                return false;
            }
            guard -= 1;
            // `level` doubles as the visited marker here; the Dinic loop rebuilds it.
            self.level.fill(-1);
            self.level[from] = 0;
            self.queue[0] = from as u32;
            let (mut head, mut tail) = (0usize, 1usize);
            let mut reached = false;
            'bfs: while head < tail {
                let node = self.queue[head] as usize;
                head += 1;
                for arc in arena.start[node] as usize..arena.start[node + 1] as usize {
                    let next = arena.to[arc] as usize;
                    if next == avoid || self.level[next] >= 0 || !eps::is_positive(cap[arc]) {
                        continue;
                    }
                    self.level[next] = 0;
                    self.parent_arc[next] = arc as u32;
                    if next == to {
                        reached = true;
                        break 'bfs;
                    }
                    self.queue[tail] = next as u32;
                    tail += 1;
                }
            }
            if !reached {
                return false;
            }
            let mut bottleneck = remaining;
            let mut node = to;
            while node != from {
                let arc = self.parent_arc[node] as usize;
                bottleneck = bottleneck.min(cap[arc]);
                node = arena.to[arena.partner[arc] as usize] as usize;
            }
            if !eps::is_positive(bottleneck) {
                return false;
            }
            let mut node = to;
            while node != from {
                let arc = self.parent_arc[node] as usize;
                cap[arc] -= bottleneck;
                cap[arena.partner[arc] as usize] += bottleneck;
                node = arena.to[arena.partner[arc] as usize] as usize;
            }
            remaining -= bottleneck;
        }
        true
    }

    /// Dinic augmentation over a caller-owned residual (no `load_caps`), starting from
    /// an existing flow of value `start`; stops as soon as `limit` is reached.
    fn augment_residual(
        &mut self,
        arena: &FlowArena,
        cap: &mut [f64],
        source: usize,
        sink: usize,
        limit: f64,
        start: f64,
    ) -> f64 {
        self.level.resize(arena.num_nodes, -1);
        self.iter.resize(arena.num_nodes, 0);
        self.queue.resize(arena.num_nodes + 1, 0);
        let mut total = start;
        while total < limit
            && Self::bfs_levels(arena, cap, &mut self.level, &mut self.queue, source, sink)
        {
            for v in 0..arena.num_nodes {
                self.iter[v] = arena.start[v];
            }
            loop {
                let pushed = Self::dfs_augment(
                    arena,
                    cap,
                    &self.level,
                    &mut self.iter,
                    source as u32,
                    sink as u32,
                    f64::INFINITY,
                );
                if !eps::is_positive(pushed) {
                    break;
                }
                total += pushed;
                if total >= limit {
                    return total;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_edges(scale: f64) -> Vec<(usize, usize, f64)> {
        vec![
            (0, 1, 3.0 * scale),
            (0, 2, 2.0 * scale),
            (1, 3, 2.0 * scale),
            (2, 3, 3.0 * scale),
            (1, 2, 1.0 * scale),
        ]
    }

    #[test]
    fn warm_matches_cold_across_rescales() {
        let mut arena = FlowArena::from_edges(4, &diamond_edges(1.0));
        let mut cold = FlowSolver::new();
        let mut warm = FlowSolver::new();
        let mut cache = WarmFlowCache::new();
        for &scale in &[1.0, 0.5, 0.75, 0.1, 1.0, 2.0, 0.9] {
            let caps: Vec<f64> = diamond_edges(scale).iter().map(|e| e.2).collect();
            arena.set_edge_capacities(&caps);
            for limit in [f64::INFINITY, 4.0 * scale, 1.0 * scale, 0.5 * scale] {
                let expected = cold.max_flow_limited(&arena, 0, 3, limit);
                let got = warm.max_flow_limited_warm(&arena, 0, 3, limit, &mut cache);
                // The bit-identity contract is one-sided at/above the limit; below it
                // the value must be exactly the cold one.
                if expected < limit {
                    assert_eq!(expected, got, "scale {scale} limit {limit}");
                } else {
                    assert!(got >= limit, "scale {scale} limit {limit}");
                }
                cache.validate(&arena).expect("warm state invariants");
            }
        }
        assert!(cache.stats.flows_warm_started > 0);
        assert!(cache.stats.augment_saved > 0);
    }

    #[test]
    fn min_max_flow_warm_is_bit_identical() {
        let edges = vec![
            (0usize, 1usize, 4.0),
            (0, 2, 3.0),
            (1, 3, 2.0),
            (2, 3, 2.0),
            (1, 4, 1.5),
            (2, 4, 2.5),
            (3, 4, 0.5),
        ];
        let mut arena = FlowArena::from_edges(5, &edges);
        let mut cold = FlowSolver::new();
        let mut warm = FlowSolver::new();
        let mut cache = WarmFlowCache::new();
        let sinks = [3usize, 4usize];
        for &scale in &[1.0, 0.25, 0.8, 1.6, 0.05, 1.0] {
            let caps: Vec<f64> = edges.iter().map(|e| e.2 * scale).collect();
            arena.set_edge_capacities(&caps);
            let expected = cold.min_max_flow(&arena, 0, &sinks);
            let got = warm.min_max_flow_warm(&arena, 0, &sinks, &mut cache);
            assert_eq!(expected, got, "scale {scale}");
            cache.validate(&arena).expect("warm state invariants");
        }
        assert!(cache.stats.flows_warm_started > 0);
    }

    #[test]
    fn rebuild_mints_a_new_epoch_and_misses_the_cache() {
        let edges = diamond_edges(1.0);
        let arena = FlowArena::from_edges(4, &edges);
        let rebuilt = FlowArena::from_edges(4, &edges);
        assert_eq!(arena, rebuilt, "equality ignores the epoch");
        assert_ne!(arena.epoch(), rebuilt.epoch());
        let mut solver = FlowSolver::new();
        let mut cache = WarmFlowCache::new();
        solver.max_flow_limited_warm(&arena, 0, 3, 4.0, &mut cache);
        solver.max_flow_limited_warm(&rebuilt, 0, 3, 4.0, &mut cache);
        assert_eq!(cache.len(), 2, "one state per epoch");
        assert_eq!(
            cache.stats.flows_warm_started, 0,
            "a fresh epoch never warm-starts"
        );
    }

    #[test]
    fn clone_preserves_the_epoch() {
        let arena = FlowArena::from_edges(4, &diamond_edges(1.0));
        let mut clone = arena.clone();
        assert_eq!(arena.epoch(), clone.epoch());
        clone.set_edge_capacities(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(
            arena.epoch(),
            clone.epoch(),
            "in-place updates keep the epoch"
        );
    }

    #[test]
    fn capacity_cut_drains_through_reverse_paths() {
        // Saturate the diamond, then cut an edge that carries committed flow so the
        // delta apply must drain through reverse residual arcs.
        let mut arena = FlowArena::from_edges(4, &diamond_edges(1.0));
        let mut solver = FlowSolver::new();
        let mut cache = WarmFlowCache::new();
        let full = solver.max_flow_limited_warm(&arena, 0, 3, 100.0, &mut cache);
        assert!(full > 0.0);
        // Cut (0,1) hard: flow through node 1 must drain.
        arena.set_edge_capacities(&[0.25, 2.0, 2.0, 3.0, 1.0]);
        let mut cold = FlowSolver::new();
        let expected = cold.max_flow_limited(&arena, 0, 3, 100.0);
        let got = solver.max_flow_limited_warm(&arena, 0, 3, 100.0, &mut cache);
        assert_eq!(expected, got);
        cache
            .validate(&arena)
            .expect("drained state stays conservative");
        assert!(cache.stats.excess_drained > 0, "the cut forced a drain");
    }

    #[test]
    fn stats_take_resets() {
        let mut stats = WarmStats {
            flows_warm_started: 3,
            augment_saved: 2,
            excess_drained: 1,
        };
        let taken = stats.take();
        assert_eq!(taken.flows_warm_started, 3);
        assert_eq!(stats, WarmStats::default());
        let mut acc = WarmStats::default();
        acc.merge(&taken);
        acc.merge(&taken);
        assert_eq!(acc.augment_saved, 4);
    }
}
