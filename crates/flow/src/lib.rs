//! Flow-network substrate for the bounded multi-port broadcast reproduction.
//!
//! The throughput of a broadcast scheme is *defined* (Section II-D of the paper) as the
//! minimum over all receivers of the maximum flow from the source in the weighted digraph of
//! transfer rates. This crate provides the machinery to evaluate that definition:
//!
//! * [`graph::FlowNetwork`] — a directed graph with real-valued edge capacities,
//! * [`dinic`] — Dinic's blocking-flow algorithm (the default solver),
//! * [`edmonds_karp`] — the shortest-augmenting-path algorithm (used as a cross-check),
//! * [`push_relabel`] — a highest-label push-relabel implementation (second cross-check),
//! * [`mincut`] — minimum-cut extraction from a maximum flow,
//! * [`eps`] — tolerant floating-point comparisons shared by the whole workspace.
//!
//! All algorithms operate on `f64` capacities; comparisons use the tolerances of [`eps`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dinic;
pub mod edmonds_karp;
pub mod eps;
pub mod graph;
pub mod mincut;
pub mod push_relabel;

pub use dinic::dinic_max_flow;
pub use edmonds_karp::edmonds_karp_max_flow;
pub use graph::{EdgeId, FlowNetwork, FlowResult};
pub use mincut::{min_cut, MinCut};
pub use push_relabel::push_relabel_max_flow;

/// Maximum-flow value from `source` to `sink` computed with the default solver (Dinic).
#[must_use]
pub fn max_flow_value(network: &FlowNetwork, source: usize, sink: usize) -> f64 {
    dinic_max_flow(network, source, sink).value
}
