//! Flow-network substrate for the bounded multi-port broadcast reproduction.
//!
//! The throughput of a broadcast scheme is *defined* (Section II-D of the paper) as the
//! minimum over all receivers of the maximum flow from the source in the weighted digraph of
//! transfer rates. Every algorithm, oracle and benchmark in the workspace is scored through
//! that definition, which makes this crate the hottest layer of the codebase.
//!
//! # Architecture: CSR arena + reusable solver workspace
//!
//! The kernel (module [`csr`]) separates the *immutable* description of a network from the
//! *mutable* state of a solve:
//!
//! * [`csr::FlowArena`] — a flat compressed-sparse-row arc arena (`start`/`to`/`partner`/
//!   `base_cap` arrays plus precomputed per-node in-capacities), built once per network.
//!   Residual arcs of a node are contiguous, so the hot BFS/DFS loops scan linear memory
//!   instead of chasing `Vec<Vec<usize>>` pointers. When only the *capacities* of a fixed
//!   edge set change (the dichotomic search re-scoring near-identical schemes),
//!   [`csr::FlowArena::set_edge_capacities`] rewrites them in place — equivalent to a
//!   from-scratch rebuild, without the CSR construction or its allocations. When the
//!   caller knows exactly *which* edges moved (a dirty-edge journal on the probed
//!   scheme), [`csr::FlowArena::patch_edge_capacities`] writes only those capacities and
//!   resums only the affected in-capacities — still bit-for-bit equal to a rebuild.
//! * [`csr::FlowSolver`] — a workspace owning every buffer the solvers mutate (residual
//!   capacities, levels, current-arc cursors, queues, push-relabel state). Buffers are
//!   reused across calls: in steady state a solve performs **zero heap allocation**.
//! * [`csr::FlowSolver::min_max_flow`] — batched multi-sink evaluation of
//!   `min_k maxflow(source → k)`: sinks are visited in ascending in-capacity order and each
//!   solve is capped at the running minimum, terminating early once the cap is reached (a
//!   sink whose flow reaches the running minimum cannot lower it). The result is exactly
//!   the minimum of the individually computed flows.
//!
//! # The worker-pool layer
//!
//! Large multi-sink evaluations fan out across threads. Two fan-outs exist:
//!
//! * [`pool::FlowPool`] — the production path: a persistent pool of long-lived workers,
//!   each owning a reusable [`csr::FlowSolver`] that stays warm across evaluations.
//!   Workers are spawned lazily up to the pool cap and fed sink batches through a
//!   channel; every evaluation shares its running minimum through an atomic, and the
//!   submitting thread always works a share itself. [`pool::FlowPool::global`] is the
//!   process-wide instance (capped at 8 workers, the same ceiling as
//!   [`suggested_flow_threads`]) shared by [`min_max_flow_parallel`] and the parallel
//!   evaluation mode of `bmp-core`'s `EvalCtx`, so the machine-wide flow-thread count
//!   stays bounded no matter how many contexts request parallelism. Arenas travel to the
//!   workers as `Arc<FlowArena>` clones that are dropped before the submitter is
//!   released — a context that owns the only other reference keeps patching its retained
//!   arena in place.
//! * [`csr::min_max_flow_scoped`] — the former per-call scoped-thread fan-out, kept as
//!   the A/B baseline (benchmarked against the pool in the `worker_pool` group of
//!   `crates/bench/benches/throughput.rs`) and for callers that must not share the
//!   global pool.
//!
//! [`suggested_flow_threads`] decides when fan-out pays at all: sequential below 512
//! nodes / 96 sinks (re-tuned against the pool, whose per-call cost is a queue push
//! instead of a thread spawn), available parallelism capped at 8 above. Every fan-out
//! is bit-for-bit equal to the sequential batched evaluation.
//!
//! # When speculation wins
//!
//! The pool also runs *probe batches* ([`pool::FlowPool::probe_batch`]) — the candidate
//! midpoints of a speculative dichotomic search (`bmp-core`'s `DichotomicSearch`). A
//! speculative round of depth `d` evaluates `2^(d+1) - 1` candidates to make `d + 1`
//! bisection steps of progress, so the break-even is lanes versus depth: with `L` free
//! pool lanes, depth `d` turns `d + 1` serial probe latencies into
//! `ceil((2^(d+1) - 1) / L)` batched ones. Depth 1 (3 candidates) needs ≥ 2 free lanes
//! to win ~2× on probe latency; depth 2 (7 candidates) needs ≥ 4 lanes for ~2.3×, and
//! on fewer lanes deeper speculation only burns wasted probes — exactly half the
//! evaluated speculative candidates are discarded per round at any depth. On a
//! single-core host (or a saturated pool) every depth loses to serial by the wasted
//! work, which is why speculation is opt-in (`BMP_SPECULATE`, `--speculate N`) and the
//! perf gate abstains on single-core runners. Speculative tickets are tagged
//! ([`pool::TicketClass`]) so cancelled wagers never pollute the fair-share
//! starvation accounting, and they reserve one pool lane for co-resident fair-share
//! work (see the module docs of [`pool`]).
//!
//! # Incremental reuse: warm residual states
//!
//! Consecutive dichotomic probes evaluate the *same* arc structure under rescaled
//! capacities, so the previous probe's feasible flow is one capacity-delta away from a
//! valid warm start. Module [`incremental`] retains that state per
//! `(arena epoch, source, sink)` in a [`incremental::WarmFlowCache`]:
//!
//! * **State machine** — a warm solve diffs the state's capacity snapshot against the
//!   arena (`O(m)`), widens forward residuals for increases, and for decreases that
//!   undercut committed flow drains the severed units back along reverse residual
//!   paths (excess to the source avoiding the sink, deficit from the sink avoiding the
//!   source) before re-augmenting from the retained flow. If the retained value already
//!   meets the caller's limit it is returned as a one-sided certificate with zero
//!   augmentation; if augmentation converges *below* the limit, the exact value is
//!   recomputed cold and the state reseeded — so every number that can steer brackets,
//!   probe verdicts or the final solution is produced by the cold arithmetic, and warm
//!   mode is bit-for-bit equivalent to cold mode end to end.
//! * **Invalidation rules** — states key on [`csr::FlowArena::epoch`], a process-unique
//!   id minted by `from_edges`. Rebuilding an arena (edge-*set* change, e.g. churn
//!   survivors) mints a new epoch and orphans old states; in-place capacity updates
//!   (`set_edge_capacities`, journal patches via `patch_edge_capacities`, including
//!   through `Arc::make_mut`) keep the epoch and are absorbed by the snapshot diff. A
//!   failed drain invalidates just that state and falls back to the always-correct cold
//!   path.
//! * **Plumbing** — `bmp-core`'s `EvalCtx` owns a cache for sequential evaluation and
//!   each [`pool::FlowPool`] worker owns one for fanned-out evaluation (reset alongside
//!   the solver on panic containment); the `BMP_INCREMENTAL` / `--incremental` /
//!   `EvalCtx::set_incremental` knob gates the whole path, and the
//!   `flows_warm_started` / `augment_saved` / `excess_drained` telemetry makes reuse
//!   observable.
//!
//! # Entry points
//!
//! * [`graph::FlowNetwork`] — edge-list builder API with `O(1)` in-capacity queries,
//! * [`dinic`] — Dinic's blocking-flow algorithm (the default solver),
//! * [`edmonds_karp`] — the shortest-augmenting-path algorithm (used as a cross-check),
//! * [`push_relabel`] — a FIFO push-relabel implementation (second cross-check),
//! * [`mincut`] — minimum-cut extraction from a maximum flow,
//! * [`eps`] — tolerant floating-point comparisons shared by the whole workspace.
//!
//! The free functions build a one-shot arena per call and remain the convenient API for
//! single solves; hot paths (scheme throughput, churn analysis, benchmarks) hold a
//! [`csr::FlowArena`] and reuse a [`csr::FlowSolver`].
//!
//! All algorithms operate on `f64` capacities; comparisons use the tolerances of [`eps`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod dinic;
pub mod edmonds_karp;
pub mod eps;
pub mod graph;
pub mod incremental;
pub mod mincut;
pub mod pool;
pub mod push_relabel;

pub use csr::{
    min_max_flow_parallel, min_max_flow_scoped, suggested_flow_threads, FlowArena, FlowSolver,
};
pub use dinic::dinic_max_flow;
pub use edmonds_karp::edmonds_karp_max_flow;
pub use graph::{EdgeId, FlowNetwork, FlowResult};
pub use incremental::{WarmFlowCache, WarmStats};
pub use mincut::{min_cut, MinCut};
pub use pool::{
    arm_worker_panics, disarm_worker_panics, FlowPool, ProbeFn, TicketClass, WorkerPanicGuard,
};
pub use push_relabel::push_relabel_max_flow;

/// Maximum-flow value from `source` to `sink` computed with the default solver (Dinic).
#[must_use]
pub fn max_flow_value(network: &FlowNetwork, source: usize, sink: usize) -> f64 {
    FlowSolver::with_capacity(network.num_nodes(), network.num_edges()).max_flow(
        &network.arena(),
        source,
        sink,
    )
}

/// Minimum over `sinks` of the maximum flow from `source` (batched evaluation).
///
/// Convenience wrapper over [`csr::FlowSolver::min_max_flow`] for one-shot callers; hot
/// paths should build the arena once and reuse a solver. Returns `f64::INFINITY` when
/// `sinks` is empty.
#[must_use]
pub fn min_max_flow(network: &FlowNetwork, source: usize, sinks: &[usize]) -> f64 {
    FlowSolver::with_capacity(network.num_nodes(), network.num_edges()).min_max_flow(
        &network.arena(),
        source,
        sinks,
    )
}
