//! Minimum-cut extraction from a maximum flow.
//!
//! By the max-flow/min-cut theorem, the nodes reachable from the source in the residual graph
//! of a maximum flow form the source side of a minimum cut. The cut is useful both as a
//! certificate of optimality for the flow solvers and as a diagnostic in the broadcast
//! analysis (it identifies the bottleneck limiting a receiver's rate).

use crate::dinic::dinic_max_flow;
use crate::eps;
use crate::graph::{EdgeId, FlowNetwork, FlowResult};

/// A minimum `s`–`t` cut.
#[derive(Debug, Clone, PartialEq)]
pub struct MinCut {
    /// Value of the cut (equal to the maximum flow value up to tolerance).
    pub value: f64,
    /// Nodes on the source side of the cut.
    pub source_side: Vec<usize>,
    /// Edges crossing the cut from the source side to the sink side.
    pub cut_edges: Vec<EdgeId>,
}

/// Computes a minimum cut between `source` and `sink`, together with the maximum flow used to
/// certify it.
#[must_use]
pub fn min_cut(network: &FlowNetwork, source: usize, sink: usize) -> (MinCut, FlowResult) {
    let flow = dinic_max_flow(network, source, sink);
    let cut = min_cut_from_flow(network, &flow, source);
    (cut, flow)
}

/// Derives the minimum cut induced by a maximum flow: the source side is the set of nodes
/// reachable from `source` in the residual graph.
#[must_use]
pub fn min_cut_from_flow(network: &FlowNetwork, flow: &FlowResult, source: usize) -> MinCut {
    let n = network.num_nodes();
    // Residual adjacency: forward arcs with remaining capacity, backward arcs with flow.
    let mut reachable = vec![false; n];
    reachable[source] = true;
    let mut stack = vec![source];
    while let Some(node) = stack.pop() {
        for (id, edge) in network.edges().iter().enumerate() {
            if edge.from == node
                && !reachable[edge.to]
                && eps::is_positive(edge.capacity - flow.edge_flows[id])
            {
                reachable[edge.to] = true;
                stack.push(edge.to);
            }
            if edge.to == node && !reachable[edge.from] && eps::is_positive(flow.edge_flows[id]) {
                reachable[edge.from] = true;
                stack.push(edge.from);
            }
        }
    }
    let source_side: Vec<usize> = (0..n).filter(|&v| reachable[v]).collect();
    let mut cut_edges = Vec::new();
    let mut value = 0.0;
    for (id, edge) in network.edges().iter().enumerate() {
        if reachable[edge.from] && !reachable[edge.to] && eps::is_positive(edge.capacity) {
            cut_edges.push(id);
            value += edge.capacity;
        }
    }
    MinCut {
        value,
        source_side,
        cut_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowNetwork;

    #[test]
    fn cut_value_equals_flow_value() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(2, 3, 4.0);
        net.add_edge(1, 2, 5.0);
        let (cut, flow) = min_cut(&net, 0, 3);
        assert!((cut.value - flow.value).abs() < 1e-9);
        assert!((cut.value - 5.0).abs() < 1e-9);
        assert!(cut.source_side.contains(&0));
        assert!(!cut.source_side.contains(&3));
    }

    #[test]
    fn bottleneck_edge_identified() {
        let mut net = FlowNetwork::new(3);
        let wide = net.add_edge(0, 1, 10.0);
        let narrow = net.add_edge(1, 2, 1.0);
        let (cut, _) = min_cut(&net, 0, 2);
        assert_eq!(cut.cut_edges, vec![narrow]);
        assert!(!cut.cut_edges.contains(&wide));
        assert!((cut.value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink_gives_zero_cut() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2.0);
        let (cut, flow) = min_cut(&net, 0, 2);
        assert_eq!(cut.value, 0.0);
        assert_eq!(flow.value, 0.0);
        assert!(cut.cut_edges.is_empty());
    }

    #[test]
    fn source_side_contains_all_reachable_when_cut_downstream() {
        let mut net = FlowNetwork::new(5);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 5.0);
        net.add_edge(2, 3, 0.5);
        net.add_edge(3, 4, 5.0);
        let (cut, _) = min_cut(&net, 0, 4);
        assert_eq!(cut.source_side, vec![0, 1, 2]);
        assert!((cut.value - 0.5).abs() < 1e-9);
    }
}
